"""repro — reproduction of "Scoped Buffered Persistency Model for GPUs"
(Pandey, Kamath, Basu; ASPLOS 2023).

The package provides:

* a warp-level, cycle-approximate GPU + NVM simulator
  (:mod:`repro.gpu`, :mod:`repro.memory`),
* three persistency models — GPM's implicit epoch model, the enhanced
  epoch model, and the paper's SBRP (:mod:`repro.persistency`),
* an executable formal model of SBRP with litmus tests
  (:mod:`repro.formal`),
* crash-injection and recovery machinery (:mod:`repro.crash`),
* the six PM-aware applications of the paper's evaluation
  (:mod:`repro.apps`), and
* a benchmark harness regenerating every figure of Section 7
  (:mod:`repro.bench`).

Quick start::

    from repro import GPUSystem, ModelName, Scope, small_system

    system = GPUSystem(small_system(ModelName.SBRP))

    def kernel(w, out):
        yield w.st(out.base + 4 * w.tid, w.tid)
        yield w.ofence()
        yield w.st(out.base + 4 * w.tid + out.size // 2, w.tid + 1)

    out = system.pm_create("out", 8192)
    system.launch(kernel, grid_blocks=2, args=(out,))
"""

from repro.common.config import (
    DrainPolicy,
    GPUConfig,
    MemoryConfig,
    ModelName,
    PMPlacement,
    SBRPConfig,
    Scope,
    SystemConfig,
    paper_system,
    small_system,
)
from repro.gpu.device import KernelResult
from repro.gpu.warp import WarpCtx
from repro.system import CrashImage, GPUSystem

__version__ = "1.0.0"

__all__ = [
    "CrashImage",
    "DrainPolicy",
    "GPUConfig",
    "GPUSystem",
    "KernelResult",
    "MemoryConfig",
    "ModelName",
    "PMPlacement",
    "SBRPConfig",
    "Scope",
    "SystemConfig",
    "WarpCtx",
    "__version__",
    "paper_system",
    "small_system",
]

"""Mutation teeth: deliberately broken SBRP variants the oracle must catch.

A conformance harness that has never failed proves nothing — maybe the
simulator is correct, maybe the oracle is blind.  Each mutant here
plants one specific violation of the SBRP specification (a shortcut a
real implementation could plausibly take); the conformance run asserts
that the differential oracle flags every one of them, and shrinks the
divergence to a minimal litmus program.

Mutants are registered **by name** so they can cross process boundaries
inside a :class:`~repro.exec.jobs.ScenarioJob` spec: the worker looks
the class up in :data:`MUTANTS` and passes a factory to
:func:`repro.formal.bridge.simulate_program` via ``model_factory``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Type

from repro.common.config import Scope, SystemConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatsRegistry
from repro.persistency.base import Outcome
from repro.persistency.sbrp.model import SBRPModel
from repro.persistency.sbrp.pbuffer import EntryKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.sm import SM
    from repro.gpu.warp import Warp


class PrelEagerFlagMutant(SBRPModel):
    """Block-scope pRel persists its PM-resident flag at issue time.

    The buggy shortcut: "the FIFO orders the flag anyway, so write it to
    NVM immediately".  It does not — WPQ *acceptance* order across NVM
    partitions is not global, so under congestion the flag can become
    durable before po-earlier persists stuck behind a full WPQ.  The
    correct model defers the flag's NVM write to the entry's FIFO
    retirement plus ACTR-zero (see ``SBRPModel._order_point_at_head``).
    """

    def prel(
        self, sm: "SM", warp: "Warp", addr: int, value: int, scope: Scope, now: float
    ) -> Outcome:
        scope = self._effective_scope(scope)
        if scope is not Scope.BLOCK:
            return super().prel(sm, warp, addr, value, scope, now)
        st = self.states[sm.sm_id]
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        bit = st.warp_bit(warp.slot)
        # flag_addr stays None: retirement must NOT persist the flag a
        # second time — the whole point is that it already (wrongly) did.
        entry = st.pb.append(EntryKind.PREL, bit, scope=scope)
        st.note_order_point(warp.slot, entry)
        self._publish(sm, addr, value, now)
        self.stats.add("mutant.eager_flag_persists")
        self._schedule_pump(sm)
        return Outcome.complete(now + 2)


class PrelNoOdmMutant(SBRPModel):
    """Device-scope pRel skips the ODM: no force-drain, no ACTR wait.

    The release completes (and publishes + persists its flag) the cycle
    it issues, as if it were block scope — the acquirer can observe the
    flag while the releaser's persists are still buffered, and a PM
    flag can be accepted before the data it guards.
    """

    def prel(
        self, sm: "SM", warp: "Warp", addr: int, value: int, scope: Scope, now: float
    ) -> Outcome:
        st = self.states[sm.sm_id]
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        bit = st.warp_bit(warp.slot)
        entry = st.pb.append(EntryKind.PREL, bit, scope=Scope.BLOCK)
        st.note_order_point(warp.slot, entry)
        self._publish(sm, addr, value, now)
        self.stats.add("mutant.no_odm_releases")
        self._schedule_pump(sm)
        return Outcome.complete(now + 2)


class PbLifoDrainMutant(SBRPModel):
    """The drain pump scans the persist buffer newest-first.

    Breaks the FIFO property the whole ordering argument rests on: a
    persist appended after an oFence is flushed before the persists the
    fence was supposed to order it behind.
    """

    def _pump(self, sm: "SM", now: float) -> None:
        st = self.states[sm.sm_id]
        st.pump_scheduled = False
        if st.actr == 0:
            st.fsm.reset()
        hold = 0
        for entry in reversed(list(st.pb.entries())):  # the mutation
            if entry.kind is EntryKind.PERSIST:
                if entry.warp_mask & (st.fsm.bits | hold):
                    hold |= entry.warp_mask
                    continue
                if not self._policy_allows(st, entry):
                    break
                st.pb.remove(entry)
                self._flush_entry(sm, st, entry, now)
            else:
                if entry.warp_mask & hold:
                    hold |= entry.warp_mask
                    continue
                st.pb.remove(entry)
                self._order_point_at_head(sm, st, entry, now)
            self._wake_space_waiters(sm, st, now)
        if st.actr == 0:
            st.fsm.reset()
            self._resolve_actr_zero(sm, st, now)


class AckWithoutFlushMutant(SBRPModel):
    """Drained lines are acknowledged without ever reaching the WPQ.

    The drain path makes the write *visible* (backing store) and
    fabricates a prompt ack, but never calls ``persist_line`` — nothing
    becomes durable.  Every crash image is the (allowed) empty subset,
    so only the dFence-completion and final-image obligations notice.
    """

    def _flush_entry(self, sm: "SM", st, entry, now: float) -> None:
        line = sm.l1.lookup(entry.line_addr, now)
        if line is None or not line.dirty:
            for waiter in entry.waiters:
                st.edm.clear(waiter.slot)
                sm.wake_warp(waiter, now + 1)
            return
        for addr, value in line.dirty_words.items():
            sm.backing.write(addr, value)
        line.dirty = False
        line.dirty_words = {}
        line.pb_index = None
        ack_time = now + self.config.gpu.l2_latency
        st.add_inflight(ack_time)
        st.sends_pending += 1
        self._schedule_ack(sm, st, now + 1, ack_time, entry.waiters)
        self.stats.add("mutant.fake_acks")


class OfenceNoopMutant(SBRPModel):
    """oFence completes without appending an ordering entry.

    Persists on either side of the fence drain independently; under WPQ
    congestion the po-later persist is accepted first.
    """

    def ofence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        self.stats.add("mutant.ofence_noops")
        return Outcome.complete(now + 1)


#: name -> mutant class.  Names are the cross-process currency: job
#: specs carry the string, workers resolve it here.
MUTANTS: Dict[str, Type[SBRPModel]] = {
    "prel_eager_flag": PrelEagerFlagMutant,
    "prel_no_odm": PrelNoOdmMutant,
    "pb_lifo_drain": PbLifoDrainMutant,
    "ack_without_flush": AckWithoutFlushMutant,
    "ofence_noop": OfenceNoopMutant,
}


def mutant_names() -> List[str]:
    return sorted(MUTANTS)


def build_mutant(name: str) -> Callable[[SystemConfig, StatsRegistry], SBRPModel]:
    """A ``model_factory`` for :func:`repro.formal.bridge.simulate_program`."""
    try:
        cls = MUTANTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown SBRP mutant {name!r}; have {mutant_names()}"
        ) from None
    return cls


def describe_mutants() -> Mapping[str, str]:
    """name -> first docstring line, for ``--list-mutants``."""
    return {
        name: (cls.__doc__ or "").strip().splitlines()[0]
        for name, cls in MUTANTS.items()
    }

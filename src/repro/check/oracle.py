"""The differential oracle: operational observations vs axiomatic sets.

Three checks, in increasing order of witness-specificity:

1. **Unconstrained soundness** — every crash image the simulator ever
   produced must be allowed by *some* synchronization witness with *no*
   dFence-completion assumption (a crash can land before any fence
   completes).  An observed-but-forbidden image means the hardware
   model violates Box 2.

2. **dFence obligation** — at the instant a dFence completed, the
   durable image must be allowed under the *observed* witness with that
   fence (and every earlier-completing one) marked completed.  Checking
   at the completion instant is exact: durable sets only grow, so a
   violation visible later was already visible then.

3. **Final completeness** — after ``sync()`` the image must be one of
   the fully-drained images of the observed witness: every executed
   persist durable, only the per-location choice among pmo-maximal
   writes free.  This is the check that catches "acknowledged but never
   written" drains, which check 1 cannot see (the empty image is always
   an allowed *subset*).

Coverage (allowed-but-never-observed images) is reported but is not a
failure: a timing simulator legitimately explores one schedule per
configuration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.config import ModelName
from repro.common.errors import LitmusError
from repro.formal.crash_states import allowed_crash_images, allowed_final_images
from repro.formal.events import LitmusProgram, all_reads_from
from repro.formal.relations import ExecutionWitness

from repro.check.enumerator import Variant, observe
from repro.check.mutants import build_mutant

#: Canonical image form: sorted (loc, value) pairs, zeros dropped — the
#: initial value of every location is zero, so "absent" and "zero" are
#: the same durable state.
NormImage = Tuple[Tuple[str, int], ...]


def normalize(image: Dict[str, int]) -> NormImage:
    return tuple(sorted((k, v) for k, v in image.items() if v != 0))


def allowed_unconstrained(program: LitmusProgram) -> Set[NormImage]:
    """Union over every feasible witness of the allowed crash images."""
    allowed: Set[NormImage] = set()
    for reads_from in all_reads_from(program):
        try:
            images = allowed_crash_images(ExecutionWitness(program, reads_from))
        except LitmusError:
            continue  # infeasible witness (cyclic vmo/pmo)
        allowed.update(normalize(image) for image in images)
    return allowed


def _observed_witness(
    program: LitmusProgram, reads_from: Dict[int, Optional[int]]
) -> Optional[ExecutionWitness]:
    """The witness the run actually took, or None when any acquire's
    observed value mapped to no known release (foreign writes to flag
    locations — the fuzzer never generates these, but directed programs
    might)."""
    acquires = program.acquires()
    if len(reads_from) != len(acquires):
        return None
    if any(source is None for source in reads_from.values()):
        return None
    return ExecutionWitness(program, dict(reads_from))


def check_observation(
    program: LitmusProgram,
    observation: Any,
    allowed: Set[NormImage],
    variant_name: str,
) -> List[Dict[str, Any]]:
    """All three oracle checks against one simulator run."""
    violations: List[Dict[str, Any]] = []
    for time, image in observation.images:
        norm = normalize(image)
        if norm not in allowed:
            violations.append(
                {
                    "type": "soundness",
                    "variant": variant_name,
                    "time": time,
                    "image": dict(norm),
                }
            )
    witness = _observed_witness(program, observation.reads_from)
    if witness is None:
        return violations
    try:
        completed: List[int] = []
        for eid, (time, image) in sorted(
            observation.dfence_images.items(), key=lambda kv: (kv[1][0], kv[0])
        ):
            completed.append(eid)
            allowed_now = {
                normalize(img)
                for img in allowed_crash_images(witness, completed)
            }
            if normalize(image) not in allowed_now:
                violations.append(
                    {
                        "type": "dfence",
                        "variant": variant_name,
                        "time": time,
                        "image": dict(normalize(image)),
                    }
                )
        finals = {normalize(img) for img in allowed_final_images(witness)}
        if normalize(observation.final_image) not in finals:
            violations.append(
                {
                    "type": "final",
                    "variant": variant_name,
                    "image": dict(normalize(observation.final_image)),
                }
            )
    except LitmusError as err:
        # The run synchronized in a way the axioms call infeasible.
        violations.append(
            {
                "type": "witness_error",
                "variant": variant_name,
                "error": str(err),
            }
        )
    return violations


def check_program(
    program: LitmusProgram,
    model: ModelName,
    variants: List[Variant],
    crash_points: int = 48,
    mutant: Optional[str] = None,
) -> Dict[str, Any]:
    """Run *program* under every variant and apply the oracle.

    Returns a plain-JSON report; ``violations`` is the total count
    across variants (0 = the model refined its spec on this program).
    A simulation that dies (deadlock, livelock, drain stall) counts as
    a violation too — mutants are allowed to wedge the machine, and a
    wedge on an unmodified model is exactly what the harness is for.
    """
    model_factory = build_mutant(mutant) if mutant is not None else None
    allowed = allowed_unconstrained(program)
    observed: Set[NormImage] = set()
    variant_reports: List[Dict[str, Any]] = []
    sim_cycles = 0.0
    for variant in variants:
        try:
            obs = observe(
                program,
                model,
                variant,
                crash_points=crash_points,
                model_factory=model_factory,
            )
        except Exception as err:  # noqa: BLE001 - any wedge is a finding
            variant_reports.append(
                {
                    "variant": variant.name,
                    "violations": [
                        {
                            "type": "simulation_error",
                            "variant": variant.name,
                            "error": f"{type(err).__name__}: {err}",
                        }
                    ],
                }
            )
            continue
        sim_cycles += obs.end
        observed.update(normalize(image) for image in obs.image_dicts())
        variant_reports.append(
            {
                "variant": variant.name,
                "end": obs.end,
                "violations": check_observation(
                    program, obs, allowed, variant.name
                ),
            }
        )
    never_observed = sorted(allowed - observed)
    return {
        "program": program.name,
        "ops": program.op_count(),
        "model": model.value,
        "mutant": mutant,
        "violations": sum(len(v["violations"]) for v in variant_reports),
        "variants": variant_reports,
        "coverage": {
            "allowed": len(allowed),
            "observed_allowed": len(observed & allowed),
            "never_observed": [dict(n) for n in never_observed[:8]],
        },
        "sim_cycles": sim_cycles,
    }


def failing_variants(report: Dict[str, Any]) -> List[str]:
    """Names of variants with at least one violation, in sweep order."""
    return [
        v["variant"] for v in report["variants"] if v["violations"]
    ]

"""Worker-side batch runner for conformance jobs.

A check job's spec is plain JSON — serialized programs, variant list,
target model, optional mutant name — so batches cross process
boundaries through the shared :class:`~repro.exec.executor.Executor`
exactly like scenario/recovery/fault jobs do, and results land in the
same content-addressed cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Mapping

from repro.common.config import ModelName
from repro.formal.events import LitmusProgram

from repro.check.enumerator import Variant
from repro.check.oracle import check_program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.runner import ScenarioResult


def run_check_batch(spec: Mapping[str, Any]) -> "ScenarioResult":
    """Execute one conformance batch; returns a plain-JSON result."""
    from repro.bench.runner import ScenarioResult

    programs = [LitmusProgram.from_json(p) for p in spec["programs"]]
    model = ModelName(spec["model"])
    mutant = spec.get("mutant")
    variants = [Variant.from_json(v) for v in spec["variants"]]
    crash_points = int(spec.get("crash_points", 48))

    reports = [
        check_program(
            program, model, variants, crash_points=crash_points, mutant=mutant
        )
        for program in programs
    ]
    violations = sum(r["violations"] for r in reports)
    sim_cycles = sum(r["sim_cycles"] for r in reports)
    stats: Dict[str, float] = {
        "check.programs": float(len(reports)),
        "check.variants": float(len(variants)),
        "check.violations": float(violations),
        "check.sim_cycles": sim_cycles,
    }
    label = f"{model.value}:{mutant or 'stock'}"
    return ScenarioResult(
        app="conformance",
        label=label,
        cycles=sim_cycles,
        stats=stats,
        detail={
            "model": model.value,
            "mutant": mutant,
            "programs": reports,
        },
    )

"""Counterexample shrinking: minimize a diverging litmus program.

Greedy delta-debugging over the program's JSON form: repeatedly try
removing one thread or one event, keep any candidate on which the
failure predicate still holds, iterate to a fixpoint.  Removals
cascade to keep candidates *operationally safe*: dropping a release
also drops every acquire of its flag (an acquire with no releaser spins
until the watchdog fires — a slow, uninteresting way to "fail").

The predicate re-runs the differential oracle, usually restricted to
the variants that produced the original divergence, so shrinking costs
a handful of simulator runs per candidate.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, List

from repro.formal.events import LitmusProgram


def _strip_orphan_acquires(threads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Drop acquires of flags no remaining release writes, then empty
    threads.  Single pass suffices: stripping acquires removes no
    releases."""
    released = {
        e["loc"]
        for t in threads
        for e in t["events"]
        if e["kind"] == "PREL"
    }
    out = []
    for t in threads:
        events = [
            e
            for e in t["events"]
            if not (e["kind"] == "PACQ" and e["loc"] not in released)
        ]
        if events:
            out.append({"block": t["block"], "events": events})
    return out


def _candidates(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """One-removal neighbors of a program, biggest cuts first."""
    threads = data["threads"]
    if len(threads) > 1:
        for i in range(len(threads)):
            kept = _strip_orphan_acquires(
                copy.deepcopy([t for j, t in enumerate(threads) if j != i])
            )
            if kept:
                yield {"name": data["name"], "threads": kept}
    for ti in range(len(threads)):
        for ei in range(len(threads[ti]["events"])):
            new_threads = copy.deepcopy(threads)
            new_threads[ti]["events"].pop(ei)
            kept = _strip_orphan_acquires(new_threads)
            if kept:
                yield {"name": data["name"], "threads": kept}


def shrink_program(
    program: LitmusProgram,
    still_fails: Callable[[LitmusProgram], bool],
    max_checks: int = 200,
) -> LitmusProgram:
    """Smallest one-removal-minimal program on which *still_fails* holds.

    *program* itself must satisfy the predicate.  *max_checks* bounds
    the total predicate evaluations (each is a few simulator runs).
    """
    current = program.to_json()
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate_data in _candidates(current):
            if checks >= max_checks:
                break
            candidate = LitmusProgram.from_json(candidate_data)
            checks += 1
            if still_fails(candidate):
                current = candidate_data
                improved = True
                break
    shrunk = LitmusProgram.from_json(current)
    shrunk.name = f"{program.name}-shrunk"
    return shrunk


def _builder_lines(program: LitmusProgram) -> List[str]:
    lines = [f"program = LitmusProgram({program.name!r})"]
    for thread in program.threads:
        expr = f"program.thread(block={thread.block})"
        for e in thread.events:
            kind = e.kind.name
            if kind in ("W", "WV"):
                expr += f".w({e.loc!r}, {e.value})"
            elif kind == "R":
                expr += f".r({e.loc!r})"
            elif kind == "OFENCE":
                expr += ".ofence()"
            elif kind == "DFENCE":
                expr += ".dfence()"
            elif kind == "PACQ":
                expr += f".pacq({e.loc!r}, Scope.{e.scope.name})"
            else:
                expr += f".prel({e.loc!r}, {e.value}, Scope.{e.scope.name})"
        lines.append(expr)
    return lines


def regression_snippet(
    program: LitmusProgram,
    model: str,
    mutant: str,
    variant_names: List[str],
) -> str:
    """A ready-to-paste pytest function reproducing the divergence."""
    slug = mutant.replace("-", "_")
    body = "\n    ".join(_builder_lines(program))
    return (
        f"def test_conformance_regression_{slug}():\n"
        f"    from repro.common.config import ModelName, Scope\n"
        f"    from repro.formal.events import LitmusProgram\n"
        f"    from repro.check.enumerator import variants_by_name\n"
        f"    from repro.check.oracle import check_program\n"
        f"\n"
        f"    {body}\n"
        f"    report = check_program(\n"
        f"        program.validate(),\n"
        f"        ModelName({model!r}),\n"
        f"        variants_by_name({variant_names!r}),\n"
        f"        mutant={mutant!r},\n"
        f"    )\n"
        f"    assert report[\"violations\"] > 0\n"
    )

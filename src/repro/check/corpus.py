"""Directed litmus corpus: the programs every conformance run includes.

The fuzzer explores; the corpus *aims*.  Each program here targets one
specific ordering mechanism, chosen so that every shipped mutant
(:mod:`repro.check.mutants`) is caught by at least one corpus program —
the fuzzer then provides breadth on top.

Location layout matters: the bridge assigns addresses by sorted
location name at one-line stride, so with the default two-partition
memory system consecutive names land on *different* NVM partitions.
Programs that probe acceptance-order inversions put two persists on one
partition (``pA``/``pC``) and the ordered-after write on the other
(``pB``) — the first partition's WPQ backs up under congestion while
the second stays empty.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.common.config import Scope
from repro.formal.events import LitmusProgram


def _mp_ofence_split() -> LitmusProgram:
    """Message passing over oFence with the writes partition-split."""
    p = LitmusProgram("mp_ofence_split")
    p.thread(block=0).w("pA", 1).w("pC", 1).ofence().w("pB", 1)
    return p


def _block_release_pm_flag() -> LitmusProgram:
    """Block-scope release of a PM-resident flag after two persists.

    The program that exposed the eager-flag bug: the flag ``pB`` must
    not be accepted before ``pA``/``pC`` even though the release itself
    never leaves the SM.
    """
    p = LitmusProgram("block_release_pm_flag")
    p.thread(block=0).w("pA", 1).w("pC", 1).prel("pB", 1, Scope.BLOCK)
    return p


def _device_release_pm_flag() -> LitmusProgram:
    """Device-scope release of a PM flag: the ODM must force-drain."""
    p = LitmusProgram("device_release_pm_flag")
    p.thread(block=0).w("pA", 1).w("pC", 1).prel("pB", 1, Scope.DEVICE)
    return p


def _device_release_consumer() -> LitmusProgram:
    """Cross-block consumer: rule 2's inter-thread pmo edge."""
    p = LitmusProgram("device_release_consumer")
    p.thread(block=0).w("pA", 1).prel("pF", 1, Scope.DEVICE)
    p.thread(block=1).pacq("pF", Scope.DEVICE).w("pB", 1)
    return p


def _block_release_consumer() -> LitmusProgram:
    """Same-block consumer over a volatile flag: the scopes win."""
    p = LitmusProgram("block_release_consumer")
    p.thread(block=0).w("pA", 1).prel("vF", 1, Scope.BLOCK)
    p.thread(block=0).pacq("vF", Scope.BLOCK).w("pB", 1)
    return p


def _scope_mismatch() -> LitmusProgram:
    """Block-scope pair across blocks: NO pmo edge, any order allowed."""
    p = LitmusProgram("scope_mismatch")
    p.thread(block=0).w("pA", 1).prel("vF", 1, Scope.BLOCK)
    p.thread(block=1).pacq("vF", Scope.BLOCK).w("pB", 1)
    return p


def _dfence_then_write() -> LitmusProgram:
    """dFence durability: pA must be durable when the fence completes."""
    p = LitmusProgram("dfence_then_write")
    p.thread(block=0).w("pA", 1).dfence().w("pB", 1)
    return p


def _dfence_split() -> LitmusProgram:
    """dFence with partition-split persists on both sides."""
    p = LitmusProgram("dfence_split")
    p.thread(block=0).w("pA", 1).w("pC", 1).dfence().w("pB", 1)
    return p


def _overwrite_chain() -> LitmusProgram:
    """Same-location overwrite across an oFence: pX must end at 2."""
    p = LitmusProgram("overwrite_chain")
    p.thread(block=0).w("pX", 1).ofence().w("pX", 2)
    return p


def _unfenced_pair() -> LitmusProgram:
    """Two unordered persists: every subset/image is allowed (coverage)."""
    p = LitmusProgram("unfenced_pair")
    p.thread(block=0).w("pA", 1).w("pB", 1)
    return p


def _transitive_chain() -> LitmusProgram:
    """pmo transitivity through two device-scope release hops."""
    p = LitmusProgram("transitive_chain")
    p.thread(block=0).w("pA", 1).prel("vF", 1, Scope.DEVICE)
    p.thread(block=1).pacq("vF", Scope.DEVICE).w("pB", 1).prel(
        "vG", 1, Scope.DEVICE
    )
    p.thread(block=1).pacq("vG", Scope.DEVICE).w("pC", 1)
    return p


_BUILDERS: List[Tuple[str, Callable[[], LitmusProgram]]] = [
    ("mp_ofence_split", _mp_ofence_split),
    ("block_release_pm_flag", _block_release_pm_flag),
    ("device_release_pm_flag", _device_release_pm_flag),
    ("device_release_consumer", _device_release_consumer),
    ("block_release_consumer", _block_release_consumer),
    ("scope_mismatch", _scope_mismatch),
    ("dfence_then_write", _dfence_then_write),
    ("dfence_split", _dfence_split),
    ("overwrite_chain", _overwrite_chain),
    ("unfenced_pair", _unfenced_pair),
    ("transitive_chain", _transitive_chain),
]


def corpus_programs() -> List[LitmusProgram]:
    """Fresh (independent event-id) instances, in registry order."""
    return [build().validate() for _, build in _BUILDERS]

"""Conformance checking: does the timing simulator refine the axioms?

The subsystem closes the loop between the two halves of the repo:

* the **operational** side — the event-driven simulator with its three
  persistency models (GPM / Epoch / SBRP, :mod:`repro.persistency`);
* the **axiomatic** side — Box 1 / Box 2 as explicit relation graphs
  (:mod:`repro.formal`).

A seeded fuzzer (:mod:`repro.check.fuzzer`) and a directed corpus
(:mod:`repro.check.corpus`) generate small litmus programs; the
enumerator (:mod:`repro.check.enumerator`) runs each one through the
simulator under bounded scheduling perturbations; the differential
oracle (:mod:`repro.check.oracle`) compares every observed crash image,
dFence-completion image, and final image against the axiomatically
allowed sets; divergences are minimized by the shrinker
(:mod:`repro.check.shrink`) into ready-to-paste regression tests.

Mutation teeth (:mod:`repro.check.mutants`) prove the harness can
actually fail: deliberately broken SBRP variants must each be caught.

Entry point::

    python -m repro.check.conformance --smoke
"""

from repro.check.corpus import corpus_programs
from repro.check.enumerator import SMOKE_VARIANTS, VARIANTS, Variant
from repro.check.fuzzer import generate_program
from repro.check.mutants import MUTANTS, build_mutant
from repro.check.oracle import allowed_unconstrained, check_program
from repro.check.shrink import regression_snippet, shrink_program

__all__ = [
    "MUTANTS",
    "SMOKE_VARIANTS",
    "VARIANTS",
    "Variant",
    "allowed_unconstrained",
    "build_mutant",
    "check_program",
    "corpus_programs",
    "generate_program",
    "regression_snippet",
    "shrink_program",
]

"""Conformance campaign driver: ``python -m repro.check.conformance``.

Runs the directed corpus plus a seeded fuzzed stream through every
target — each unmodified persistency model, and each SBRP mutant — as
batched :class:`~repro.exec.jobs.ScenarioJob`\\ s on the shared
Executor.  The batch partition is fixed up front (independent of the
worker count) and shrinking runs serially in the driver process, so the
JSON report is byte-identical for any ``--workers``.

Exit status 1 when an unmodified model produced any oracle violation,
or when a shipped mutant went uncaught — either means the conformance
story is broken.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ModelName, small_system
from repro.exec import MODE_CHECK, Executor, ScenarioJob
from repro.formal.events import LitmusProgram

from repro.check.corpus import corpus_programs
from repro.check.enumerator import SMOKE_VARIANTS, VARIANTS, Variant
from repro.check.fuzzer import generate_stream
from repro.check.mutants import describe_mutants, mutant_names
from repro.check.oracle import check_program, failing_variants
from repro.check.shrink import regression_snippet, shrink_program

#: Programs per batch job.  Fixed (not derived from the worker count)
#: so the job set — and therefore the report — is worker-independent.
DEFAULT_BATCH = 25

STOCK_MODELS = (ModelName.GPM, ModelName.EPOCH, ModelName.SBRP)


def _chunk(items: List[Any], size: int) -> List[List[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _make_job(
    programs: List[LitmusProgram],
    model: ModelName,
    variants: List[Variant],
    crash_points: int,
    mutant: Optional[str],
) -> ScenarioJob:
    return ScenarioJob(
        app="conformance",
        config=small_system(model),
        mode=MODE_CHECK,
        verify=False,
        check={
            "programs": [p.to_json() for p in programs],
            "model": model.value,
            "mutant": mutant,
            "variants": [v.to_json() for v in variants],
            "crash_points": crash_points,
        },
    )


def _target_summary(reports: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-program oracle reports for one (model, mutant)."""
    violations: List[Dict[str, Any]] = []
    allowed_total = 0
    observed_total = 0
    for report in reports:
        allowed_total += report["coverage"]["allowed"]
        observed_total += report["coverage"]["observed_allowed"]
        for variant_report in report["variants"]:
            for violation in variant_report["violations"]:
                entry = dict(violation)
                entry["program"] = report["program"]
                violations.append(entry)
    return {
        "programs": len(reports),
        "violations": len(violations),
        "violation_sample": violations[:10],
        "coverage_ratio": (
            round(observed_total / allowed_total, 4) if allowed_total else 1.0
        ),
    }


def _shrink_mutant_divergence(
    reports: List[Dict[str, Any]],
    programs_by_name: Dict[str, LitmusProgram],
    model: ModelName,
    mutant: str,
    crash_points: int,
    do_shrink: bool,
) -> Dict[str, Any]:
    """Find the first diverging program for *mutant* and minimize it."""
    first = next((r for r in reports if r["violations"]), None)
    if first is None:
        return {"caught": False}
    variant_names = failing_variants(first)
    variants = [v for v in VARIANTS if v.name in variant_names]
    program = programs_by_name[first["program"]]
    entry: Dict[str, Any] = {
        "caught": True,
        "program": first["program"],
        "variants": variant_names,
        "violation_types": sorted(
            {
                v["type"]
                for vr in first["variants"]
                for v in vr["violations"]
            }
        ),
    }
    if do_shrink:

        def still_fails(candidate: LitmusProgram) -> bool:
            report = check_program(
                candidate,
                model,
                variants,
                crash_points=crash_points,
                mutant=mutant,
            )
            return report["violations"] > 0

        shrunk = shrink_program(program, still_fails)
        entry["shrunk"] = shrunk.to_json()
        entry["shrunk_ops"] = shrunk.op_count()
        entry["regression_test"] = regression_snippet(
            shrunk, model.value, mutant, variant_names
        )
    return entry


def build_report(
    *,
    programs: int,
    seed: int,
    mutant_programs: int,
    batch_size: int,
    crash_points: int,
    variants: List[Variant],
    models: Sequence[ModelName],
    mutants: Sequence[str],
    executor: Executor,
    shrink: bool = True,
) -> Dict[str, Any]:
    corpus = corpus_programs()
    fuzzed = generate_stream(seed, programs)
    stock_programs = corpus + fuzzed
    mutant_pool = corpus + fuzzed[:mutant_programs]
    programs_by_name = {p.name: p for p in mutant_pool}

    # One fixed job list up front: stock targets over the full set,
    # mutant targets over the corpus plus a fuzzed prefix.
    jobs: List[ScenarioJob] = []
    spans: List[Tuple[str, Optional[str]]] = []  # (model, mutant) per job
    for model in models:
        for batch in _chunk(stock_programs, batch_size):
            jobs.append(_make_job(batch, model, variants, crash_points, None))
            spans.append((model.value, None))
    for mutant in mutants:
        for batch in _chunk(mutant_pool, batch_size):
            jobs.append(
                _make_job(batch, ModelName.SBRP, variants, crash_points, mutant)
            )
            spans.append((ModelName.SBRP.value, mutant))

    results = executor.submit(jobs)

    by_target: Dict[Tuple[str, Optional[str]], List[Dict[str, Any]]] = {}
    for (model_name, mutant), result in zip(spans, results):
        assert result is not None and result.detail is not None
        by_target.setdefault((model_name, mutant), []).extend(
            result.detail["programs"]
        )

    report: Dict[str, Any] = {
        "seed": seed,
        "fuzzed_programs": programs,
        "corpus_programs": len(corpus),
        "variants": [v.name for v in variants],
        "crash_points": crash_points,
        "models": {},
        "mutants": {},
    }
    stock_violations = 0
    for model in models:
        summary = _target_summary(by_target[(model.value, None)])
        report["models"][model.value] = summary
        stock_violations += summary["violations"]
    caught = 0
    for mutant in mutants:
        reports = by_target[(ModelName.SBRP.value, mutant)]
        summary = _target_summary(reports)
        summary.update(
            _shrink_mutant_divergence(
                reports, programs_by_name, ModelName.SBRP, mutant,
                crash_points, shrink,
            )
        )
        report["mutants"][mutant] = summary
        caught += int(summary["caught"])
    report["summary"] = {
        "stock_violations": stock_violations,
        "mutants_caught": caught,
        "mutants_total": len(mutants),
        "ok": stock_violations == 0 and caught == len(mutants),
    }
    return report


def render_report(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.conformance",
        description="Differential conformance campaign: operational "
        "simulator vs axiomatic model, with mutation teeth.",
    )
    parser.add_argument(
        "--programs", type=int, default=500,
        help="fuzzed programs per stock model (default 500)",
    )
    parser.add_argument("--seed", type=int, default=7, help="fuzzer seed")
    parser.add_argument(
        "--mutant-programs", type=int, default=40,
        help="fuzzed programs (beyond the corpus) per mutant target",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI budget: fewer programs, the smoke variant subset",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--out", default=None, help="report path (default stdout)")
    parser.add_argument(
        "--models", default=None,
        help="comma-separated stock models (default: gpm,epoch,sbrp)",
    )
    parser.add_argument(
        "--mutants", default=None,
        help="comma-separated mutant names (default: all; 'none' disables)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH,
        help="programs per job; fixed partition, independent of --workers",
    )
    parser.add_argument("--crash-points", type=int, default=48)
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip counterexample minimization",
    )
    parser.add_argument("--list-mutants", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.list_mutants:
        for name, blurb in sorted(describe_mutants().items()):
            print(f"{name:20s} {blurb}")
        return 0

    programs = args.programs
    mutant_programs = args.mutant_programs
    variants = list(VARIANTS)
    if args.smoke:
        programs = min(programs, 30)
        mutant_programs = min(mutant_programs, 10)
        variants = list(SMOKE_VARIANTS)
    models = (
        [ModelName(m) for m in args.models.split(",")]
        if args.models
        else list(STOCK_MODELS)
    )
    if args.mutants is None:
        mutants = mutant_names()
    elif args.mutants == "none":
        mutants = []
    else:
        mutants = args.mutants.split(",")

    executor = Executor(workers=args.workers, cache=args.cache_dir)
    report = build_report(
        programs=programs,
        seed=args.seed,
        mutant_programs=mutant_programs,
        batch_size=args.batch_size,
        crash_points=args.crash_points,
        variants=variants,
        models=models,
        mutants=mutants,
        executor=executor,
        shrink=not args.no_shrink,
    )
    text = render_report(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        if not args.quiet:
            print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    if not args.quiet:
        print(executor.footer(), file=sys.stderr)
        summary = report["summary"]
        print(
            f"stock violations: {summary['stock_violations']}; mutants "
            f"caught: {summary['mutants_caught']}/{summary['mutants_total']}",
            file=sys.stderr,
        )
    return 0 if report["summary"]["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

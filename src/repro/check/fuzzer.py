"""Seeded litmus-program fuzzer over the full SBRP vocabulary.

Programs are small by construction — the axiomatic side enumerates
every downward-closed subset of the pmo DAG, which is exponential in
the persist count — and *operationally safe* by construction:

* an acquire only ever targets a flag released by a **lower-numbered**
  thread, so the wait graph is acyclic and every spin terminates
  (releases publish their value regardless of scope; scope only decides
  whether the axiomatic pmo edge exists);
* each release gets a **fresh** flag location with a nonzero value and
  flag locations are disjoint from data locations, so the value an
  acquire observes maps unambiguously back to one release — that
  mapping is how the oracle reconstructs the observed witness;
* per-location values are unique (a counter), so crash images decide
  "which write survived" without ambiguity.

Everything is driven by one ``random.Random(seed)``: the same seed
always yields the same program, on every platform and worker count.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.common.config import Scope
from repro.formal.events import LitmusProgram

#: PM / volatile data locations (flags come from a separate pool).
DATA_PM = ("pA", "pB", "pC", "pD")
DATA_VOL = ("va", "vb")

#: Hard caps keeping the axiomatic enumeration litmus-sized.
MAX_PERSISTS = 6
MAX_RELEASES = 2
MAX_ACQUIRES = 2
MAX_THREADS = 3
MIN_EVENTS_PER_THREAD = 2
MAX_EVENTS_PER_THREAD = 4


def _flag_name(index: int, persistent: bool) -> str:
    return f"{'p' if persistent else 'v'}f{index}"


def generate_program(seed: int, index: int = 0) -> LitmusProgram:
    """The *index*-th program of the stream seeded by *seed*."""
    rng = random.Random((seed * 1_000_003 + index) & 0xFFFFFFFF)
    n_threads = rng.randint(1, MAX_THREADS)
    n_blocks = 1 if n_threads == 1 else rng.randint(1, 2)
    blocks = [rng.randrange(n_blocks) for _ in range(n_threads)]

    next_value = {loc: 1 for loc in DATA_PM + DATA_VOL}
    persists = 0  # PM data writes + PM-resident release flags
    releases: List[Tuple[int, str, int, Scope]] = []  # (tid, loc, value, scope)
    acquired: List[Tuple[int, str]] = []  # (tid, loc) pairs already used
    n_acquires = 0

    # Per-thread event plans, built as plain tuples first so the caps
    # can be enforced before any Event ids are allocated.
    plans: List[List[Tuple]] = []
    for tid in range(n_threads):
        plan: List[Tuple] = []
        length = rng.randint(MIN_EVENTS_PER_THREAD, MAX_EVENTS_PER_THREAD)
        for slot in range(length):
            menu: List[str] = ["w_vol", "read", "ofence"]
            if persists < MAX_PERSISTS:
                menu += ["w_pm"] * 4  # persists are the interesting events
            menu += ["dfence"]
            if len(releases) < MAX_RELEASES and slot == length - 1:
                # Releasing last keeps "persists before the release" the
                # common shape (and a release mid-thread adds little).
                menu += ["prel"] * 2
            candidates = [
                (rtid, loc, value, scope)
                for rtid, loc, value, scope in releases
                if rtid < tid and (tid, loc) not in acquired
            ]
            if candidates and n_acquires < MAX_ACQUIRES:
                menu += ["pacq"] * 3
            choice = rng.choice(menu)
            last_chance = tid == n_threads - 1 and slot == length - 1
            if last_chance and persists == 0:
                choice = "w_pm"  # every program persists something
            if choice == "w_pm":
                loc = rng.choice(DATA_PM)
                value, next_value[loc] = next_value[loc], next_value[loc] + 1
                plan.append(("w", loc, value))
                persists += 1
            elif choice == "w_vol":
                loc = rng.choice(DATA_VOL)
                value, next_value[loc] = next_value[loc], next_value[loc] + 1
                plan.append(("w", loc, value))
            elif choice == "read":
                plan.append(("r", rng.choice(DATA_PM + DATA_VOL)))
            elif choice == "ofence":
                plan.append(("ofence",))
            elif choice == "dfence":
                plan.append(("dfence",))
            elif choice == "prel":
                persistent = persists < MAX_PERSISTS and rng.random() < 0.5
                loc = _flag_name(len(releases), persistent)
                if persistent:
                    persists += 1
                scope = rng.choice((Scope.BLOCK, Scope.DEVICE))
                plan.append(("prel", loc, 1, scope))
                releases.append((tid, loc, 1, scope))
            else:  # pacq
                rtid, loc, value, rel_scope = rng.choice(candidates)
                scope = rng.choice((rel_scope, Scope.DEVICE))
                plan.append(("pacq", loc, scope))
                acquired.append((tid, loc))
                n_acquires += 1
        plans.append(plan)

    program = LitmusProgram(f"fuzz-{seed}-{index}")
    for tid, plan in enumerate(plans):
        thread = program.thread(block=blocks[tid])
        for op in plan:
            if op[0] == "w":
                thread.w(op[1], op[2])
            elif op[0] == "r":
                thread.r(op[1])
            elif op[0] == "ofence":
                thread.ofence()
            elif op[0] == "dfence":
                thread.dfence()
            elif op[0] == "prel":
                thread.prel(op[1], op[2], op[3])
            else:
                thread.pacq(op[1], op[2])
    return program.validate()


def generate_stream(seed: int, count: int) -> List[LitmusProgram]:
    return [generate_program(seed, i) for i in range(count)]

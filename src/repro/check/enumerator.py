"""Outcome enumeration: run one program under bounded perturbations.

Each :class:`Variant` is one bounded scheduling/configuration
perturbation of the simulator — a drain-policy choice, a drain-window
setting, WPQ congestion, a reversed warp-issue order, or the Figure 7
scope demotion.  The ``congested`` variants are the load-bearing ones:
with ``wpq_entries=1`` and NVM bandwidth scaled to 2% a single
partition's write-pending queue backs up for thousands of cycles, so
any persist the model *fails* to order is accepted visibly out of
order (acceptance into the WPQ is the durability point, and acceptance
order across partitions is not global).

Crash-at-every-persist is implicit: :func:`simulate_program` samples
the durable image at every persist-log boundary, so every acceptance
instant contributes one observed crash image.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.common.config import DrainPolicy, ModelName, SystemConfig
from repro.common.errors import ConfigError
from repro.formal.bridge import SimulationObservation, base_config, simulate_program
from repro.formal.events import LitmusProgram


@dataclass(frozen=True)
class Variant:
    """One perturbation of the base litmus configuration."""

    name: str
    drain_policy: Optional[str] = None
    window: Optional[int] = None
    wpq_entries: Optional[int] = None
    nvm_bw_scale: Optional[float] = None
    demote_block_scope: bool = False
    reverse_threads: bool = False

    def configure(self, program: LitmusProgram, model: ModelName) -> SystemConfig:
        config = base_config(program, model)
        sbrp = config.sbrp
        if self.drain_policy is not None:
            sbrp = replace(sbrp, drain_policy=DrainPolicy(self.drain_policy))
        if self.window is not None:
            sbrp = replace(sbrp, window=self.window)
        if self.demote_block_scope:
            sbrp = replace(sbrp, demote_block_scope=True)
        memory = config.memory
        if self.wpq_entries is not None:
            memory = replace(memory, wpq_entries=self.wpq_entries)
        if self.nvm_bw_scale is not None:
            memory = replace(memory, nvm_bw_scale=self.nvm_bw_scale)
        return replace(config, sbrp=sbrp, memory=memory)

    def thread_order(self, program: LitmusProgram) -> Optional[Sequence[int]]:
        if not self.reverse_threads:
            return None
        return list(reversed(range(len(program.threads))))

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "Variant":
        return Variant(**dict(data))


#: The full sweep.  Congestion knobs follow the recipe above; window=1
#: throttles the drain to one outstanding send (maximum buffering).
VARIANTS: List[Variant] = [
    Variant("base"),
    Variant("eager", drain_policy="eager"),
    Variant("lazy", drain_policy="lazy"),
    Variant("window1", window=1),
    Variant("congested", wpq_entries=1, nvm_bw_scale=0.02),
    Variant("congested_eager", drain_policy="eager", wpq_entries=1, nvm_bw_scale=0.02),
    Variant("reversed", reverse_threads=True),
    Variant(
        "congested_reversed", wpq_entries=1, nvm_bw_scale=0.02, reverse_threads=True
    ),
    Variant("demoted", demote_block_scope=True),
]

#: The quick subset used by ``--smoke`` and by shrinking re-checks.
#: ``window1`` is load-bearing: with at most one outstanding send the
#: persist buffer actually *buffers*, so FIFO-order mutations surface.
SMOKE_VARIANTS: List[Variant] = [
    VARIANTS[0],  # base
    VARIANTS[3],  # window1
    VARIANTS[4],  # congested
    VARIANTS[6],  # reversed
]

_BY_NAME: Dict[str, Variant] = {v.name: v for v in VARIANTS}


def variants_by_name(names: Sequence[str]) -> List[Variant]:
    missing = [n for n in names if n not in _BY_NAME]
    if missing:
        raise ConfigError(f"unknown variants {missing}; have {sorted(_BY_NAME)}")
    return [_BY_NAME[n] for n in names]


def observe(
    program: LitmusProgram,
    model: ModelName,
    variant: Variant,
    crash_points: int = 48,
    model_factory: Any = None,
) -> SimulationObservation:
    """One simulator run of *program* under *variant*."""
    return simulate_program(
        program,
        model=model,
        config=variant.configure(program, model),
        crash_points=crash_points,
        model_factory=model_factory,
        thread_order=variant.thread_order(program),
    )

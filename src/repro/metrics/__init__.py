"""Near-zero-overhead host metrics: counters, gauges, histograms.

See :mod:`repro.metrics.registry` for the observer-discipline contract
(metrics-enabled runs are cycle-identical to disabled ones) and
:mod:`repro.metrics.export` for the sorted-key JSON and Prometheus
exporters.
"""

from repro.metrics.export import (
    build_snapshot,
    prometheus_text,
    snapshot_json,
)
from repro.metrics.registry import (
    DEFAULT_BOUNDS,
    NULL_METRICS,
    MetricHistogram,
    MetricsRegistry,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "MetricHistogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "build_snapshot",
    "prometheus_text",
    "snapshot_json",
]

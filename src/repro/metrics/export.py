"""Snapshot exporters: sorted-key JSON and Prometheus text exposition.

The JSON snapshot is the *one* export path for host observability: it
merges the engine's :class:`~repro.common.stats.StatsRegistry` counters
with the :class:`~repro.metrics.registry.MetricsRegistry` instruments,
so callers never have to consult two stores (the unification the stats
registry predates).  Every mapping is emitted with sorted keys and
deterministic values, so two runs that agree on the simulated execution
produce byte-identical exports regardless of worker count — CI diffs
them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.common.stats import StatsRegistry
from repro.metrics.registry import MetricsRegistry


def build_snapshot(
    metrics: MetricsRegistry,
    stats: Optional[StatsRegistry] = None,
) -> Dict[str, Any]:
    """One plain-JSON dict of everything observed.

    ``counters`` holds the stats-registry counters overlaid with the
    metrics counters (metrics win on a name collision — they are the
    newer, richer store); ``gauges`` and ``histograms`` come from the
    metrics registry alone.  Histograms export their scalar summary
    (count/sum/min/max/mean/p50/p95/p99), not raw buckets: the digest is
    what dashboards and regression gates consume.
    """
    counters: Dict[str, float] = dict(stats.snapshot()) if stats is not None else {}
    counters.update(metrics.counters())
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": dict(sorted(metrics.gauges().items())),
        "histograms": {
            name: hist.summary()
            for name, hist in sorted(metrics.histograms().items())
        },
    }


def snapshot_json(
    metrics: MetricsRegistry,
    stats: Optional[StatsRegistry] = None,
    indent: Optional[int] = 2,
) -> str:
    """The snapshot as a sorted-key JSON document (trailing newline)."""
    return (
        json.dumps(build_snapshot(metrics, stats), indent=indent, sort_keys=True)
        + "\n"
    )


def _prom_name(name: str) -> str:
    """A dotted metric name as a Prometheus-legal identifier."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    metrics: MetricsRegistry,
    stats: Optional[StatsRegistry] = None,
) -> str:
    """Prometheus text exposition format of the full snapshot.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
    ``_count``.  Families are emitted in sorted name order.
    """
    lines: List[str] = []
    counters: Dict[str, float] = dict(stats.snapshot()) if stats is not None else {}
    counters.update(metrics.counters())
    for name in sorted(counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {_prom_value(counters[name])}")
    gauges = metrics.gauges()
    for name in sorted(gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(gauges[name])}")
    for name, hist in sorted(metrics.histograms().items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for bound, cumulative in hist.bucket_counts():
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f"{prom}_sum {_prom_value(hist.sum if hist.count else 0.0)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + "\n"

"""The host-side metrics registry.

One :class:`MetricsRegistry` instance is shared by every component of a
:class:`~repro.system.GPUSystem` (and by the execution layer's
:class:`~repro.exec.executor.Executor`).  Like the tracer it is a pure
*observer*: no method touches the event queue, the stats registry, or
any timing state, so a metrics-enabled run is cycle-identical to a
metrics-disabled one (a test pins this).

Disabled metrics are the default and cost one attribute load per call
site (``if metrics.enabled:`` guards every emission); the module-level
:data:`NULL_METRICS` is the shared disabled instance — the same
zero-overhead discipline the tracer established.

Three instrument families:

* **counters** — monotonically increasing event counts (persist flushes,
  worker retries, cache hits);
* **gauges** — last-observed values (engine event totals, final
  simulated time);
* **histograms** — distributions over *deterministic* bucket bounds
  (PB occupancy, WPQ depth, persist accept/ack latency), with
  p50/p95/p99 estimation by linear interpolation inside the bucket.

Everything recorded must be a deterministic function of the simulated
execution (or of the job set, for the exec layer): snapshots are
byte-identical across worker counts, which CI relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds: powers of two spanning the
#: quantities the simulator observes (occupancies of a few entries up to
#: multi-million-cycle latencies), plus a catch-all +inf bucket.  Fixed
#: bounds keep merged snapshots well-defined and byte-stable.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    float(2**exp) for exp in range(0, 25)
) + (float("inf"),)


class MetricHistogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Bucket bounds are upper edges (Prometheus ``le`` convention).  The
    exact extrema let :meth:`percentile` clamp its interpolation to the
    observed range, so a single-valued histogram reports that value at
    every percentile.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        )
        if not self.bounds or self.bounds[-1] != float("inf"):
            raise ValueError("histogram bounds must end with +inf")
        self.counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation between bucket edges, clamped to the exact
        observed [min, max] so estimates never exceed real extrema.
        Deterministic: a pure function of the recorded counts.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.bounds, self.counts):
            before = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lo = max(lower, self.min)
                hi = min(bound, self.max)
                if hi <= lo:
                    return lo
                fraction = (target - before) / bucket_count
                return lo + fraction * (hi - lo)
            lower = bound
        return self.max

    def summary(self) -> Dict[str, float]:
        """Deterministic scalar digest (what the JSON snapshot exports)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (le, count) pairs — the Prometheus exposition."""
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        return pairs


class MetricsRegistry:
    """Counters, gauges, and histograms under dotted names."""

    __slots__ = ("enabled", "_counters", "_gauges", "_hists")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, MetricHistogram] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* (creating it at zero)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its latest observation."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (default bounds)."""
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = MetricHistogram()
        hist.observe(value)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> MetricHistogram:
        """The named histogram, created with *bounds* on first use.

        Unlike the emission methods this works on a disabled registry
        too (it only builds the container), so call sites that cache the
        instrument can still guard emission with ``enabled``.
        """
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = MetricHistogram(bounds)
        return hist

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counter_value(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, MetricHistogram]:
        return dict(self._hists)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._hists)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"MetricsRegistry({state}, {len(self)} instruments)"


#: Shared disabled registry: the default for every unmetered system.  It
#: is never mutated (every emitting method bails on ``enabled``), so one
#: instance safely serves all systems — mirroring ``NULL_TRACER``.
NULL_METRICS = MetricsRegistry(enabled=False)

"""Unified virtual address space with volatile and persistent regions.

Mirrors the paper's software model (Section 3): both NVM and volatile
memory are load/store accessible from the GPU; applications choose where
each data structure lives.  PM allocations carry a *name* so they can be
re-opened after a crash (the PM-near namespace table / PM-far file pools
are built on top in :mod:`repro.memory.namespace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import MemoryError_

#: Persistent memory starts at this virtual address.  Everything below is
#: volatile (GDDR-backed); everything at or above is NVM-backed.
PM_BASE = 1 << 40


@dataclass(frozen=True)
class Allocation:
    """One allocated region of the virtual address space."""

    base: int
    size: int
    persistent: bool
    name: Optional[str] = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def word(self, index: int) -> int:
        """Address of the *index*-th 4-byte word of this region."""
        addr = self.base + 4 * index
        if addr >= self.end:
            raise MemoryError_(
                f"word {index} out of bounds for region of {self.size} bytes"
            )
        return addr


def is_pm_addr(addr: int) -> bool:
    """True when *addr* lies in the persistent region."""
    return addr >= PM_BASE


class AddressSpace:
    """Bump allocator over the two regions of the unified address space."""

    def __init__(self, alignment: int = 128) -> None:
        self.alignment = alignment
        self._volatile_top = alignment
        self._pm_top = PM_BASE
        self._allocations: Dict[int, Allocation] = {}
        self._named: Dict[str, Allocation] = {}

    def alloc(
        self,
        size: int,
        persistent: bool = False,
        name: Optional[str] = None,
    ) -> Allocation:
        """Allocate *size* bytes; persistent regions may carry a name."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size}")
        if name is not None and not persistent:
            raise MemoryError_("only persistent allocations can be named")
        if name is not None and name in self._named:
            raise MemoryError_(f"PM name already allocated: {name!r}")
        size = self._round_up(size)
        if persistent:
            base = self._pm_top
            self._pm_top += size
        else:
            base = self._volatile_top
            self._volatile_top += size
        allocation = Allocation(base, size, persistent, name)
        self._allocations[base] = allocation
        if name is not None:
            self._named[name] = allocation
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release a region (bump allocator: bookkeeping only)."""
        if allocation.base not in self._allocations:
            raise MemoryError_(f"unknown allocation at {allocation.base:#x}")
        del self._allocations[allocation.base]
        if allocation.name is not None:
            self._named.pop(allocation.name, None)

    def lookup_name(self, name: str) -> Allocation:
        """Re-open a named persistent region (the recovery path)."""
        try:
            return self._named[name]
        except KeyError:
            raise MemoryError_(f"no PM region named {name!r}") from None

    def named_regions(self) -> Dict[str, Allocation]:
        return dict(self._named)

    def region_of(self, addr: int) -> Optional[Allocation]:
        """Find the allocation containing *addr* (linear scan; debug aid)."""
        for allocation in self._allocations.values():
            if allocation.contains(addr):
                return allocation
        return None

    def _round_up(self, size: int) -> int:
        rem = size % self.alignment
        return size if rem == 0 else size + self.alignment - rem

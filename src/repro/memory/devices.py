"""Timing models for memory devices and links.

Devices are pure *time calculators*: given an arrival time and a size
they return completion times and advance internal ``next_free`` markers.
They never touch the event queue, which keeps them trivially composable
and unit-testable.

The :class:`NVMController` models an ADR memory controller: a write is
*durable* the moment the controller accepts it into its capacitor-backed
write pending queue (WPQ); the WPQ drains to the NVM medium at the
device's write bandwidth, and a full WPQ back-pressures acceptance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.common.stats import StatsRegistry
from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.trace.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class WriteAck:
    """Outcome of a persist reaching a memory controller.

    ``accept_time`` is the durability point (ADR semantics).
    ``ack_time`` is when the issuing SM learns about it (ACTR decrement),
    which adds the return trip on PM-far systems.
    """

    accept_time: float
    ack_time: float


class BandwidthChannel:
    """A (latency, bytes/cycle) pipe with single-queue occupancy.

    A transfer arriving at ``now`` starts when the channel is free,
    occupies it for ``nbytes / bytes_per_cycle`` cycles, and completes one
    propagation latency after its occupancy ends.
    """

    def __init__(
        self,
        name: str,
        latency: int,
        bytes_per_cycle: float,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(f"{name}: bandwidth must be positive")
        self.name = name
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self.next_free = 0.0
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Hot path: precomputed stat names (no per-transfer f-strings).
        self._stat_bytes = f"{name}.bytes"
        self._stat_transfers = f"{name}.transfers"
        self._stat_busy = f"{name}.busy_cycles"

    def transfer(self, now: float, nbytes: int) -> float:
        """Return the completion time of a transfer of *nbytes*."""
        start = max(now, self.next_free)
        occupancy = nbytes / self.bytes_per_cycle
        self.next_free = start + occupancy
        # Inlined stats.add x3 (pure defaultdict increments; transfer is
        # the single hottest stats producer in the memory system).
        counters = self.stats._counters
        counters[self._stat_bytes] += nbytes
        counters[self._stat_transfers] += 1.0
        counters[self._stat_busy] += occupancy
        if self.tracer.enabled:
            self.tracer.span(self.name, "xfer", start, start + occupancy)
        return start + occupancy + self.latency

    def reset(self) -> None:
        self.next_free = 0.0


class NVMController:
    """One ADR-enabled NVM memory controller with a WPQ.

    Reads and writes use separate bandwidths (Optane-style asymmetry,
    Table 1: 84 GB/s read vs 42 GB/s write).
    """

    def __init__(
        self,
        name: str,
        read_bytes_per_cycle: float,
        write_bytes_per_cycle: float,
        latency: int,
        wpq_entries: int,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.read_channel = BandwidthChannel(
            f"{name}.read", latency, read_bytes_per_cycle, stats, self.tracer
        )
        self.write_bytes_per_cycle = write_bytes_per_cycle
        self.latency = latency
        self.wpq_entries = wpq_entries
        self.stats = stats if stats is not None else StatsRegistry()
        # Optional chronic-fault process (repro.chaos): scales drain
        # bandwidth and clamps WPQ capacity inside scheduled windows.
        self.throttle = None
        # Drain-end times of writes currently considered in the WPQ; a new
        # write is accepted once a slot is free.
        self._wpq: Deque[float] = deque()
        self._last_drain_end = 0.0
        self._stat_wpq_stall = f"{name}.wpq_stall_cycles"
        self._stat_bytes_written = f"{name}.bytes_written"
        self._stat_writes = f"{name}.writes"

    def read(self, now: float, nbytes: int) -> float:
        """Completion time of a read of *nbytes* from the NVM medium."""
        return self.read_channel.transfer(now, nbytes)

    def write(self, now: float, nbytes: int) -> float:
        """Accept a persist; return the acceptance (durability) time.

        The write is durable at acceptance (ADR).  Acceptance waits for a
        free WPQ slot, which frees when the oldest queued write finishes
        draining to the medium at the NVM write bandwidth.
        """
        while self._wpq and self._wpq[0] <= now:
            self._wpq.popleft()
        entries = self.wpq_entries
        bytes_per_cycle = self.write_bytes_per_cycle
        if self.throttle is not None:
            bytes_per_cycle *= self.throttle.nvm_scale_at(now)
            limit = self.throttle.wpq_limit_at(now)
            if limit:
                entries = max(1, min(entries, limit))
        if len(self._wpq) >= entries:
            accept = self._wpq[len(self._wpq) - entries]
            self.stats.add(self._stat_wpq_stall, accept - now)
            if self.metrics.enabled:
                self.metrics.inc("nvm.wpq_stalls")
                self.metrics.observe("nvm.wpq_stall_cycles", accept - now)
        else:
            accept = now
        drain = nbytes / bytes_per_cycle
        drain_end = max(accept, self._last_drain_end) + drain
        self._last_drain_end = drain_end
        self._wpq.append(drain_end)
        self.stats.add(self._stat_bytes_written, nbytes)
        self.stats.add(self._stat_writes)
        if self.metrics.enabled:
            self.metrics.observe("nvm.wpq_depth", float(len(self._wpq)))
        if self.tracer.enabled:
            self.tracer.span(self.name, "write", accept, drain_end)
            self.tracer.counter(self.name, "wpq", now, float(len(self._wpq)))
        return accept

    def occupancy(self, now: float) -> float:
        """Fraction of WPQ capacity still draining at *now*.

        Non-mutating (safe to probe future instants for admission
        backoff).  Acceptance backpressure keeps this at or below 1.0
        in steady state — sustained values near 1.0 are the congestion
        signal the resilience watermarks key off.
        """
        pending = sum(1 for end in self._wpq if end > now)
        return pending / self.wpq_entries

    def reset(self) -> None:
        self.read_channel.reset()
        self._wpq.clear()
        self._last_drain_end = 0.0

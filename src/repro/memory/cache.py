"""Cache models.

:class:`L1Cache` is a set-associative, per-SM cache.  PM lines carry real
word values (so an SM reads its own buffered persists, and cross-SM reads
of PM can be stale until an invalidation — exactly the behaviour scoped
persistency bugs rely on).  Volatile lines are tag-only: GPU L1s are
write-through for global data, so the shared visible image is always
functionally current for volatile reads.

Each L1 line carries the paper's extensions (Section 6): a PM bit and a
persist-buffer index.

:class:`TagCache` is a tag-only set-associative model used for the shared
L2 (timing and hit/miss statistics only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.common.stats import StatsRegistry


@dataclass(slots=True)
class CacheLine:
    """One L1 line with the paper's PM extensions.

    A ``slots`` dataclass: line fields are probed on every load, store
    and eviction, so dropping the per-instance ``__dict__`` measurably
    speeds up the simulator hot path.
    """

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    is_pm: bool = False
    #: Index of the persist-buffer entry owning this line (or None).
    pb_index: Optional[int] = None
    #: Word values for PM lines (addr -> value); empty for volatile lines.
    words: Dict[int, int] = field(default_factory=dict)
    #: Subset of ``words`` written locally since the last flush — the set
    #: a write-back persists.  Flushing only locally written words keeps
    #: non-coherent L1s from clobbering other SMs' updates to the same
    #: line with a stale fetched snapshot.
    dirty_words: Dict[int, int] = field(default_factory=dict)
    last_use: float = 0.0

    def write_words(self, words: "Dict[int, int]") -> None:
        """Apply locally written words (store path)."""
        self.words.update(words)
        self.dirty_words.update(words)
        self.dirty = True

    def reset(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.is_pm = False
        self.pb_index = None
        self.words = {}
        self.dirty_words = {}


class L1Cache:
    """Per-SM set-associative L1 with PM-aware lines."""

    def __init__(
        self,
        name: str,
        size: int,
        line_size: int,
        assoc: int,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = size // (line_size * assoc)
        if self.num_sets < 1:
            raise ValueError(f"{name}: cache too small for its geometry")
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        #: Flat view of every line (set-major, way order) — the geometry
        #: never changes after construction, so whole-cache scans
        #: (invalidations, dirty-line sweeps) iterate this list instead
        #: of a nested generator.
        self._all_lines: List[CacheLine] = [
            line for ways in self._sets for line in ways
        ]
        self.stats = stats if stats is not None else StatsRegistry()

    # ------------------------------------------------------------------
    # addressing helpers
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_size) % self.num_sets

    # ------------------------------------------------------------------
    # lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, now: float = 0.0) -> Optional[CacheLine]:
        """Return the resident line for *line_addr*, updating LRU state."""
        for line in self._sets[self._set_index(line_addr)]:
            if line.valid and line.tag == line_addr:
                line.last_use = now
                return line
        return None

    def victim_for(self, line_addr: int) -> CacheLine:
        """Choose the fill target for *line_addr*: an invalid way if one
        exists, else the LRU way.  The caller decides what to do with a
        dirty victim before overwriting it."""
        ways = self._sets[self._set_index(line_addr)]
        for line in ways:
            if not line.valid:
                return line
        return min(ways, key=lambda line: line.last_use)

    def fill(
        self,
        line: CacheLine,
        line_addr: int,
        is_pm: bool,
        words: Optional[Dict[int, int]] = None,
        now: float = 0.0,
    ) -> None:
        """Install *line_addr* into a (previously chosen) way."""
        line.tag = line_addr
        line.valid = True
        line.dirty = False
        line.is_pm = is_pm
        line.pb_index = None
        line.words = dict(words) if words else {}
        line.dirty_words = {}
        line.last_use = now

    # ------------------------------------------------------------------
    # invalidation (epoch barriers, device-scope acquires)
    # ------------------------------------------------------------------
    def drop_line(self, line: CacheLine) -> None:
        """Invalidate a single resident line (eviction write-back).
        Subclasses that index lines by tag must prune here as well."""
        line.reset()

    def invalidate_clean_pm(self) -> int:
        """Drop clean PM lines (device-scope pAcq under SBRP).  Dirty PM
        lines hold this SM's own buffered persists and stay."""
        dropped = 0
        for line in self._all_lines:
            if line.valid and line.is_pm and not line.dirty:
                line.reset()
                dropped += 1
        return dropped

    def invalidate_pm(self) -> int:
        """Drop all (now clean) PM lines — the epoch barrier's behaviour
        after it has flushed dirty persists."""
        dropped = 0
        for line in self._all_lines:
            if line.valid and line.is_pm:
                line.reset()
                dropped += 1
        return dropped

    def invalidate_all(self) -> int:
        """Drop everything — GPM's system-scope fence hits volatile lines
        too, which is precisely its extra cost over the PM-only epoch."""
        dropped = 0
        for line in self._all_lines:
            if line.valid:
                line.reset()
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def dirty_pm_lines(self) -> List[CacheLine]:
        return [
            line
            for line in self._all_lines
            if line.valid and line.dirty and line.is_pm
        ]

    def _lines(self) -> Iterator[CacheLine]:
        return iter(self._all_lines)

    def occupancy(self) -> int:
        return sum(1 for line in self._all_lines if line.valid)


class TagCache:
    """Tag-only set-associative cache (the shared L2 timing model)."""

    def __init__(
        self,
        name: str,
        size: int,
        line_size: int,
        assoc: int = 8,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = max(1, size // (line_size * assoc))
        self._sets: List[Dict[int, float]] = [{} for _ in range(self.num_sets)]
        self.stats = stats if stats is not None else StatsRegistry()

    def access(self, line_addr: int, now: float, allocate: bool = True) -> bool:
        """Touch *line_addr*; return True on hit.  Misses allocate with
        LRU replacement when *allocate*."""
        index = (line_addr // self.line_size) % self.num_sets
        tags = self._sets[index]
        if line_addr in tags:
            tags[line_addr] = now
            return True
        if allocate:
            if len(tags) >= self.assoc:
                evict = min(tags, key=tags.get)  # type: ignore[arg-type]
                del tags[evict]
            tags[line_addr] = now
        return False

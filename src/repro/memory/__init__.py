"""The memory substrate: address space, value images, caches, devices.

Layout of the simulated physical address space::

    [0, PM_BASE)        volatile global memory (GDDR-backed)
    [PM_BASE, ...)      persistent memory (NVM-backed)

Functional values live in two images (:class:`BackingStore`):

* the *visible* image — what the globally shared L2/memory returns, and
* the *durable* image — what survives a crash; it is updated only when a
  persist is accepted by an ADR memory controller.

Per-SM L1 caches additionally hold line-local values for PM data, which
is what makes cross-SM stale reads (and hence scoped persistency bugs,
Section 5.3 of the paper) observable in this simulator.
"""

from repro.memory.address_space import PM_BASE, AddressSpace, Allocation
from repro.memory.backing import WORD_SIZE, BackingStore
from repro.memory.cache import CacheLine, L1Cache, TagCache
from repro.memory.devices import BandwidthChannel, NVMController, WriteAck
from repro.memory.namespace import NamespaceTable, PMPool
from repro.memory.subsystem import MemorySubsystem

__all__ = [
    "PM_BASE",
    "WORD_SIZE",
    "AddressSpace",
    "Allocation",
    "BackingStore",
    "BandwidthChannel",
    "CacheLine",
    "L1Cache",
    "MemorySubsystem",
    "NVMController",
    "NamespaceTable",
    "PMPool",
    "TagCache",
    "WriteAck",
]

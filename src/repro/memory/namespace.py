"""Persistent naming of PM regions (the paper's Section 3 software model).

On **PM-near** systems the GPU driver keeps a *namespace table* mapping
names of allocated contiguous PM regions to their physical placement;
after a crash, a program re-opens its data structures by name.  On
**PM-far** systems, GPM allocates memory out of files on PM; we model the
same open/create/close discipline with :class:`PMPool`.

Both sit on top of :class:`~repro.memory.address_space.AddressSpace`; the
crash/recovery harness carries the table across simulated power cycles
(it is driver-managed metadata, persistent by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import MemoryError_
from repro.memory.address_space import AddressSpace, Allocation


@dataclass(frozen=True)
class NamespaceEntry:
    """One row of the persistent namespace table."""

    name: str
    base: int
    size: int


class NamespaceTable:
    """Driver-managed mapping of PM region names to addresses.

    The table itself is persistent: :meth:`export` / :meth:`restore` move
    it across simulated power cycles.
    """

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        self._entries: Dict[str, NamespaceEntry] = {}

    def create(self, name: str, size: int) -> Allocation:
        """Allocate and register a new named PM region."""
        if name in self._entries:
            raise MemoryError_(f"PM region {name!r} already exists")
        allocation = self._space.alloc(size, persistent=True, name=name)
        self._entries[name] = NamespaceEntry(name, allocation.base, allocation.size)
        return allocation

    def open(self, name: str) -> Allocation:
        """Re-open an existing region after a crash (the recovery path)."""
        entry = self._entries.get(name)
        if entry is None:
            raise MemoryError_(f"no PM region named {name!r}")
        return Allocation(entry.base, entry.size, persistent=True, name=name)

    def exists(self, name: str) -> bool:
        return name in self._entries

    def delete(self, name: str) -> None:
        entry = self._entries.pop(name, None)
        if entry is None:
            raise MemoryError_(f"no PM region named {name!r}")

    def export(self) -> Dict[str, NamespaceEntry]:
        """Snapshot for carrying across a power cycle."""
        return dict(self._entries)

    def restore(
        self, entries: Dict[str, NamespaceEntry], space: AddressSpace
    ) -> None:
        """Install a snapshot into a freshly booted system.

        The address space's PM bump pointer is advanced past every
        restored region so new allocations never alias recovered data.
        """
        self._space = space
        self._entries = dict(entries)
        for entry in entries.values():
            end = entry.base + entry.size
            if space._pm_top < end:  # noqa: SLF001 - driver-level poke
                space._pm_top = end


class PMPool:
    """File-backed PM pool for PM-far systems (GPM-style).

    A pool must be opened before its regions are handed to kernels; the
    open/close state mimics the file mapping discipline of GPM without
    modelling an actual filesystem.
    """

    def __init__(self, table: NamespaceTable) -> None:
        self._table = table
        self._open: Dict[str, Allocation] = {}

    def create(self, name: str, size: int) -> Allocation:
        allocation = self._table.create(name, size)
        self._open[name] = allocation
        return allocation

    def open(self, name: str) -> Allocation:
        allocation = self._table.open(name)
        self._open[name] = allocation
        return allocation

    def close(self, name: str) -> None:
        if name not in self._open:
            raise MemoryError_(f"pool {name!r} is not open")
        del self._open[name]

    def get(self, name: str) -> Allocation:
        allocation = self._open.get(name)
        if allocation is None:
            raise MemoryError_(f"pool {name!r} is not open")
        return allocation

    def is_open(self, name: str) -> bool:
        return name in self._open

"""Functional value images.

The simulator separates *timing* (cycles, bandwidth) from *values*.  All
values are 4-byte words held in sparse dictionaries:

* ``visible`` — the globally shared image behind the L2: what any SM
  reads on an L1 miss, and where flushed lines land.
* ``durable`` — the persistence domain: updated only when an ADR memory
  controller accepts a persist.  A crash discards everything else.

Unwritten words read as zero, matching ``cudaMemset``-style zeroed
allocations and giving crash images a well-defined "never written" state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.memory.address_space import is_pm_addr

#: All functional accesses are 4-byte words.
WORD_SIZE = 4


def check_word_aligned(addr: int) -> None:
    if addr % WORD_SIZE:
        raise ValueError(f"address {addr:#x} is not word aligned")


class BackingStore:
    """The two value images plus helpers to move words between them."""

    def __init__(self) -> None:
        self.visible: Dict[int, int] = {}
        self.durable: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # visible image
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        check_word_aligned(addr)
        return self.visible.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        check_word_aligned(addr)
        self.visible[addr] = int(value)

    def read_many(self, addrs: Iterable[int]) -> Tuple[int, ...]:
        return tuple(self.read(addr) for addr in addrs)

    # ------------------------------------------------------------------
    # durable image
    # ------------------------------------------------------------------
    def persist(self, words: Mapping[int, int]) -> None:
        """Land a set of words in the persistence domain."""
        for addr, value in words.items():
            check_word_aligned(addr)
            if not is_pm_addr(addr):
                raise ValueError(f"persist of non-PM address {addr:#x}")
            self.durable[addr] = int(value)

    def durable_read(self, addr: int) -> int:
        check_word_aligned(addr)
        return self.durable.get(addr, 0)

    def crash_image(self) -> Dict[int, int]:
        """The PM contents that survive a crash right now."""
        return dict(self.durable)

    def load_pm_image(self, image: Mapping[int, int]) -> None:
        """Install a PM image (post-crash restart): durable == visible."""
        for addr in image:
            if not is_pm_addr(addr):
                raise ValueError(f"PM image contains volatile addr {addr:#x}")
        # In-place (clear + update) rather than rebinding: the fast SM
        # caches references to these dicts, and callers holding a ref
        # must observe the restart too.
        self.durable.clear()
        self.durable.update(image)
        # After restart, the visible PM contents are exactly the durable
        # ones; volatile memory starts zeroed.
        self.visible.clear()
        self.visible.update(image)

    def pm_words(self) -> Dict[int, int]:
        """All PM words currently visible (debug/verification aid)."""
        return {a: v for a, v in self.visible.items() if is_pm_addr(a)}

"""The memory subsystem: routes line transactions to devices.

One instance per simulated system.  It owns the shared L2 tag cache, the
GDDR channels, the NVM controllers (with ADR WPQs), and — on PM-far
systems — the PCIe link.  All methods are time calculators (they return
completion times); the GPU layer schedules wake-ups off those times.

Persists are additionally recorded in an append-only :class:`PersistLog`
whose entries carry the durability (acceptance) time, so a crash at any
instant yields a well-defined durable PM image.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.common.config import GPUConfig, MemoryConfig, PMPlacement
from repro.common.stats import StatsRegistry
from repro.common.units import gbps_to_bytes_per_cycle
from repro.memory.backing import BackingStore
from repro.memory.cache import TagCache
from repro.memory.devices import BandwidthChannel, NVMController, WriteAck
from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.trace.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

#: Hot-path stat names, indexed by ``is_pm`` (no per-access f-strings).
_L2_READ_HIT = ("l2.read_hit_vol", "l2.read_hit_pm")
_L2_READ_MISS = ("l2.read_miss_vol", "l2.read_miss_pm")


@dataclass(frozen=True)
class PersistRecord:
    """One persist accepted by the persistence domain."""

    seq: int
    sm_id: int
    line_addr: int
    words: Mapping[int, int]
    accept_time: float


class PersistLog:
    """Append-only log of accepted persists, ordered by issue sequence."""

    def __init__(self) -> None:
        self._records: List[PersistRecord] = []

    def append(self, record: PersistRecord) -> None:
        self._records.append(record)

    def records(self) -> List[PersistRecord]:
        return list(self._records)

    def records_until(self, time: float) -> List[PersistRecord]:
        """Persists accepted by *time*, in acceptance order."""
        accepted = [r for r in self._records if r.accept_time <= time]
        accepted.sort(key=lambda r: (r.accept_time, r.seq))
        return accepted

    def boundary_times(self, end: Optional[float] = None) -> List[float]:
        """Distinct acceptance instants (sorted).  Crash images can only
        change at these times, so they are the complete set of
        interesting crash points."""
        times = {r.accept_time for r in self._records}
        if end is not None:
            times = {t for t in times if t <= end}
        return sorted(times)

    def image_at(self, time: float) -> Dict[int, int]:
        """Durable PM image after a crash at *time*: every persist whose
        WPQ acceptance happened by then, applied in acceptance order."""
        image: Dict[int, int] = {}
        for record in self.records_until(time):
            image.update(record.words)
        return image

    def __len__(self) -> int:
        return len(self._records)


class MemorySubsystem:
    """Shared L2 + device routing for one simulated system."""

    def __init__(
        self,
        memory: MemoryConfig,
        gpu: GPUConfig,
        backing: BackingStore,
        stats: StatsRegistry,
        tracer: Tracer = NULL_TRACER,
        faults: "Optional[FaultInjector]" = None,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.config = memory
        self.gpu = gpu
        self.backing = backing
        self.stats = stats
        self.tracer = tracer
        self.faults = faults
        self.metrics = metrics
        self.line_size = gpu.line_size
        self.l2 = TagCache("l2", gpu.l2_size, gpu.line_size, stats=stats)

        parts = memory.num_partitions
        per_part = 1.0 / parts
        self.gddr = [
            BandwidthChannel(
                f"gddr{i}",
                memory.gddr_latency,
                gbps_to_bytes_per_cycle(memory.gddr_bw_gbps) * per_part,
                stats,
                tracer,
            )
            for i in range(parts)
        ]
        scale = memory.nvm_bw_scale
        self.nvm = [
            NVMController(
                f"nvm{i}",
                gbps_to_bytes_per_cycle(memory.nvm_read_bw_gbps * scale) * per_part,
                gbps_to_bytes_per_cycle(memory.nvm_write_bw_gbps * scale) * per_part,
                memory.nvm_latency,
                memory.wpq_entries,
                stats,
                tracer,
                metrics,
            )
            for i in range(parts)
        ]
        # PCIe is full duplex: independent down (GPU->host) and up
        # (host->GPU) channels, each at the link bandwidth.
        self.pcie_down = BandwidthChannel(
            "pcie",
            memory.pcie_latency,
            gbps_to_bytes_per_cycle(memory.pcie_bw_gbps),
            stats,
            tracer,
        )
        self.pcie_up = BandwidthChannel(
            "pcie_up",
            memory.pcie_latency,
            gbps_to_bytes_per_cycle(memory.pcie_bw_gbps),
            stats,
            tracer,
        )
        self.persist_log = PersistLog()
        self._persist_seq = 0
        # Chronic fault processes (repro.chaos) throttle the controllers
        # directly: brownout windows scale drain bandwidth, squeeze
        # windows clamp WPQ capacity.  Duck-typed to avoid the cycle.
        if faults is not None and getattr(faults, "is_chronic", False):
            for controller in self.nvm:
                controller.throttle = faults

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def _partition(self, line_addr: int) -> int:
        return (line_addr // self.line_size) % self.config.num_partitions

    @property
    def _far(self) -> bool:
        return self.config.placement is PMPlacement.FAR

    # ------------------------------------------------------------------
    # read path (L1 miss fills)
    # ------------------------------------------------------------------
    def fetch_line(self, now: float, line_addr: int, is_pm: bool) -> float:
        """Time at which a missing line's data arrives at the SM."""
        after_l2 = now + self.gpu.l2_latency
        if self.l2.access(line_addr, now):
            self.stats.add(_L2_READ_HIT[is_pm])
            return after_l2
        self.stats.add(_L2_READ_MISS[is_pm])
        part = self._partition(line_addr)
        if not is_pm:
            return self.gddr[part].transfer(after_l2, self.line_size)
        if self._far:
            at_host = self.pcie_down.transfer(after_l2, self.line_size)
            at_nvm = self.nvm[part].read(at_host, self.line_size)
            return self.pcie_up.transfer(at_nvm, self.line_size)
        return self.nvm[part].read(after_l2, self.line_size)

    # ------------------------------------------------------------------
    # volatile write-through
    # ------------------------------------------------------------------
    def write_volatile(self, now: float, line_addr: int, nbytes: int) -> float:
        """Timing of a write-through volatile store (fire-and-forget)."""
        after_l2 = now + self.gpu.l2_latency
        if self.l2.access(line_addr, now):
            self.stats.add("l2.write_hit_vol")
            return after_l2
        self.stats.add("l2.write_miss_vol")
        part = self._partition(line_addr)
        return self.gddr[part].transfer(after_l2, nbytes)

    # ------------------------------------------------------------------
    # persist path
    # ------------------------------------------------------------------
    def persist_line(
        self,
        now: float,
        sm_id: int,
        line_addr: int,
        words: Mapping[int, int],
    ) -> WriteAck:
        """Send one dirty PM line toward the persistence domain.

        Returns the acceptance (durability) time and the time at which
        the acknowledgement reaches the issuing SM.  Persists write
        through the shared L2 (the paper keeps no L2 persist buffer).

        With a fault injector attached, three things can diverge from
        the clean path: the NVM write may suffer transient failures
        (extra pre-acceptance latency, or escalation), the *recorded*
        durability time may shift later than the WPQ acknowledged
        (drain reordering), and the ack the SM sees may be delayed or
        lost (``inf``).  The hardware-believed WriteAck and the logged
        record are deliberately allowed to disagree — that disagreement
        *is* the injected bug.
        """
        nbytes = self.line_size
        self._persist_seq += 1
        seq = self._persist_seq
        injected = self.faults is not None and self.faults.active
        delay = self.faults.persist_delay(seq, now=now) if injected else 0.0
        after_l2 = now + self.gpu.l2_latency
        self.l2.access(line_addr, now)
        part = self._partition(line_addr)
        if self._far:
            at_host = self.pcie_down.transfer(after_l2, nbytes)
            if self.config.eadr:
                # eADR: durable once resident in the battery-backed host
                # LLC; the NVM write drains in the background.
                accept = at_host
                self.nvm[part].write(at_host + delay, nbytes)
            else:
                accept = self.nvm[part].write(at_host + delay, nbytes)
            ack = accept + self.config.pcie_latency
        else:
            accept = self.nvm[part].write(after_l2 + delay, nbytes)
            ack = accept + self.gpu.l2_latency
        durable_at = accept
        if injected:
            durable_at = self.faults.transform_accept(seq, accept)
            ack = self.faults.transform_ack(seq, accept, ack)
        self.persist_log.append(
            PersistRecord(seq, sm_id, line_addr, dict(words), durable_at)
        )
        self.stats.add("persist.lines")
        self.stats.add("persist.bytes", nbytes)
        if self.metrics.enabled:
            self.metrics.inc("persist.lines")
            self.metrics.observe("persist.accept_latency", accept - now)
            if math.isfinite(ack):
                self.metrics.observe("persist.ack_latency", ack - accept)
        return WriteAck(accept_time=accept, ack_time=ack)

    def wpq_occupancy(self, now: float) -> float:
        """Worst-case WPQ occupancy fraction across NVM controllers."""
        return max(controller.occupancy(now) for controller in self.nvm)

    # ------------------------------------------------------------------
    # crash support
    # ------------------------------------------------------------------
    def crash_image(self, time: float) -> Dict[int, int]:
        """The durable PM image if power fails at *time*: host-initialized
        durable contents overlaid with every persist accepted by then.

        A fault injector may rewrite the accepted records at this point
        (torn persists: lines still in the WPQ at the crash lose a
        subset of their words)."""
        image = dict(self.backing.durable)
        records = self.persist_log.records_until(time)
        if self.faults is not None and self.faults.active:
            records = self.faults.torn_records(records, time)
        for record in records:
            image.update(record.words)
        return image

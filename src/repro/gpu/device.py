"""The GPU device: block dispatch, kernel launch, drain at kernel end.

A kernel launch queues its grid's threadblocks; each SM runs as many
concurrent blocks as its warp slots allow (one, with the paper's 1024
threads/block and 32 resident warps).  A launch completes when every
block has retired **and** every buffered persist has drained — kernel
boundaries are durability points under all three models, matching GPM's
``gpm_persist`` discipline and giving a fair end-of-kernel comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from collections import deque

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.memory.backing import BackingStore
from repro.memory.subsystem import MemorySubsystem
from repro.gpu.engine import Engine, FastEngine
from repro.gpu.warp import Warp, WarpCtx, WarpState
from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.trace.tracer import NULL_TRACER, Tracer

KernelFn = Callable[..., Any]


@dataclass(frozen=True)
class KernelResult:
    """Timing and bookkeeping of one kernel launch."""

    name: str
    start: float
    end: float
    blocks: int

    @property
    def cycles(self) -> float:
        return self.end - self.start


@dataclass
class _Block:
    key: int
    block_id: int
    warps_remaining: int


class GPU:
    """One simulated GPU attached to a memory subsystem."""

    def __init__(
        self,
        config: SystemConfig,
        backing: Optional[BackingStore] = None,
        stats: Optional[StatsRegistry] = None,
        max_cycles: float = 2e9,
        tracer: Optional[Tracer] = None,
        faults: Optional[Any] = None,
        watchdog_events: Optional[int] = None,
        model_factory: Optional[Callable[..., Any]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        from repro.persistency import build_model  # local import: cycle guard

        config.validate()
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.backing = backing if backing is not None else BackingStore()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        fast = config.engine == "fast"
        batched = fast and config.batch_warps
        self._fast_engine = fast
        if batched:
            from repro.gpu.batchstep import BatchEngine  # cycle guard

            engine_cls = BatchEngine
        else:
            engine_cls = FastEngine if fast else Engine
        self.engine = engine_cls(
            max_cycles=max_cycles,
            stats=self.stats,
            watchdog_events=watchdog_events,
            metrics=self.metrics,
        )
        self.engine.watchdog_diagnostics = self._watchdog_diagnostics
        self.subsystem = MemorySubsystem(
            config.memory, config.gpu, self.backing, self.stats, self.tracer,
            faults=faults, metrics=self.metrics,
        )
        # model_factory overrides the registered model class — the
        # conformance checker's mutation-teeth hook (repro.check.mutants).
        if model_factory is not None:
            self.model = model_factory(config, self.stats)
        else:
            self.model = build_model(config, self.stats)
        if batched:
            from repro.gpu.batchstep import BatchSM as sm_cls  # cycle guard
        elif fast:
            from repro.gpu.fastcore import FastSM as sm_cls  # cycle guard
        else:
            from repro.gpu.sm import SM as sm_cls  # local import: cycle guard

        self.sms = [sm_cls(i, self) for i in range(config.gpu.num_sms)]
        self._block_keys = itertools.count()
        self._pending_blocks: Deque[int] = deque()
        self._live_blocks: Dict[int, _Block] = {}
        self._launch_ctx: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelFn,
        grid_blocks: int,
        args: tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
        drain: bool = False,
    ) -> KernelResult:
        """Run *kernel* over *grid_blocks* threadblocks to completion.

        The kernel is a generator function ``kernel(w: WarpCtx, *args,
        **kwargs)``; every warp of every block runs one instance.  With
        ``drain=True`` the launch additionally waits for every buffered
        persist to reach the persistence domain (host sync semantics).
        """
        if self._launch_ctx is not None:
            raise SimulationError("a kernel launch is already in progress")
        if grid_blocks < 1:
            raise SimulationError("grid must have at least one block")
        start = self.engine.now
        self._launch_ctx = {
            "kernel": kernel,
            "args": args,
            "kwargs": kwargs or {},
            "blocks_done": 0,
            "grid_blocks": grid_blocks,
        }
        self._pending_blocks = deque(range(grid_blocks))
        for sm in self.sms:
            self._fill_sm(sm, start)
        if self._fast_engine:
            # Stop-flag protocol: on_warp_done raises the flag when the
            # launch context clears, sparing a closure call per event.
            self.engine.run()
        else:
            self.engine.run(until=lambda: self._launch_ctx is None)
        if self._launch_ctx is not None:
            blocked = [
                (sm.sm_id, repr(w))
                for sm in self.sms
                for w in sm.warps.values()
                if w.state is not WarpState.DONE
            ]
            raise SimulationError(
                f"kernel deadlocked with {len(blocked)} unfinished warps: "
                f"{blocked[:8]}"
            )
        # Kernel completion = last warp retired.  Buffered persists keep
        # draining in the background (crash consistency never depended on
        # kernel boundaries being durability points); programs that need
        # durability use dFence in-kernel or host-side sync().
        self.stats.add("kernel.launches")
        if drain:
            self.sync()
        result = KernelResult(
            name=name or getattr(kernel, "__name__", "kernel"),
            start=start,
            end=self.engine.now,
            blocks=grid_blocks,
        )
        if self.tracer.enabled:
            self.tracer.span(
                "gpu", result.name, start, result.end, {"blocks": grid_blocks}
            )
        return result

    def sync(self) -> float:
        """Host-side synchronize-and-persist: drain every SM's buffered
        persists to the persistence domain (event-driven, so SMs drain
        concurrently).  Returns the completion time."""
        for sm in self.sms:
            self.model.begin_drain(sm, self.engine.now)
        self.engine.run(
            until=lambda: all(
                self.model.drained(sm, self.engine.now) for sm in self.sms
            )
        )
        undrained = [
            sm.sm_id
            for sm in self.sms
            if not self.model.drained(sm, self.engine.now)
        ]
        if undrained:
            raise SimulationError(
                f"drain stalled on SMs {undrained}: no events left but "
                "persists remain buffered"
            )
        for sm in self.sms:
            self.model.finish_drain(sm)
        return self.engine.now

    # ------------------------------------------------------------------
    # block dispatch
    # ------------------------------------------------------------------
    def _fill_sm(self, sm, now: float) -> None:
        """Dispatch queued blocks onto free warp slots of *sm*."""
        assert self._launch_ctx is not None
        gpu_cfg = self.config.gpu
        warps_per_block = gpu_cfg.warps_per_block
        while self._pending_blocks:
            used = len(sm.warps)
            if used + warps_per_block > gpu_cfg.max_warps_per_sm:
                break
            block_id = self._pending_blocks.popleft()
            key = next(self._block_keys)
            self._live_blocks[key] = _Block(key, block_id, warps_per_block)
            base_slot = self._free_slot_base(sm, warps_per_block)
            for w in range(warps_per_block):
                ctx = WarpCtx(
                    block_id=block_id,
                    warp_in_block=w,
                    warp_size=gpu_cfg.warp_size,
                    block_size=gpu_cfg.threads_per_block,
                    grid_blocks=self._launch_ctx["grid_blocks"],
                )
                gen = self._launch_ctx["kernel"](
                    ctx, *self._launch_ctx["args"], **self._launch_ctx["kwargs"]
                )
                warp = Warp(base_slot + w, ctx, gen, key)
                sm.add_warp(warp, now)
            self.stats.add("kernel.blocks_dispatched")

    def _free_slot_base(self, sm, needed: int) -> int:
        """First run of *needed* consecutive free warp slots."""
        occupied = set(sm.warps)
        limit = self.config.gpu.max_warps_per_sm
        for base in range(0, limit - needed + 1):
            if all(base + i not in occupied for i in range(needed)):
                return base
        raise SimulationError("no free warp slots despite capacity check")

    def _watchdog_diagnostics(self) -> Dict[str, float]:
        """Queue depths for :class:`LivelockError` messages: how many
        warps each SM still holds and how many blocks wait for slots."""
        depths: Dict[str, float] = {
            "blocks.pending": float(len(self._pending_blocks)),
            "blocks.live": float(len(self._live_blocks)),
        }
        for sm in self.sms:
            live = [w for w in sm.warps.values() if w.state is not WarpState.DONE]
            if live:
                depths[f"sm{sm.sm_id}.live_warps"] = float(len(live))
        return depths

    def on_warp_done(self, sm, warp: Warp, now: float) -> None:
        """SM callback: a warp's generator finished."""
        self.engine.note_progress()
        block = self._live_blocks.get(warp.block_key)
        if block is None:
            raise SimulationError(f"warp finished for unknown block {warp.block_key}")
        block.warps_remaining -= 1
        if block.warps_remaining > 0:
            return
        del self._live_blocks[warp.block_key]
        sm.remove_block(warp.block_key)
        assert self._launch_ctx is not None
        self._launch_ctx["blocks_done"] += 1
        if self._launch_ctx["blocks_done"] == self._launch_ctx["grid_blocks"]:
            self._launch_ctx = None
            self.engine._stop = True
            return
        self._fill_sm(sm, now)

"""The Streaming Multiprocessor: warp scheduling and memory access.

An SM issues at most one warp-instruction per cycle (round-robin over
ready warps), owns a private non-coherent L1, and consults the system's
persistency model on every PM store, fence, scoped acquire/release, and
dirty-PM eviction — the integration points of the paper's Section 6
hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.common.errors import SimulationError
from repro.memory.address_space import is_pm_addr
from repro.memory.backing import WORD_SIZE
from repro.memory.cache import CacheLine, L1Cache
from repro.gpu.ops import (
    AtomicAdd,
    BlockBarrier,
    Compute,
    DFence,
    Ld,
    OFence,
    Op,
    PAcq,
    PRel,
    St,
    ThreadFence,
)
from repro.gpu.warp import Warp, WarpState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.device import GPU

#: Stall-attribution category of each warp op (trace residency buckets).
_OP_CATEGORY = {
    Compute: "compute",
    Ld: "ld",
    St: "st",
    AtomicAdd: "atomic",
    OFence: "ofence",
    DFence: "dfence",
    PAcq: "pacq",
    PRel: "prel",
    ThreadFence: "threadfence",
    BlockBarrier: "barrier",
}


class SM:
    """One streaming multiprocessor."""

    #: L1 implementation to instantiate; the fast core swaps in
    #: :class:`~repro.gpu.fastcore.FastL1Cache` via this hook.
    l1_class = L1Cache

    def __init__(self, sm_id: int, gpu: "GPU") -> None:
        self.sm_id = sm_id
        self.gpu = gpu
        self.config = gpu.config
        self.engine = gpu.engine
        self.subsystem = gpu.subsystem
        self.backing = gpu.backing
        self.model = gpu.model
        self.stats = gpu.stats
        self.tracer = gpu.tracer
        self.metrics = gpu.metrics
        cfg = gpu.config.gpu
        self.l1 = self.l1_class(
            f"sm{sm_id}.l1", cfg.l1_size, cfg.line_size, cfg.l1_assoc, gpu.stats
        )
        self.line_size = cfg.line_size
        #: Per-SM flush counter name, precomputed (flush_line is hot).
        self.stat_pm_flushes = f"sm{sm_id}.pm_flushes"
        self.warps: Dict[int, Warp] = {}
        self._rr = 0
        self._next_issue_free = 0.0
        self._issue_pending = False
        self._barriers: Dict[int, List[Warp]] = {}
        self.model.init_sm(self)

    # ------------------------------------------------------------------
    # warp lifecycle
    # ------------------------------------------------------------------
    def warp_track(self, warp: Warp) -> str:
        """Trace-track name of a warp slot (``sm0.w03``)."""
        return f"sm{self.sm_id}.w{warp.slot:02d}"

    def add_warp(self, warp: Warp, now: float) -> None:
        if warp.slot in self.warps:
            raise SimulationError(f"warp slot {warp.slot} already occupied")
        warp.ready_time = now
        self.warps[warp.slot] = warp
        if self.tracer.enabled:
            self.tracer.warp_begin(self.warp_track(warp), now)
        self.kick(now)

    def remove_block(self, block_key: int) -> None:
        """Free the warp slots of a finished block."""
        for slot in [s for s, w in self.warps.items() if w.block_key == block_key]:
            del self.warps[slot]

    def active_warps(self) -> int:
        return sum(1 for w in self.warps.values() if w.state is not WarpState.DONE)

    # ------------------------------------------------------------------
    # issue machinery
    # ------------------------------------------------------------------
    def kick(self, now: float) -> None:
        """Ensure an issue event will fire when a warp can issue."""
        if self._issue_pending:
            return
        ready_times = [
            w.ready_time for w in self.warps.values() if w.state is WarpState.READY
        ]
        if not ready_times:
            return
        when = max(now, min(ready_times), self._next_issue_free)
        self._issue_pending = True
        self.engine.schedule(when, self._on_issue)

    def _on_issue(self, now: float) -> None:
        self._issue_pending = False
        if now < self._next_issue_free:
            self.kick(now)
            return
        warp = self._pick_warp(now)
        if warp is None:
            self.kick(now)
            return
        self._next_issue_free = now + 1.0 / self.config.gpu.issue_width
        self._execute(warp, now)
        self.kick(now)

    def _pick_warp(self, now: float) -> Optional[Warp]:
        slots = sorted(self.warps)
        if not slots:
            return None
        n = len(slots)
        for i in range(n):
            slot = slots[(self._rr + i) % n]
            warp = self.warps[slot]
            if warp.state is WarpState.READY and warp.ready_time <= now:
                self._rr = (self._rr + i + 1) % n
                return warp
        return None

    def wake_warp(self, warp: Warp, at: float, send: object = None) -> None:
        """Unblock *warp* at time *at*, re-processing its pending op
        (persistency models call this for stall-and-retry wakes)."""
        warp.state = WarpState.READY
        warp.ready_time = at
        if send is not None:
            warp.send_value = send
        if self.tracer.enabled:
            # Close the blocked op's interval: cycles up to the wake are
            # attributed to the stalling op, after it to the scheduler.
            self.tracer.warp_phase(self.warp_track(warp), "sched", at)
        self.kick(self.engine.now)

    def complete_blocked(self, warp: Warp, at: float, send: object = None) -> None:
        """Unblock *warp* with its pending op *finished* — the generator
        resumes instead of retrying (device-scope pRel / dFence)."""
        warp.retry_op = None
        self.wake_warp(warp, at, send)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, warp: Warp, now: float) -> None:
        if warp.retry_op is not None:
            op = warp.retry_op
        else:
            op = self._advance(warp)
            if op is None:
                self._warp_done(warp, now)
                return
        self.stats.add("sm.instructions")
        if self.tracer.enabled:
            self.tracer.warp_phase(
                self.warp_track(warp), _OP_CATEGORY.get(type(op), "sched"), now
            )
        self._process(warp, op, now)

    def _advance(self, warp: Warp) -> Optional[Op]:
        try:
            op = warp.gen.send(warp.send_value)
        except StopIteration:
            return None
        warp.send_value = None
        return op

    def _warp_done(self, warp: Warp, now: float) -> None:
        warp.state = WarpState.DONE
        if self.tracer.enabled:
            self.tracer.warp_end(self.warp_track(warp), now)
        if self.metrics.enabled:
            self.metrics.inc("sm.warps_retired")
            self.metrics.observe("sm.active_warps", float(self.active_warps()))
        self.gpu.on_warp_done(self, warp, now)

    def _complete(self, warp: Warp, now: float, at: float, send: object = None) -> None:
        warp.retry_op = None
        warp.state = WarpState.READY
        warp.ready_time = max(at, now + 1)
        if send is not None:
            warp.send_value = send
        if self.tracer.enabled:
            # The op occupied [issue, ready); what follows is scheduling.
            self.tracer.warp_phase(self.warp_track(warp), "sched", warp.ready_time)

    def _block(self, warp: Warp, op: Op) -> None:
        """Stall the warp; the persistency model will wake it and the op
        will be re-processed from where it left off."""
        warp.state = WarpState.BLOCKED
        warp.retry_op = op

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    def _process(self, warp: Warp, op: Op, now: float) -> None:
        if isinstance(op, Compute):
            self._complete(warp, now, now + op.cycles)
        elif isinstance(op, Ld):
            self._process_load(warp, op, now)
        elif isinstance(op, St):
            self._process_store(warp, op, now)
        elif isinstance(op, AtomicAdd):
            self._process_atomic(warp, op, now)
        elif isinstance(op, OFence):
            self._model_call(warp, op, self.model.ofence(self, warp, now), now)
        elif isinstance(op, DFence):
            self._model_call(warp, op, self.model.dfence(self, warp, now), now)
        elif isinstance(op, PAcq):
            self._process_pacq(warp, op, now)
        elif isinstance(op, PRel):
            outcome = self.model.prel(self, warp, op.addr, op.value, op.scope, now)
            self._model_call(warp, op, outcome, now)
        elif isinstance(op, ThreadFence):
            outcome = self.model.threadfence(self, warp, op.scope, now)
            self._model_call(warp, op, outcome, now)
        elif isinstance(op, BlockBarrier):
            self._process_barrier(warp, now)
        else:
            raise SimulationError(f"unknown op {op!r}")

    def _model_call(self, warp: Warp, op: Op, outcome, now: float) -> None:
        if outcome.done:
            self._complete(warp, now, outcome.at)
        else:
            self._block(warp, op)

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------
    def _process_load(self, warp: Warp, op: Ld, now: float) -> None:
        addrs = op.addrs[op.mask]
        if addrs.size == 0:
            self._complete(warp, now, now + 1, np.zeros_like(op.addrs))
            return
        latest = float(now)
        lines_seen = set()
        for addr in addrs:
            line_addr = int(addr) - (int(addr) % self.line_size)
            if line_addr in lines_seen:
                continue
            lines_seen.add(line_addr)
            done_at = self._access_line_for_read(warp, op, line_addr, now)
            if done_at is None:
                return  # blocked on an eviction; op will retry
            latest = max(latest, done_at)
        values = np.zeros(op.addrs.shape, dtype=np.int64)
        for i in range(op.addrs.shape[0]):
            if not op.mask[i]:
                continue
            values[i] = self._read_word(int(op.addrs[i]), now)
        self._complete(warp, now, latest, values)

    def _access_line_for_read(
        self, warp: Warp, op: Ld, line_addr: int, now: float
    ) -> Optional[float]:
        """Timing of making *line_addr* readable; None when blocked."""
        is_pm = is_pm_addr(line_addr)
        kind = "pm" if is_pm else "vol"
        line = self.l1.lookup(line_addr, now)
        if line is not None:
            self.stats.add(f"l1.read_hit_{kind}")
            return now + self.config.gpu.l1_hit_latency
        self.stats.add(f"l1.read_miss_{kind}")
        victim = self.l1.victim_for(line_addr)
        if victim.valid and victim.dirty and victim.is_pm:
            outcome = self.model.evict_dirty_pm(self, warp, victim, now)
            if not outcome.done:
                self._block(warp, op)
                return None
        ready = self.subsystem.fetch_line(now, line_addr, is_pm)
        words = self._snapshot_line(line_addr) if is_pm else None
        self.l1.fill(victim, line_addr, is_pm, words, now)
        return ready

    def _snapshot_line(self, line_addr: int) -> Dict[int, int]:
        """Copy the visible image's words for one PM line (a fetched line
        carries data that may later go stale if another SM updates it)."""
        words: Dict[int, int] = {}
        for offset in range(0, self.line_size, WORD_SIZE):
            addr = line_addr + offset
            if addr in self.backing.visible:
                words[addr] = self.backing.visible[addr]
        return words

    def _read_word(self, addr: int, now: float) -> int:
        if is_pm_addr(addr):
            line = self.l1.lookup(addr - addr % self.line_size, now)
            if line is not None and addr in line.words:
                return line.words[addr]
        return self.backing.read(addr)

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------
    def _process_store(self, warp: Warp, op: St, now: float) -> None:
        if op.pm_lines is None:
            self._split_store(op)
        # Volatile half: write-through, fire-and-forget.
        if op.vol_words:
            for addr, value in op.vol_words.items():
                self.backing.write(addr, value)
                self.stats.add("store.vol_words")
            for line_addr in op.vol_lines:
                self.subsystem.write_volatile(now, line_addr, self.line_size)
            op.vol_words = {}
        # PM half: one model call per line, resumable on stalls.
        latest = float(now)
        pm_lines: Dict[int, Dict[int, int]] = op.pm_lines
        while pm_lines:
            line_addr = next(iter(pm_lines))
            words = pm_lines[line_addr]
            outcome = self.model.pm_store(self, warp, line_addr, words, now)
            if not outcome.done:
                self._block(warp, op)
                return
            del pm_lines[line_addr]
            self.stats.add("store.pm_lines")
            latest = max(latest, outcome.at)
        self._complete(warp, now, latest)

    def _split_store(self, op: St) -> None:
        """Partition a store's lanes into volatile words and PM lines."""
        pm_lines: Dict[int, Dict[int, int]] = {}
        vol_words: Dict[int, int] = {}
        vol_lines = set()
        for i in range(op.addrs.shape[0]):
            if not op.mask[i]:
                continue
            addr = int(op.addrs[i])
            value = int(op.values[i])
            if is_pm_addr(addr):
                line_addr = addr - addr % self.line_size
                pm_lines.setdefault(line_addr, {})[addr] = value
            else:
                vol_words[addr] = value
                vol_lines.add(addr - addr % self.line_size)
        op.pm_lines = pm_lines
        op.vol_words = vol_words
        op.vol_lines = vol_lines

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def _process_atomic(self, warp: Warp, op: AtomicAdd, now: float) -> None:
        olds = np.zeros(op.addrs.shape, dtype=np.int64)
        unique = set()
        for i in range(op.addrs.shape[0]):
            if not op.mask[i]:
                continue
            addr = int(op.addrs[i])
            if is_pm_addr(addr):
                raise SimulationError(
                    "atomics to PM are not supported; keep synchronization "
                    "variables in volatile memory"
                )
            old = self.backing.read(addr)
            self.backing.write(addr, old + int(op.values[i]))
            olds[i] = old
            unique.add(addr)
        done = now + self.config.gpu.l2_latency + 2 * max(1, len(unique))
        self.stats.add("sm.atomics", len(unique))
        self._complete(warp, now, done, olds)

    # ------------------------------------------------------------------
    # acquires
    # ------------------------------------------------------------------
    def _process_pacq(self, warp: Warp, op: PAcq, now: float) -> None:
        value = self.backing.read(op.addr)
        outcome = self.model.pacq(self, warp, op.addr, op.scope, value, now)
        if not outcome.done:
            self._block(warp, op)
            return
        at = outcome.at
        if value == 0:
            # Failed acquire attempt: back off before the kernel respins,
            # so spin loops do not saturate the issue port.
            at = max(at, now + self.config.gpu.spin_backoff_cycles)
            self.stats.add("sm.pacq_spins")
        self._complete(warp, now, at, int(value))

    # ------------------------------------------------------------------
    # block barrier
    # ------------------------------------------------------------------
    def _process_barrier(self, warp: Warp, now: float) -> None:
        waiting = self._barriers.setdefault(warp.block_key, [])
        waiting.append(warp)
        expected = sum(
            1
            for w in self.warps.values()
            if w.block_key == warp.block_key and w.state is not WarpState.DONE
        )
        if len(waiting) < expected:
            warp.state = WarpState.AT_BARRIER
            return
        del self._barriers[warp.block_key]
        for w in waiting:
            w.state = WarpState.READY
            w.ready_time = now + 1
            w.retry_op = None
            if self.tracer.enabled:
                self.tracer.warp_phase(self.warp_track(w), "sched", now + 1)
        self.kick(now)

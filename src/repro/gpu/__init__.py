"""The GPU execution model: SMs, warps, SIMT kernels, event engine.

Kernels are Python generator functions executed at *warp* granularity
(32 lanes in lock-step with active-lane masks), mirroring both real SIMT
hardware and the paper's observation that per-warp tracking is the right
granularity for persist ordering.
"""

from repro.gpu.engine import Engine
from repro.gpu.ops import (
    AtomicAdd,
    BlockBarrier,
    Compute,
    DFence,
    Ld,
    OFence,
    PAcq,
    PRel,
    St,
    ThreadFence,
)
from repro.gpu.warp import Warp, WarpCtx, WarpState
from repro.gpu.sm import SM
from repro.gpu.device import GPU, KernelResult

__all__ = [
    "GPU",
    "AtomicAdd",
    "BlockBarrier",
    "Compute",
    "DFence",
    "Engine",
    "KernelResult",
    "Ld",
    "OFence",
    "PAcq",
    "PRel",
    "SM",
    "St",
    "ThreadFence",
    "Warp",
    "WarpCtx",
    "WarpState",
]

"""Warp-level operations yielded by kernel generators.

A kernel is a Python generator over a :class:`~repro.gpu.warp.WarpCtx`;
every ``yield`` hands one of these operations to the SM, which simulates
its timing and (for loads, acquires, atomics) sends the result back into
the generator.

Addresses and values are per-lane numpy arrays; ``mask`` selects the
active lanes (SIMT predication).  Scalar ops (``PAcq``/``PRel``) take a
single address because in every paper workload a single leader lane
performs the release/acquire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.common.config import Scope


def _as_array(values: Sequence[int] | np.ndarray | int, lanes: int) -> np.ndarray:
    if type(values) is np.ndarray:  # hot path: already a lane array
        if values.shape != (lanes,):
            raise ValueError(
                f"expected {lanes} lane values, got shape {values.shape}"
            )
        return values if values.dtype == np.int64 else values.astype(np.int64)
    if type(values) is int or np.isscalar(values):
        return np.full(lanes, values, dtype=np.int64)
    arr = np.asarray(values, dtype=np.int64)
    if arr.shape != (lanes,):
        raise ValueError(f"expected {lanes} lane values, got shape {arr.shape}")
    return arr


#: Shared all-lanes-active masks (mask=None default), one per warp size.
#: Read-only so accidental in-place mutation fails loudly instead of
#: corrupting every other op's mask.
_FULL_MASKS: dict = {}


def _full_mask(lanes: int) -> np.ndarray:
    mask = _FULL_MASKS.get(lanes)
    if mask is None:
        mask = np.ones(lanes, dtype=bool)
        mask.setflags(write=False)
        _FULL_MASKS[lanes] = mask
    return mask


def _as_mask(mask: Optional[Sequence[bool]], lanes: int) -> np.ndarray:
    if mask is None:
        return _full_mask(lanes)
    arr = np.asarray(mask, dtype=bool)
    if arr.shape != (lanes,):
        raise ValueError(f"expected {lanes} mask lanes, got shape {arr.shape}")
    return arr


@dataclass(slots=True)
class Op:
    """Base class of all warp-level operations.

    All ops are ``slots`` dataclasses: they are created once per executed
    warp instruction, so trimming the per-instance ``__dict__`` is a
    measurable win on the simulator hot path.
    """


@dataclass(slots=True)
class Compute(Op):
    """Pure ALU work costing a fixed number of cycles."""

    cycles: int = 4


@dataclass(slots=True)
class Ld(Op):
    """Per-lane loads; the SM sends back an int64 array of lane values."""

    addrs: np.ndarray
    mask: np.ndarray


@dataclass(slots=True)
class St(Op):
    """Per-lane stores (volatile or PM, decided per address).

    The SM partitions the lanes once per op and caches the result here
    (``None`` = not yet split), so a store stalled by the persistency
    model resumes from the lines it had left rather than re-splitting.
    """

    addrs: np.ndarray
    values: np.ndarray
    mask: np.ndarray
    pm_lines: Optional[dict] = None
    vol_words: Optional[dict] = None
    vol_lines: Optional[set] = None


@dataclass(slots=True)
class AtomicAdd(Op):
    """Per-lane atomic fetch-and-add performed at the L2 point of
    coherence; returns the per-lane old values."""

    addrs: np.ndarray
    values: np.ndarray
    mask: np.ndarray


@dataclass(slots=True)
class OFence(Op):
    """SBRP ordering fence: intra-thread PMO, buffered (Box 2)."""


@dataclass(slots=True)
class DFence(Op):
    """SBRP durability fence: stalls until prior persists are durable."""


@dataclass(slots=True)
class PAcq(Op):
    """Scoped persist acquire on one flag word; returns its value."""

    addr: int
    scope: Scope


@dataclass(slots=True)
class PRel(Op):
    """Scoped persist release: publish *value* at *addr* once ordering
    obligations are met."""

    addr: int
    value: int
    scope: Scope


@dataclass(slots=True)
class ThreadFence(Op):
    """Classic CUDA ``__threadfence`` family; affects volatile *and*
    persistent writes (Section 5.2).  GPM's epoch barrier is the
    system-scoped flavour."""

    scope: Scope = Scope.DEVICE


@dataclass(slots=True)
class BlockBarrier(Op):
    """``__syncthreads()``: all warps of the threadblock rendezvous."""


@dataclass(slots=True)
class KernelEnd(Op):
    """Internal: injected by the SM when a warp's generator finishes."""

"""Warp-level operations yielded by kernel generators.

A kernel is a Python generator over a :class:`~repro.gpu.warp.WarpCtx`;
every ``yield`` hands one of these operations to the SM, which simulates
its timing and (for loads, acquires, atomics) sends the result back into
the generator.

Addresses and values are per-lane numpy arrays; ``mask`` selects the
active lanes (SIMT predication).  Scalar ops (``PAcq``/``PRel``) take a
single address because in every paper workload a single leader lane
performs the release/acquire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.common.config import Scope


def _as_array(values: Sequence[int] | np.ndarray | int, lanes: int) -> np.ndarray:
    if np.isscalar(values):
        return np.full(lanes, values, dtype=np.int64)
    arr = np.asarray(values, dtype=np.int64)
    if arr.shape != (lanes,):
        raise ValueError(f"expected {lanes} lane values, got shape {arr.shape}")
    return arr


def _as_mask(mask: Optional[Sequence[bool]], lanes: int) -> np.ndarray:
    if mask is None:
        return np.ones(lanes, dtype=bool)
    arr = np.asarray(mask, dtype=bool)
    if arr.shape != (lanes,):
        raise ValueError(f"expected {lanes} mask lanes, got shape {arr.shape}")
    return arr


@dataclass
class Op:
    """Base class of all warp-level operations."""


@dataclass
class Compute(Op):
    """Pure ALU work costing a fixed number of cycles."""

    cycles: int = 4


@dataclass
class Ld(Op):
    """Per-lane loads; the SM sends back an int64 array of lane values."""

    addrs: np.ndarray
    mask: np.ndarray


@dataclass
class St(Op):
    """Per-lane stores (volatile or PM, decided per address)."""

    addrs: np.ndarray
    values: np.ndarray
    mask: np.ndarray


@dataclass
class AtomicAdd(Op):
    """Per-lane atomic fetch-and-add performed at the L2 point of
    coherence; returns the per-lane old values."""

    addrs: np.ndarray
    values: np.ndarray
    mask: np.ndarray


@dataclass
class OFence(Op):
    """SBRP ordering fence: intra-thread PMO, buffered (Box 2)."""


@dataclass
class DFence(Op):
    """SBRP durability fence: stalls until prior persists are durable."""


@dataclass
class PAcq(Op):
    """Scoped persist acquire on one flag word; returns its value."""

    addr: int
    scope: Scope


@dataclass
class PRel(Op):
    """Scoped persist release: publish *value* at *addr* once ordering
    obligations are met."""

    addr: int
    value: int
    scope: Scope


@dataclass
class ThreadFence(Op):
    """Classic CUDA ``__threadfence`` family; affects volatile *and*
    persistent writes (Section 5.2).  GPM's epoch barrier is the
    system-scoped flavour."""

    scope: Scope = Scope.DEVICE


@dataclass
class BlockBarrier(Op):
    """``__syncthreads()``: all warps of the threadblock rendezvous."""


@dataclass
class KernelEnd(Op):
    """Internal: injected by the SM when a warp's generator finishes."""

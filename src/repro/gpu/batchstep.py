"""Batched warp stepping: cohort issue events for the fast core.

The fast core (:mod:`repro.gpu.fastcore`) pays one full engine round
trip — ``schedule`` (seq, push) then pop (front compare, budget check,
accounting, dispatch) — per warp step, even when an SM issues an
unbroken run of its own events.  ``BatchSM`` turns such a run into one
*cohort*: a single popped issue event whose handler keeps stepping the
SM's warps in a loop, replaying the member events the per-warp core
would have scheduled without materializing them on the queue.

Equivalence is the hard constraint, and it is structural, not
statistical:

* An iteration is only inlined when the SM can *prove* its would-be
  next issue event is the global minimum of the event queue: no stop
  flag, no bounded-run ``until`` predicate, FIFO empty, and the event's
  time strictly below the heap front.  Schedule order then guarantees
  the reference engine would pop exactly that event next — with the
  exact ``(time, seq)`` the inline step consumes.  Everything else —
  cross-SM interleavings, same-cycle FIFO ties, drain pumps — falls out
  to a physically scheduled event with an untouched tie-break.
* Each inlined step replays the engine loop's per-event observables in
  reference order: seq consumption, the cycle-budget check (including
  the pending-event count in the error message), ``now`` advancement,
  ``events_processed``, the livelock watchdog, and the metered
  queue-depth sample (whose depth equals the reference's, because the
  reference would have popped the SM's own event before sampling).

The warp state the hot scans touch lives in struct-of-arrays mirrors
(``_soa_ready`` / ``_soa_rt`` parallel to the slot-ordered warp list):
the round-robin pick and the trailing-kick min scan index plain lists
instead of chasing per-warp attributes.  Every state transition goes
through an SM method, and ``BatchSM`` overrides each mutator to keep
the mirrors exact; consecutive ``Compute`` ops take a fully inlined
stride (no dispatch, no completion call) inside the cohort loop.

``SystemConfig.batch_warps`` selects this core (with ``engine="fast"``);
the differential harness (``repro.perfcore``) diffs batched and
unbatched against the reference engine over the whole grid, and the
Hypothesis property in ``tests/perfcore/test_batchstep.py`` drives
random ready-time collisions through both fast cores asserting identical
issue order.
"""

from __future__ import annotations

import heapq
from heapq import heappush
from typing import Callable, List, Optional

from repro.common.errors import SimulationError
from repro.gpu.engine import _QUEUE_SAMPLE_MASK, FastEngine
from repro.gpu.fastcore import _ALIGN_MASK, _DISPATCH, FastSM
from repro.gpu.ops import Compute, Op, PAcq
from repro.gpu.sm import _OP_CATEGORY, SM
from repro.gpu.warp import Warp, WarpState

_READY = WarpState.READY


class BatchEngine(FastEngine):
    """FastEngine whose accounting survives run-ahead handlers.

    ``FastEngine.run`` caches ``events_processed``/``_idle_events`` in
    locals for speed; a cohort handler that replays events inline must
    advance those counters mid-handler, so this run loop keeps them on
    the instance.  It also stashes the ``until`` predicate in
    ``_until`` while a bounded run is active — the cohort loop refuses
    to run ahead across a point where the predicate would have been
    re-checked.
    """

    def run(self, until: Optional[Callable[[], bool]] = None) -> float:
        metrics = self.metrics
        metered = metrics.enabled
        watchdog = self.watchdog_events
        max_cycles = self.max_cycles
        queue = self._queue
        fifo = self._fifo
        self._stop = False
        self._until = until
        try:
            while queue or fifo:
                if self._stop or (until is not None and until()):
                    break
                # Lexicographic min of the two sorted fronts == heap order.
                if not queue or (fifo and fifo[0] < queue[0]):
                    time, _seq, fn = fifo.popleft()
                else:
                    time, _seq, fn = heapq.heappop(queue)
                if time > max_cycles:
                    raise SimulationError(
                        f"cycle budget exceeded at t={time:.0f} "
                        f"(budget {max_cycles:.0f}); likely a livelock "
                        f"({len(queue) + len(fifo)} events still queued)"
                    )
                if time > self.now:
                    self.now = time
                self.events_processed += 1
                if watchdog:
                    idle = self._idle_events + 1
                    self._idle_events = idle
                    if idle > watchdog:
                        raise self._livelock()
                if metered and not self.events_processed & _QUEUE_SAMPLE_MASK:
                    metrics.observe(
                        "engine.queue_depth", float(len(queue) + len(fifo))
                    )
                fn(self.now)
        finally:
            self._until = None
        if self.stats is not None:
            self.stats.set(
                "engine.events_processed", float(self.events_processed)
            )
            self.stats.set("engine.now", self.now)
        if metered:
            metrics.gauge(
                "engine.events_processed", float(self.events_processed)
            )
            metrics.gauge("engine.now", self.now)
        return self.now


class BatchSM(FastSM):
    """FastSM with the cohort issue loop and SoA warp-state mirrors."""

    def __init__(self, sm_id: int, gpu) -> None:
        super().__init__(sm_id, gpu)
        #: Parallel to ``_warps_cache`` (slot order): warp readiness and
        #: ready times as plain lists for the pick/kick scans.
        self._soa_ready: List[bool] = []
        self._soa_rt: List[float] = []

    # ------------------------------------------------------------------
    # SoA mirror maintenance: rebuilt with the slot cache, updated by
    # every state-transition method.  Mutators skip the mirror while the
    # cache is invalid (``sched_idx`` may be stale); the next rebuild
    # recomputes both arrays from the warps themselves.
    # ------------------------------------------------------------------
    def _warp_list(self) -> List[Warp]:
        if self._slots_cache is None:
            warps = self.warps
            self._slots_cache = slots = sorted(warps)
            self._warps_cache = wl = [warps[slot] for slot in slots]
            for i, w in enumerate(wl):
                w.sched_idx = i
            self._soa_ready = [w.state is _READY for w in wl]
            self._soa_rt = [w.ready_time for w in wl]
        return self._warps_cache

    def _complete(
        self, warp: Warp, now: float, at: float, send: object = None
    ) -> None:
        warp.retry_op = None
        warp.state = _READY
        n1 = now + 1
        rt = at if at > n1 else n1
        warp.ready_time = rt
        if send is not None:
            warp.send_value = send
        if self._slots_cache is not None:
            i = warp.sched_idx
            self._soa_ready[i] = True
            self._soa_rt[i] = rt
        if self.tracer.enabled:
            self.tracer.warp_phase(self.warp_track(warp), "sched", rt)

    def wake_warp(self, warp: Warp, at: float, send: object = None) -> None:
        warp.state = _READY
        warp.ready_time = at
        if send is not None:
            warp.send_value = send
        if self._slots_cache is not None:
            i = warp.sched_idx
            self._soa_ready[i] = True
            self._soa_rt[i] = at
        if self.tracer.enabled:
            self.tracer.warp_phase(self.warp_track(warp), "sched", at)
        self.kick(self.engine.now)

    def _block(self, warp: Warp, op: Op) -> None:
        warp.state = WarpState.BLOCKED
        warp.retry_op = op
        if self._slots_cache is not None:
            self._soa_ready[warp.sched_idx] = False

    def _warp_done(self, warp: Warp, now: float) -> None:
        if self._slots_cache is not None:
            self._soa_ready[warp.sched_idx] = False
        super()._warp_done(warp, now)

    def _process_barrier(self, warp: Warp, now: float) -> None:
        waiting = self._barriers.setdefault(warp.block_key, [])
        waiting.append(warp)
        expected = sum(
            1
            for w in self.warps.values()
            if w.block_key == warp.block_key and w.state is not WarpState.DONE
        )
        mirrored = self._slots_cache is not None
        if len(waiting) < expected:
            warp.state = WarpState.AT_BARRIER
            if mirrored:
                self._soa_ready[warp.sched_idx] = False
            return
        del self._barriers[warp.block_key]
        rt = now + 1
        for w in waiting:
            w.state = _READY
            w.ready_time = rt
            w.retry_op = None
            if mirrored:
                i = w.sched_idx
                self._soa_ready[i] = True
                self._soa_rt[i] = rt
            if self.tracer.enabled:
                self.tracer.warp_phase(self.warp_track(w), "sched", rt)
        self.kick(now)

    def _process_pacq(self, warp: Warp, op: PAcq, now: float) -> None:
        addr = op.addr
        if addr & _ALIGN_MASK:
            self.backing.read(addr)  # raises: misaligned flag address
        value = self.backing.visible.get(addr, 0)
        if value == 0:
            # Failed spin attempt (see FastSM._process_pacq).
            self._counters["sm.pacq_spins"] += 1.0
            warp.retry_op = None
            warp.state = _READY
            rt = now + self._spin_delta
            warp.ready_time = rt
            warp.send_value = 0
            if self._slots_cache is not None:
                i = warp.sched_idx
                self._soa_ready[i] = True
                self._soa_rt[i] = rt
            if self.tracer.enabled:
                self.tracer.warp_phase(self.warp_track(warp), "sched", rt)
            return
        outcome = self.model.pacq(self, warp, addr, op.scope, value, now)
        if not outcome.done:
            self._block(warp, op)
            return
        self._complete(warp, now, outcome.at, value)

    # ------------------------------------------------------------------
    # the cohort loop
    # ------------------------------------------------------------------
    def _process(self, warp: Warp, op: Op, now: float) -> None:
        handler = _BATCH_DISPATCH.get(op.__class__)
        if handler is None:
            SM._process(self, warp, op, now)  # unknown-op error path
            return
        handler(self, warp, op, now)

    def _on_issue(self, now: float) -> None:
        """One popped issue event expands into a cohort of warp steps.

        Every iteration replays exactly one reference issue event of
        this SM: the ready pick over the SoA mirrors, execution and
        dispatch, and the trailing-kick scan.  The next member is
        consumed inline only when it is provably the engine's next pop
        (see the module docstring); otherwise it is materialized with
        the seq it would always have had, and the loop exits.
        """
        engine = self.engine
        queue = engine._queue
        fifo = engine._fifo
        max_cycles = engine.max_cycles
        watchdog = engine.watchdog_events
        metrics = engine.metrics
        metered = metrics.enabled
        quantum = self._issue_quantum
        counters = self._counters
        tracer = self.tracer
        traced = tracer.enabled
        dispatch = _BATCH_DISPATCH
        issue_cb = self._issue_cb
        self._issue_pending = False
        if self._slots_cache is None:
            self._warp_list()
        wl = self._warps_cache
        ready = self._soa_ready
        rts = self._soa_rt
        while True:
            # ---- one logical issue event at time `now` ----
            if now >= self._next_issue_free:
                n = len(wl)
                warp = None
                if n:
                    rr = self._rr
                    for i in range(n):
                        j = rr + i
                        if j >= n:
                            j -= n
                        if ready[j] and rts[j] <= now:
                            self._rr = j + 1 if j + 1 < n else 0
                            warp = wl[j]
                            break
                if warp is not None:
                    self._next_issue_free = now + quantum
                    op = warp.retry_op
                    if op is None:
                        try:
                            op = warp.gen.send(warp.send_value)
                        except StopIteration:
                            op = None
                        else:
                            warp.send_value = None
                    if op is None:
                        self._warp_done(warp, now)
                    else:
                        counters["sm.instructions"] += 1.0
                        cls = op.__class__
                        if traced:
                            tracer.warp_phase(
                                self.warp_track(warp),
                                _OP_CATEGORY.get(cls, "sched"),
                                now,
                            )
                        if cls is Compute:
                            # Compute stride: the inlined _complete of
                            # the fast core, SoA mirror included.
                            warp.retry_op = None
                            warp.state = _READY
                            at = now + op.cycles
                            n1 = now + 1
                            rt = at if at > n1 else n1
                            warp.ready_time = rt
                            rts[warp.sched_idx] = rt
                            if traced:
                                tracer.warp_phase(
                                    self.warp_track(warp), "sched", rt
                                )
                        else:
                            handler = dispatch.get(cls)
                            if handler is None:
                                SM._process(self, warp, op, now)
                            else:
                                handler(self, warp, op, now)
                    if self._issue_pending:
                        # A nested kick (wake, barrier release, block
                        # refill) already scheduled the next event.
                        return
                    if self._slots_cache is None:
                        # Execution dispatched or retired a block: the
                        # slot cache was invalidated, mirrors rebuilt.
                        self._warp_list()
                    if self._warps_cache is not wl:
                        wl = self._warps_cache
                        ready = self._soa_ready
                        rts = self._soa_rt
            # ---- trailing kick: earliest ready warp decides `when` ----
            best = None
            for i in range(len(ready)):
                if ready[i]:
                    rt = rts[i]
                    if best is None or rt < best:
                        best = rt
            if best is None:
                return
            when = best if best > now else now
            nif = self._next_issue_free
            if nif > when:
                when = nif
            # ---- inline-or-materialize decision ----
            if (
                engine._stop
                or engine._until is not None
                or fifo
                or (queue and when >= queue[0][0])
            ):
                self._issue_pending = True
                engine._seq += 1
                if when <= now:
                    fifo.append((now, engine._seq, issue_cb))
                else:
                    heappush(queue, (when, engine._seq, issue_cb))
                return
            # Inline: consume the event this SM would have scheduled,
            # replaying the engine loop's per-event accounting exactly.
            engine._seq += 1
            if when > max_cycles:
                raise SimulationError(
                    f"cycle budget exceeded at t={when:.0f} "
                    f"(budget {max_cycles:.0f}); likely a livelock "
                    f"({len(queue) + len(fifo)} events still queued)"
                )
            if when > now:
                now = when
                engine.now = when
            engine.events_processed += 1
            if watchdog:
                idle = engine._idle_events + 1
                engine._idle_events = idle
                if idle > watchdog:
                    raise engine._livelock()
            if metered and not engine.events_processed & _QUEUE_SAMPLE_MASK:
                metrics.observe(
                    "engine.queue_depth", float(len(queue) + len(fifo))
                )


#: Type-keyed dispatch of the batched core: the fast core's table with
#: the direct-state-write handlers swapped for the SoA-aware overrides.
#: (Handlers that mutate warp state via ``self._complete``/``_block``
#: pick up the overrides through ``self`` and are shared unchanged.)
_BATCH_DISPATCH = dict(_DISPATCH)
_BATCH_DISPATCH[PAcq] = BatchSM._process_pacq

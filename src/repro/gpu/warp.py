"""Warp runtime state and the kernel-facing warp context.

:class:`WarpCtx` is what kernel generator functions receive: lane ids,
global thread ids, and constructors for every warp-level operation.
:class:`Warp` is the SM-side execution record wrapping the generator.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional, Sequence

import numpy as np

from repro.common.config import Scope
from repro.gpu.ops import (
    AtomicAdd,
    BlockBarrier,
    Compute,
    DFence,
    Ld,
    OFence,
    Op,
    PAcq,
    PRel,
    St,
    ThreadFence,
    _as_array,
    _as_mask,
)


class WarpState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    AT_BARRIER = "at_barrier"
    DONE = "done"


class WarpCtx:
    """Kernel-visible view of one warp.

    Kernels are written at warp granularity: every lane executes the same
    operation on its own data, predicated by an active-lane ``mask`` —
    the SIMT model.  Example::

        def kernel(w: WarpCtx) -> KernelGen:
            values = yield w.ld(inp.base + 4 * w.tid)
            yield w.st(out.base + 4 * w.tid, values * 2, mask=w.tid < n)
            yield w.ofence()
    """

    def __init__(
        self,
        block_id: int,
        warp_in_block: int,
        warp_size: int,
        block_size: int,
        grid_blocks: int,
    ) -> None:
        self.block_id = block_id
        self.warp_in_block = warp_in_block
        self.warp_size = warp_size
        self.block_size = block_size
        self.grid_blocks = grid_blocks
        self.lane = np.arange(warp_size, dtype=np.int64)
        #: Global thread id of each lane.
        self.tid = block_id * block_size + warp_in_block * warp_size + self.lane

    @property
    def nthreads(self) -> int:
        return self.grid_blocks * self.block_size

    @property
    def warps_per_block(self) -> int:
        return self.block_size // self.warp_size

    @property
    def is_block_leader(self) -> bool:
        """True for the first warp of the block (lane 0 = thread leader)."""
        return self.warp_in_block == 0

    # ------------------------------------------------------------------
    # operation constructors
    # ------------------------------------------------------------------
    def ld(
        self, addrs: Sequence[int] | np.ndarray | int, mask: Optional[Sequence[bool]] = None
    ) -> Ld:
        return Ld(_as_array(addrs, self.warp_size), _as_mask(mask, self.warp_size))

    def st(
        self,
        addrs: Sequence[int] | np.ndarray | int,
        values: Sequence[int] | np.ndarray | int,
        mask: Optional[Sequence[bool]] = None,
    ) -> St:
        return St(
            _as_array(addrs, self.warp_size),
            _as_array(values, self.warp_size),
            _as_mask(mask, self.warp_size),
        )

    def atomic_add(
        self,
        addrs: Sequence[int] | np.ndarray | int,
        values: Sequence[int] | np.ndarray | int,
        mask: Optional[Sequence[bool]] = None,
    ) -> AtomicAdd:
        return AtomicAdd(
            _as_array(addrs, self.warp_size),
            _as_array(values, self.warp_size),
            _as_mask(mask, self.warp_size),
        )

    def compute(self, cycles: int = 4) -> Compute:
        return Compute(cycles)

    def ofence(self) -> OFence:
        return OFence()

    def dfence(self) -> DFence:
        return DFence()

    def pacq(self, addr: int, scope: Scope = Scope.BLOCK) -> PAcq:
        return PAcq(int(addr), scope)

    def prel(self, addr: int, value: int, scope: Scope = Scope.BLOCK) -> PRel:
        return PRel(int(addr), int(value), scope)

    def threadfence(self, scope: Scope = Scope.DEVICE) -> ThreadFence:
        return ThreadFence(scope)

    def sync(self) -> BlockBarrier:
        return BlockBarrier()


#: Type of a kernel body: a generator yielding ops, receiving results.
KernelGen = Generator[Op, Any, None]


class Warp:
    """SM-side execution record of one warp."""

    __slots__ = (
        "slot",
        "ctx",
        "gen",
        "state",
        "ready_time",
        "send_value",
        "retry_op",
        "block_key",
        "sched_idx",
    )

    def __init__(self, slot: int, ctx: WarpCtx, gen: KernelGen, block_key: int) -> None:
        self.slot = slot
        self.ctx = ctx
        self.gen = gen
        self.state = WarpState.READY
        self.ready_time = 0.0
        #: Index into the scheduler's struct-of-arrays warp state
        #: (:class:`~repro.gpu.batchstep.BatchSM` mirrors); maintained by
        #: the SM's warp-list rebuild, -1 while unassigned.
        self.sched_idx = -1
        #: Value to send into the generator on next resume.
        self.send_value: Any = None
        #: An op that must be re-processed instead of resuming the
        #: generator (stores stalled by the persistency model).
        self.retry_op: Optional[Op] = None
        self.block_key = block_key

    def __repr__(self) -> str:
        return (
            f"Warp(slot={self.slot}, block={self.ctx.block_id}, "
            f"w{self.ctx.warp_in_block}, {self.state.value})"
        )

"""The fast timing core: drop-in SM and L1 replacements.

``FastSM``/``FastL1Cache`` implement exactly the semantics of
:class:`~repro.gpu.sm.SM` / :class:`~repro.memory.cache.L1Cache` with the
per-lane Python overhead stripped out:

* lane loops iterate plain ``list``s (``ndarray.tolist()``) instead of
  extracting numpy scalars one ``int(arr[i])`` at a time;
* the L1 adds a tag->line dict beside the set-associative ways, turning
  the per-line way scan into one dict probe (LRU state is still kept on
  the lines, so victim choice is unchanged);
* op dispatch is a type-keyed dict instead of an ``isinstance`` chain;
* the scheduler's sorted warp-slot list is cached between occupancy
  changes;
* hot stats names are precomputed (no per-access f-strings).

None of this may change *results*: every optimization is constant-factor
over the same event graph, and the differential harness
(``repro.perfcore``) plus the golden traces (``tests/perfcore``) hold the
fast path to cycle- and stat-identical output against the retained
reference implementation.
"""

from __future__ import annotations

from heapq import heappush
from itertools import repeat
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import SimulationError
from repro.memory.address_space import PM_BASE
from repro.memory.backing import WORD_SIZE, check_word_aligned
from repro.memory.cache import CacheLine, L1Cache
from repro.gpu.ops import (
    _FULL_MASKS,
    AtomicAdd,
    BlockBarrier,
    Compute,
    DFence,
    Ld,
    OFence,
    Op,
    PAcq,
    PRel,
    St,
    ThreadFence,
)
from repro.gpu.sm import _OP_CATEGORY, SM
from repro.gpu.warp import Warp, WarpState

_READ_HIT = ("l1.read_hit_vol", "l1.read_hit_pm")
_READ_MISS = ("l1.read_miss_vol", "l1.read_miss_pm")
_READY = WarpState.READY

#: C-level OR-fold over a lane-address vector.  The OR of all addresses
#: has a low bit set iff *some* address is word-misaligned (WORD_SIZE is
#: a power of two), so one reduction replaces a per-lane `% WORD_SIZE`
#: scan in the aligned-load fast path.
_or_reduce = np.bitwise_or.reduce
_ALIGN_MASK = WORD_SIZE - 1


class FastL1Cache(L1Cache):
    """Set-associative L1 with a tag map for O(1) lookups.

    Invariant: ``_map[T] is line`` implies ``line.tag == T`` — ``fill``
    is the only place a tag changes, and it removes the victim's old
    mapping before recording the new one; single-line invalidations go
    through ``drop_line`` so the mapping dies with the tag.  A mapped
    line may still be *invalid*, so every consumer filters on
    ``line.valid`` — the same validity test the reference way-scan
    applies; only iteration cost changes.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._map: Dict[int, CacheLine] = {}
        #: Set-major way position of each line, for restoring the
        #: reference sweep order after a map-based collection.
        self._pos: Dict[int, int] = {
            id(line): i for i, line in enumerate(self._all_lines)
        }

    def lookup(self, line_addr: int, now: float = 0.0) -> Optional[CacheLine]:
        line = self._map.get(line_addr)
        if line is not None and line.valid:
            line.last_use = now
            return line
        return None

    def fill(
        self,
        line: CacheLine,
        line_addr: int,
        is_pm: bool,
        words: Optional[Dict[int, int]] = None,
        now: float = 0.0,
    ) -> None:
        tag_map = self._map
        old_tag = line.tag
        if old_tag != line_addr and tag_map.get(old_tag) is line:
            del tag_map[old_tag]
        super().fill(line, line_addr, is_pm, words, now)
        tag_map[line_addr] = line

    def drop_line(self, line: CacheLine) -> None:
        # Prune before reset wipes the tag — otherwise a later fill of
        # this way under a new tag leaves the old mapping dangling.
        if self._map.get(line.tag) is line:
            del self._map[line.tag]
        line.reset()

    # ------------------------------------------------------------------
    # whole-cache sweeps: visit only mapped lines.  Every valid line has
    # a current map entry (``fill`` prunes the victim's old tag), so
    # filtering invalid leftovers reproduces the reference full-scan
    # exactly; only iteration cost changes.
    # ------------------------------------------------------------------
    def _resident(self) -> List[CacheLine]:
        return [line for line in self._map.values() if line.valid]

    def invalidate_clean_pm(self) -> int:
        dropped = 0
        for line in self._resident():
            if line.is_pm and not line.dirty:
                line.reset()
                dropped += 1
        if dropped:
            self._map = {t: l for t, l in self._map.items() if l.valid}
        return dropped

    def invalidate_pm(self) -> int:
        dropped = 0
        for line in self._resident():
            if line.is_pm:
                line.reset()
                dropped += 1
        if dropped:
            self._map = {t: l for t, l in self._map.items() if l.valid}
        return dropped

    def invalidate_all(self) -> int:
        dropped = 0
        for line in self._resident():
            line.reset()
            dropped += 1
        self._map.clear()
        return dropped

    def dirty_pm_lines(self) -> List[CacheLine]:
        # The reference returns set-major way order; flush order decides
        # event order, so restore it by the precomputed position index.
        lines = [
            line
            for line in self._map.values()
            if line.valid and line.dirty and line.is_pm
        ]
        if len(lines) > 1:
            pos = self._pos
            lines.sort(key=lambda line: pos[id(line)])
        return lines

    def occupancy(self) -> int:
        return len(self._resident())


class FastSM(SM):
    """SM with list-based lane loops and dict-based dispatch."""

    l1_class = FastL1Cache

    def __init__(self, sm_id: int, gpu) -> None:
        super().__init__(sm_id, gpu)
        cfg = gpu.config.gpu
        self._hit_latency = cfg.l1_hit_latency
        self._l2_latency = cfg.l2_latency
        self._issue_quantum = 1.0 / cfg.issue_width
        #: Failed-spin completion delta: max of the reference's three
        #: ``now + const`` candidates (flag-load latency, spin backoff,
        #: the 1-cycle floor in ``_complete``) — identical float result
        #: because x -> now + x is monotone over these ints.
        self._spin_delta = max(cfg.l1_hit_latency, cfg.spin_backoff_cycles, 1)
        self._stats_add = self.stats.add
        # Counter dict bound directly: the registry's add() is a pure
        # ``defaultdict[name] += amount``, so hot paths skip the call.
        self._counters = self.stats._counters
        self._slots_cache: Optional[List[int]] = None
        #: Warp objects in slot order, rebuilt with the slot cache: the
        #: RR scan and the kick min-scan index it without dict probes.
        self._warps_cache: List[Warp] = []
        #: Bound once: the issue event pushed on every kick.
        self._issue_cb = self._on_issue

    # ------------------------------------------------------------------
    # scheduling: cache the sorted slot list between occupancy changes
    # ------------------------------------------------------------------
    def add_warp(self, warp: Warp, now: float) -> None:
        self._slots_cache = None
        super().add_warp(warp, now)

    def remove_block(self, block_key: int) -> None:
        self._slots_cache = None
        super().remove_block(block_key)

    def kick(self, now: float) -> None:
        if self._issue_pending:
            return
        ready = WarpState.READY
        best = None
        for w in self.warps.values():
            if w.state is ready:
                rt = w.ready_time
                if best is None or rt < best:
                    best = rt
        if best is None:
            return
        when = best if best > now else now
        if self._next_issue_free > when:
            when = self._next_issue_free
        self._issue_pending = True
        # Inlined FastEngine.schedule (FastSM always runs on FastEngine:
        # ``device.py`` selects both from the same config switch).
        engine = self.engine
        engine._seq += 1
        if when <= engine.now:
            engine._fifo.append((engine.now, engine._seq, self._issue_cb))
        else:
            heappush(engine._queue, (when, engine._seq, self._issue_cb))

    def _pick_warp(self, now: float) -> Optional[Warp]:
        warps = self._warp_list()
        n = len(warps)
        if not n:
            return None
        rr = self._rr
        ready = WarpState.READY
        for i in range(n):
            warp = warps[(rr + i) % n]
            if warp.state is ready and warp.ready_time <= now:
                self._rr = (rr + i + 1) % n
                return warp
        return None

    def _warp_list(self) -> List[Warp]:
        if self._slots_cache is None:
            warps = self.warps
            self._slots_cache = slots = sorted(warps)
            self._warps_cache = [warps[slot] for slot in slots]
        return self._warps_cache

    def _on_issue(self, now: float) -> None:
        """Fused issue path: pick + execute + dispatch in one frame.

        Behaviourally identical to the reference
        ``_on_issue``/``_execute``/``_advance`` chain — same warp choice,
        same stats, same trace calls, same re-``kick`` — just without the
        intermediate call frames.
        """
        self._issue_pending = False
        if now < self._next_issue_free:
            self.kick(now)
            return
        if self._slots_cache is None:
            self._warp_list()
        wl = self._warps_cache
        warp = None
        n = len(wl)
        if n:
            rr = self._rr
            ready = WarpState.READY
            for i in range(n):
                w = wl[(rr + i) % n]
                if w.state is ready and w.ready_time <= now:
                    self._rr = (rr + i + 1) % n
                    warp = w
                    break
        if warp is None:
            self.kick(now)
            return
        self._next_issue_free = now + self._issue_quantum
        op = warp.retry_op
        if op is None:
            try:
                op = warp.gen.send(warp.send_value)
            except StopIteration:
                self._warp_done(warp, now)
                self.kick(now)
                return
            warp.send_value = None
        self._counters["sm.instructions"] += 1.0
        if self.tracer.enabled:
            self.tracer.warp_phase(
                self.warp_track(warp), _OP_CATEGORY.get(type(op), "sched"), now
            )
        cls = op.__class__
        if cls is Compute:
            # The most common op, fully inlined: identical to
            # ``_complete(warp, now, now + op.cycles)``.
            warp.retry_op = None
            warp.state = WarpState.READY
            at = now + op.cycles
            n1 = now + 1
            warp.ready_time = at if at > n1 else n1
            if self.tracer.enabled:
                self.tracer.warp_phase(
                    self.warp_track(warp), "sched", warp.ready_time
                )
        else:
            handler = _DISPATCH.get(cls)
            if handler is None:
                SM._process(self, warp, op, now)  # unknown-op error path
            else:
                handler(self, warp, op, now)
        # Trailing kick(), inlined: runs once per issued instruction.
        if self._issue_pending:
            return
        best = None
        for w in wl:
            if w.state is ready:
                rt = w.ready_time
                if best is None or rt < best:
                    best = rt
        if best is None:
            return
        when = best if best > now else now
        if self._next_issue_free > when:
            when = self._next_issue_free
        self._issue_pending = True
        engine = self.engine
        engine._seq += 1
        if when <= engine.now:
            engine._fifo.append((engine.now, engine._seq, self._issue_cb))
        else:
            heappush(engine._queue, (when, engine._seq, self._issue_cb))

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    def _process(self, warp: Warp, op: Op, now: float) -> None:
        handler = _DISPATCH.get(op.__class__)
        if handler is None:
            super()._process(warp, op, now)  # unknown-op error path
            return
        handler(self, warp, op, now)

    def _complete(
        self, warp: Warp, now: float, at: float, send: object = None
    ) -> None:
        # Same values as the reference (max() unrolled).
        warp.retry_op = None
        warp.state = WarpState.READY
        n1 = now + 1
        warp.ready_time = at if at > n1 else n1
        if send is not None:
            warp.send_value = send
        if self.tracer.enabled:
            self.tracer.warp_phase(self.warp_track(warp), "sched", warp.ready_time)

    def _proc_compute(self, warp: Warp, op: Compute, now: float) -> None:
        self._complete(warp, now, now + op.cycles)

    def _proc_ofence(self, warp: Warp, op: OFence, now: float) -> None:
        self._model_call(warp, op, self.model.ofence(self, warp, now), now)

    def _proc_dfence(self, warp: Warp, op: DFence, now: float) -> None:
        self._model_call(warp, op, self.model.dfence(self, warp, now), now)

    def _proc_prel(self, warp: Warp, op: PRel, now: float) -> None:
        outcome = self.model.prel(self, warp, op.addr, op.value, op.scope, now)
        self._model_call(warp, op, outcome, now)

    def _proc_threadfence(self, warp: Warp, op: ThreadFence, now: float) -> None:
        outcome = self.model.threadfence(self, warp, op.scope, now)
        self._model_call(warp, op, outcome, now)

    def _proc_barrier(self, warp: Warp, op: BlockBarrier, now: float) -> None:
        self._process_barrier(warp, now)

    # ------------------------------------------------------------------
    # acquires
    # ------------------------------------------------------------------
    def _process_pacq(self, warp: Warp, op: PAcq, now: float) -> None:
        addr = op.addr
        if addr & _ALIGN_MASK:
            self.backing.read(addr)  # raises: misaligned flag address
        value = self.backing.visible.get(addr, 0)
        if value == 0:
            # Failed spin attempt.  Every model prices this at the flag
            # load's L1 hit latency with no side effects (epoch/GPM and
            # SBRP both return early before touching model state), so
            # the model call is skipped outright and the reference
            # backoff/complete arithmetic collapses to one add.
            self._counters["sm.pacq_spins"] += 1.0
            warp.retry_op = None
            warp.state = _READY
            warp.ready_time = now + self._spin_delta
            warp.send_value = 0
            if self.tracer.enabled:
                self.tracer.warp_phase(
                    self.warp_track(warp), "sched", warp.ready_time
                )
            return
        outcome = self.model.pacq(self, warp, addr, op.scope, value, now)
        if not outcome.done:
            self._block(warp, op)
            return
        self._complete(warp, now, outcome.at, value)

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------
    def _process_load(self, warp: Warp, op: Ld, now: float) -> None:
        addrs = op.addrs.tolist()
        line_size = self.line_size
        mask_arr = op.mask
        if mask_arr is _FULL_MASKS.get(len(addrs)):
            # Ops built with the default mask carry the interned
            # full-mask array: skip the tolist + membership scans.
            mask = None
            active_addrs = addrs
        else:
            mask = mask_arr.tolist()
            if False not in mask:
                active_addrs = addrs
            elif True in mask:
                active_addrs = [a for a, m in zip(addrs, mask) if m]
            else:
                self._complete(warp, now, now + 1, np.zeros_like(op.addrs))
                return
        # dict.fromkeys preserves first-encounter order == the order the
        # reference per-lane scan accesses lines in.  Single-line loads
        # (coalesced: min and max fall in the same line) skip the
        # per-lane line-address comprehension.
        mn = min(active_addrs)
        mx = max(active_addrs)
        first_line = mn - mn % line_size
        if mx - mx % line_size == first_line:
            line_addrs = (first_line,)
        else:
            line_addrs = dict.fromkeys(
                [a - a % line_size for a in active_addrs]
            )
        latest = now
        l1 = self.l1
        line_map = l1._map
        counters = self._counters
        model = self.model
        for line_addr in line_addrs:
            # Inlined _access_line_for_read: hit probe, miss fill, or
            # block on a dirty-PM eviction (op retries from scratch).
            line = line_map.get(line_addr)
            if line is not None and line.valid:
                line.last_use = now
                counters[_READ_HIT[line_addr >= PM_BASE]] += 1.0
                done_at = now + self._hit_latency
            else:
                is_pm = line_addr >= PM_BASE
                counters[_READ_MISS[is_pm]] += 1.0
                victim = l1.victim_for(line_addr)
                if victim.valid and victim.dirty and victim.is_pm:
                    outcome = model.evict_dirty_pm(self, warp, victim, now)
                    if not outcome.done:
                        self._block(warp, op)
                        return
                done_at = self.subsystem.fetch_line(now, line_addr, is_pm)
                words = self._snapshot_line(line_addr) if is_pm else None
                l1.fill(victim, line_addr, is_pm, words, now)
            if done_at > latest:
                latest = done_at
        vget = self.backing.visible.get
        if active_addrs is addrs and not int(_or_reduce(op.addrs)) & _ALIGN_MASK:
            # Full mask, all aligned: comprehension-only value phase.
            # (Reference raises on misalignment, so that case must take
            # the general per-lane path below.)
            if len(line_addrs) == 1:
                la = first_line
                if la < PM_BASE:
                    values = list(map(vget, addrs, repeat(0)))
                    self._complete(
                        warp, now, latest, np.array(values, dtype=np.int64)
                    )
                    return
                line = line_map.get(la)
                if line is not None and line.valid:
                    words = line.words
                    if len(words) == line_size // WORD_SIZE:
                        # Fully populated snapshot: plain C-speed gets.
                        values = list(map(words.__getitem__, addrs))
                    elif not words:
                        # Fully absent (fresh PM region): all fallback.
                        values = list(map(vget, addrs, repeat(0)))
                    else:
                        values = [
                            words[a] if a in words else vget(a, 0)
                            for a in addrs
                        ]
                    self._complete(
                        warp, now, latest, np.array(values, dtype=np.int64)
                    )
                    return
            elif max(line_addrs) < PM_BASE:
                values = list(map(vget, addrs, repeat(0)))
                self._complete(warp, now, latest, np.array(values, dtype=np.int64))
                return
        values = [0] * len(addrs)
        if mask is None:
            mask = mask_arr.tolist()
        for i, active in enumerate(mask):
            if not active:
                continue
            addr = addrs[i]
            if addr >= PM_BASE:
                line_addr = addr - addr % line_size
                line = line_map.get(line_addr)
                if line is not None and line.valid:
                    words = line.words
                    if addr in words:
                        values[i] = words[addr]
                        continue
            if addr % WORD_SIZE:
                check_word_aligned(addr)
            values[i] = vget(addr, 0)
        self._complete(warp, now, latest, np.array(values, dtype=np.int64))

    def _snapshot_line(self, line_addr: int) -> Dict[int, int]:
        rng = range(line_addr, line_addr + self.line_size, WORD_SIZE)
        # map() runs the .get probes at C speed; absent words come back
        # None and are dropped, matching the reference's presence test.
        return {
            addr: value
            for addr, value in zip(rng, map(self.backing.visible.get, rng))
            if value is not None
        }

    def _read_word(self, addr: int, now: float) -> int:
        if addr >= PM_BASE:
            line = self.l1.lookup(addr - addr % self.line_size, now)
            if line is not None and addr in line.words:
                return line.words[addr]
        return self.backing.read(addr)

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------
    def _process_store(self, warp: Warp, op: St, now: float) -> None:
        if op.pm_lines is None:
            self._split_store(op)
        vol_words = op.vol_words
        if vol_words:
            visible = self.backing.visible
            for addr in vol_words:
                if addr % WORD_SIZE:
                    check_word_aligned(addr)
            visible.update(vol_words)
            self._stats_add("store.vol_words", len(vol_words))
            write_volatile = self.subsystem.write_volatile
            line_size = self.line_size
            for line_addr in op.vol_lines:
                write_volatile(now, line_addr, line_size)
            op.vol_words = {}
        latest = now
        pm_lines: Dict[int, Dict[int, int]] = op.pm_lines
        while pm_lines:
            line_addr = next(iter(pm_lines))
            words = pm_lines[line_addr]
            outcome = self.model.pm_store(self, warp, line_addr, words, now)
            if not outcome.done:
                self._block(warp, op)
                return
            del pm_lines[line_addr]
            self._stats_add("store.pm_lines")
            if outcome.at > latest:
                latest = outcome.at
        self._complete(warp, now, latest)

    def _split_store(self, op: St) -> None:
        line_size = self.line_size
        addrs = op.addrs.tolist()
        values = op.values.tolist()
        mask_arr = op.mask
        if mask_arr is _FULL_MASKS.get(len(addrs)):
            mask = ()
            full = True
        else:
            mask = mask_arr.tolist()
            full = False not in mask
        if full:
            # All lanes active: uniform-space fast paths.  Insertion
            # orders (dict / set built in lane order) match the
            # reference's per-lane loop exactly.
            mn = min(addrs)
            mx = max(addrs)
            if mn >= PM_BASE:
                first_line = mn - mn % line_size
                if mx - mx % line_size == first_line:
                    # Coalesced single-line store: one C-speed zip.
                    op.pm_lines = {first_line: dict(zip(addrs, values))}
                    op.vol_words = {}
                    op.vol_lines = set()
                    return
                pm_lines: Dict[int, Dict[int, int]] = {}
                for addr, value in zip(addrs, values):
                    line_addr = addr - addr % line_size
                    line = pm_lines.get(line_addr)
                    if line is None:
                        pm_lines[line_addr] = {addr: value}
                    else:
                        line[addr] = value
                op.pm_lines = pm_lines
                op.vol_words = {}
                op.vol_lines = set()
                return
            if mx < PM_BASE:
                op.pm_lines = {}
                op.vol_words = dict(zip(addrs, values))
                op.vol_lines = {a - a % line_size for a in addrs}
                return
        pm_lines = {}
        vol_words: Dict[int, int] = {}
        vol_lines = set()
        if full:  # mixed-space full store: every lane is active
            mask = repeat(True)
        for addr, value, active in zip(addrs, values, mask):
            if not active:
                continue
            if addr >= PM_BASE:
                line_addr = addr - addr % line_size
                line = pm_lines.get(line_addr)
                if line is None:
                    pm_lines[line_addr] = {addr: value}
                else:
                    line[addr] = value
            else:
                vol_words[addr] = value
                vol_lines.add(addr - addr % line_size)
        op.pm_lines = pm_lines
        op.vol_words = vol_words
        op.vol_lines = vol_lines

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def _process_atomic(self, warp: Warp, op: AtomicAdd, now: float) -> None:
        addrs = op.addrs.tolist()
        values = op.values.tolist()
        olds = [0] * len(addrs)
        unique = set()
        visible = self.backing.visible
        mask_arr = op.mask
        if mask_arr is _FULL_MASKS.get(len(addrs)):
            mask = (True,) * len(addrs)
        else:
            mask = mask_arr.tolist()
        for i, active in enumerate(mask):
            if not active:
                continue
            addr = addrs[i]
            if addr >= PM_BASE:
                raise SimulationError(
                    "atomics to PM are not supported; keep synchronization "
                    "variables in volatile memory"
                )
            if addr % WORD_SIZE:
                check_word_aligned(addr)
            old = visible.get(addr, 0)
            visible[addr] = old + values[i]
            olds[i] = old
            unique.add(addr)
        done = now + self._l2_latency + 2 * max(1, len(unique))
        self._stats_add("sm.atomics", len(unique))
        self._complete(warp, now, done, np.array(olds, dtype=np.int64))


_DISPATCH = {
    Compute: FastSM._proc_compute,
    Ld: FastSM._process_load,
    St: FastSM._process_store,
    AtomicAdd: FastSM._process_atomic,
    OFence: FastSM._proc_ofence,
    DFence: FastSM._proc_dfence,
    PAcq: FastSM._process_pacq,
    PRel: FastSM._proc_prel,
    ThreadFence: FastSM._proc_threadfence,
    BlockBarrier: FastSM._proc_barrier,
}

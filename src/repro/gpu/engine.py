"""Discrete-event simulation engine.

A single binary heap of ``(time, seq, callback)`` drives the whole
system.  Components schedule callbacks; the engine pops them in time
order until the queue empties or a cycle budget is exceeded.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry

EventFn = Callable[[float], None]


class Engine:
    """Time-ordered event queue with a hard cycle budget."""

    def __init__(
        self, max_cycles: float = 2e9, stats: Optional[StatsRegistry] = None
    ) -> None:
        self.now: float = 0.0
        self.max_cycles = max_cycles
        self.stats = stats
        self._queue: List[Tuple[float, int, EventFn]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, time: float, fn: EventFn) -> None:
        """Run *fn(now)* at simulated time *time* (clamped to now)."""
        if time < self.now:
            time = self.now
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn))

    def schedule_in(self, delay: float, fn: EventFn) -> None:
        self.schedule(self.now + delay, fn)

    def run(self, until: Callable[[], bool] | None = None) -> float:
        """Process events until the queue drains or *until()* is true.

        Returns the final simulated time.  Raises
        :class:`SimulationError` when the cycle budget is exhausted,
        which almost always indicates a livelocked spin loop in a kernel.
        """
        while self._queue:
            if until is not None and until():
                break
            time, _seq, fn = heapq.heappop(self._queue)
            if time > self.max_cycles:
                raise SimulationError(
                    f"cycle budget exceeded at t={time:.0f} "
                    f"(budget {self.max_cycles:.0f}); likely a livelock "
                    f"({len(self._queue)} events still queued)"
                )
            self.now = max(self.now, time)
            self.events_processed += 1
            fn(self.now)
        if self.stats is not None:
            self.stats.set("engine.events_processed", float(self.events_processed))
            self.stats.set("engine.now", self.now)
        return self.now

    def pending(self) -> int:
        return len(self._queue)

    def reset(self) -> None:
        self.now = 0.0
        self._queue.clear()
        self._seq = 0
        self.events_processed = 0

"""Discrete-event simulation engine.

A single binary heap of ``(time, seq, callback)`` drives the whole
system.  Components schedule callbacks; the engine pops them in time
order until the queue empties or a cycle budget is exceeded.

A *watchdog* guards against livelocks that the cycle budget would take
minutes of wall-clock time to reach (a spin loop advances simulated time
only ~40 cycles per event).  Progress sources — persist flushes, warp
retirements — call :meth:`Engine.note_progress`; if a bounded number of
events elapse without any, the engine raises
:class:`~repro.common.errors.LivelockError` carrying queue-depth
diagnostics instead of spinning until the pool timeout kills the
process.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import LivelockError, SimulationError
from repro.common.stats import StatsRegistry
from repro.metrics.registry import NULL_METRICS, MetricsRegistry

EventFn = Callable[[float], None]

#: Queue-depth sampling stride with metrics enabled: one histogram
#: observation every this-many events keeps the cost invisible while the
#: sample set stays a deterministic function of the event sequence.
_QUEUE_SAMPLE_MASK = 4095

#: Default watchdog bound: events processed without a single progress
#: signal before the run is declared livelocked.  Generous — real
#: workloads flush a persist or retire a warp far more often than this —
#: while a wedged spin loop reaches it in seconds of wall-clock time.
DEFAULT_WATCHDOG_EVENTS = 2_000_000


class Engine:
    """Time-ordered event queue with a hard cycle budget."""

    def __init__(
        self,
        max_cycles: float = 2e9,
        stats: Optional[StatsRegistry] = None,
        watchdog_events: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.now: float = 0.0
        self.max_cycles = max_cycles
        self.stats = stats
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Events without progress before :class:`LivelockError`;
        #: ``0`` disables the watchdog.
        self.watchdog_events = (
            DEFAULT_WATCHDOG_EVENTS if watchdog_events is None else watchdog_events
        )
        #: Optional callback returning queue depths for livelock
        #: diagnostics (the GPU layer installs one reporting blocked
        #: warps per SM).
        self.watchdog_diagnostics: Optional[Callable[[], Dict[str, float]]] = None
        self._queue: List[Tuple[float, int, EventFn]] = []
        self._seq = 0
        self.events_processed = 0
        self._idle_events = 0
        #: Stop-flag protocol (used by :class:`FastEngine`): callers that
        #: would otherwise pass a per-event ``until`` closure may instead
        #: set this mid-event to break the loop at the same point the
        #: closure would have.  The base engine ignores it.
        self._stop = False
        #: The active ``until`` closure of a bounded run, stashed so
        #: run-ahead components (:mod:`repro.gpu.batchstep`) can tell a
        #: free run from one whose loop must re-check a predicate
        #: between events.  ``None`` outside bounded runs.
        self._until: Optional[Callable[[], bool]] = None

    def schedule(self, time: float, fn: EventFn) -> None:
        """Run *fn(now)* at simulated time *time* (clamped to now)."""
        if time < self.now:
            time = self.now
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn))

    def schedule_in(self, delay: float, fn: EventFn) -> None:
        self.schedule(self.now + delay, fn)

    def note_progress(self) -> None:
        """Reset the watchdog: the system did something irreversible
        (flushed a persist, retired a warp)."""
        self._idle_events = 0

    def _livelock(self) -> LivelockError:
        depths: Dict[str, float] = {"engine.pending": float(len(self._queue))}
        if self.watchdog_diagnostics is not None:
            depths.update(self.watchdog_diagnostics())
        return LivelockError(self.now, self._idle_events, depths)

    def run(self, until: Callable[[], bool] | None = None) -> float:
        """Process events until the queue drains or *until()* is true.

        Returns the final simulated time.  Raises
        :class:`SimulationError` when the cycle budget is exhausted and
        :class:`LivelockError` when the watchdog sees no forward
        progress, both of which almost always indicate a livelocked spin
        loop in a kernel (or an injected fault that wedged the machine).
        """
        metrics = self.metrics
        metered = metrics.enabled
        while self._queue:
            if until is not None and until():
                break
            time, _seq, fn = heapq.heappop(self._queue)
            if time > self.max_cycles:
                raise SimulationError(
                    f"cycle budget exceeded at t={time:.0f} "
                    f"(budget {self.max_cycles:.0f}); likely a livelock "
                    f"({len(self._queue)} events still queued)"
                )
            self.now = max(self.now, time)
            self.events_processed += 1
            if self.watchdog_events:
                self._idle_events += 1
                if self._idle_events > self.watchdog_events:
                    raise self._livelock()
            if metered and not self.events_processed & _QUEUE_SAMPLE_MASK:
                metrics.observe("engine.queue_depth", float(len(self._queue)))
            fn(self.now)
        if self.stats is not None:
            self.stats.set("engine.events_processed", float(self.events_processed))
            self.stats.set("engine.now", self.now)
        if metered:
            metrics.gauge("engine.events_processed", float(self.events_processed))
            metrics.gauge("engine.now", self.now)
        return self.now

    def pending(self) -> int:
        return len(self._queue)

    def reset(self) -> None:
        self.now = 0.0
        self._queue.clear()
        self._seq = 0
        self.events_processed = 0
        self._idle_events = 0


class FastEngine(Engine):
    """Flattened event queue for the dominant drain/ack pattern.

    The hot schedule shape is "run this at the current cycle": ack
    chains, pump kicks and warp wakeups overwhelmingly land at ``now``.
    Those bypass the heap entirely and go to a FIFO deque; only genuine
    future events pay the ``heappush``/``heappop`` log cost.

    Pop order stays *exactly* the reference ``(time, seq)`` order:

    - ``_seq`` is globally monotone, so the FIFO — appended in schedule
      order with times clamped to the non-decreasing ``now`` — is always
      sorted by ``(time, seq)``.
    - The global minimum is therefore ``min(heap[0], fifo[0])`` compared
      lexicographically, the same tuple comparison ``heapq`` uses.

    ``tests/perfcore/test_queue_property.py`` drives both queues with
    arbitrary (time, tie) insert/pop interleavings (Hypothesis) and
    asserts identical pop sequences, including same-cycle ties.
    """

    def __init__(
        self,
        max_cycles: float = 2e9,
        stats: Optional[StatsRegistry] = None,
        watchdog_events: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(max_cycles, stats, watchdog_events, metrics)
        self._fifo: Deque[Tuple[float, int, EventFn]] = deque()

    def schedule(self, time: float, fn: EventFn) -> None:
        """Run *fn(now)* at simulated time *time* (clamped to now)."""
        self._seq += 1
        if time <= self.now:
            self._fifo.append((self.now, self._seq, fn))
        else:
            heapq.heappush(self._queue, (time, self._seq, fn))

    def run(self, until: Callable[[], bool] | None = None) -> float:
        metrics = self.metrics
        metered = metrics.enabled
        watchdog = self.watchdog_events
        queue = self._queue
        fifo = self._fifo
        events_processed = self.events_processed
        idle_events = self._idle_events
        self._stop = False
        try:
            while queue or fifo:
                # The stop flag breaks at the exact point an ``until``
                # closure returning True would: before the next pop.
                if self._stop or (until is not None and until()):
                    break
                # Lexicographic min of the two sorted fronts == heap order.
                if not queue or (fifo and fifo[0] < queue[0]):
                    time, _seq, fn = fifo.popleft()
                else:
                    time, _seq, fn = heapq.heappop(queue)
                if time > self.max_cycles:
                    raise SimulationError(
                        f"cycle budget exceeded at t={time:.0f} "
                        f"(budget {self.max_cycles:.0f}); likely a livelock "
                        f"({len(queue) + len(fifo)} events still queued)"
                    )
                if time > self.now:
                    self.now = time
                events_processed += 1
                if watchdog:
                    idle_events = self._idle_events + 1
                    self._idle_events = idle_events
                    if idle_events > watchdog:
                        self.events_processed = events_processed
                        raise self._livelock()
                if metered and not events_processed & _QUEUE_SAMPLE_MASK:
                    metrics.observe(
                        "engine.queue_depth", float(len(queue) + len(fifo))
                    )
                fn(self.now)
        finally:
            self.events_processed = events_processed
        if self.stats is not None:
            self.stats.set("engine.events_processed", float(events_processed))
            self.stats.set("engine.now", self.now)
        if metered:
            metrics.gauge("engine.events_processed", float(events_processed))
            metrics.gauge("engine.now", self.now)
        return self.now

    def _livelock(self) -> LivelockError:
        depths: Dict[str, float] = {"engine.pending": float(self.pending())}
        if self.watchdog_diagnostics is not None:
            depths.update(self.watchdog_diagnostics())
        return LivelockError(self.now, self._idle_events, depths)

    def pending(self) -> int:
        return len(self._queue) + len(self._fifo)

    def reset(self) -> None:
        super().reset()
        self._fifo.clear()

"""SBRP: Scoped Buffered Release Persistency (the paper's contribution).

The subpackage mirrors Section 6 of the paper:

* :mod:`~repro.persistency.sbrp.pbuffer` — the per-SM FIFO persist
  buffer with typed entries and per-entry Warp BM.
* :mod:`~repro.persistency.sbrp.state` — the per-SM hardware state: the
  ODM / EDM / FSM masks, the ACTR acknowledgement counter and the
  waiter bookkeeping that realizes them in the simulator.
* :mod:`~repro.persistency.sbrp.model` — the
  :class:`~repro.persistency.base.PersistencyModel` implementation
  (store coalescing, oFence/dFence, scoped pAcq/pRel, eviction rules,
  and the eager / lazy / window drain policies of Section 6.2).
"""

from repro.persistency.sbrp.model import SBRPModel
from repro.persistency.sbrp.pbuffer import EntryKind, PBEntry, PersistBuffer
from repro.persistency.sbrp.state import SBRPState

__all__ = ["EntryKind", "PBEntry", "PersistBuffer", "SBRPModel", "SBRPState"]

"""The per-SM FIFO persist buffer (PB) of Section 6.

Each entry is either a *persist* (pointing at a dirty L1 line) or an
*ordering point* (oFence / dFence / scoped pAcq / pRel), tagged with a
Warp BM recording which warp slots issued it.  Entries leave from the
head in FIFO order; a persist may additionally leave out-of-order via a
*tombstone* when a capacity eviction is allowed to bypass (no ordering
entry precedes it).
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.common.config import Scope

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.warp import Warp


class EntryKind(enum.Enum):
    PERSIST = "persist"
    OFENCE = "ofence"
    DFENCE = "dfence"
    PACQ = "pacq"
    PREL = "prel"

    @property
    def is_order(self) -> bool:
        return self is not EntryKind.PERSIST


@dataclass(slots=True)
class PBEntry:
    """One persist-buffer entry (44 bits of real hardware state)."""

    seq: int
    kind: EntryKind
    warp_mask: int
    #: Line address for persists (the hardware stores an L1 line index).
    line_addr: int = 0
    scope: Optional[Scope] = None
    #: Release payload (device-scope pRel publishes on completion).
    flag_addr: Optional[int] = None
    flag_value: int = 0
    #: Set when a capacity eviction flushed this persist out of order.
    evicted: bool = False
    #: Warps stalled until this entry is flushed and acknowledged (the
    #: EDM coalescing-conflict stall of Section 6.1).
    waiters: List["Warp"] = field(default_factory=list)
    #: Warp blocked on this entry's completion (device-scope pRel and
    #: dFence stall their issuer until the ACTR reaches zero).
    waiting_warp: Optional["Warp"] = None


class PersistBuffer:
    """FIFO of :class:`PBEntry` with live-entry accounting."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._fifo: Deque[PBEntry] = deque()
        self._by_seq: Dict[int, PBEntry] = {}
        self._seq = itertools.count(1)
        self._order_entries = 0
        self._tombstones = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    def live_count(self) -> int:
        return len(self._fifo) - self._tombstones

    def is_full(self) -> bool:
        return self.live_count() >= self.capacity

    def has_order_entries(self) -> bool:
        return self._order_entries > 0

    def __len__(self) -> int:
        return self.live_count()

    def __bool__(self) -> bool:
        return self.live_count() > 0

    # ------------------------------------------------------------------
    # append / lookup
    # ------------------------------------------------------------------
    def append(
        self,
        kind: EntryKind,
        warp_mask: int,
        line_addr: int = 0,
        scope: Optional[Scope] = None,
        flag_addr: Optional[int] = None,
        flag_value: int = 0,
    ) -> PBEntry:
        entry = PBEntry(
            seq=next(self._seq),
            kind=kind,
            warp_mask=warp_mask,
            line_addr=line_addr,
            scope=scope,
            flag_addr=flag_addr,
            flag_value=flag_value,
        )
        self._fifo.append(entry)
        self._by_seq[entry.seq] = entry
        if kind is not EntryKind.PERSIST:
            self._order_entries += 1
        occupancy = len(self._fifo) - self._tombstones
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return entry

    def get(self, seq: int) -> Optional[PBEntry]:
        """The live entry with sequence number *seq*, if any."""
        return self._by_seq.get(seq)

    def tail(self) -> Optional[PBEntry]:
        """The youngest live entry (for oFence coalescing)."""
        for entry in reversed(self._fifo):
            if not entry.evicted:
                return entry
        return None

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    def head(self) -> Optional[PBEntry]:
        """The oldest live entry, discarding leading tombstones."""
        while self._fifo and self._fifo[0].evicted:
            tomb = self._fifo.popleft()
            self._by_seq.pop(tomb.seq, None)
            self._tombstones -= 1
        return self._fifo[0] if self._fifo else None

    def pop_head(self) -> PBEntry:
        entry = self.head()
        if entry is None:
            raise IndexError("pop from empty persist buffer")
        self._fifo.popleft()
        self._by_seq.pop(entry.seq, None)
        if entry.kind.is_order:
            self._order_entries -= 1
        return entry

    def remove(self, entry: PBEntry) -> None:
        """Retire an entry in place (the drain scan removes entries from
        anywhere; physical deque cleanup happens lazily at the head)."""
        if entry.evicted:
            raise ValueError(f"entry {entry.seq} already removed")
        entry.evicted = True
        self._tombstones += 1
        self._by_seq.pop(entry.seq, None)
        if entry.kind is not EntryKind.PERSIST:
            self._order_entries -= 1

    def tombstone(self, entry: PBEntry) -> None:
        """Flush a persist out of FIFO order (allowed eviction bypass)."""
        if entry.kind is not EntryKind.PERSIST:
            raise ValueError("only persists can be tombstoned")
        self.remove(entry)

    def order_entry_before(self, seq: int) -> bool:
        """True when a live ordering entry precedes *seq* in the FIFO
        (the paper's eviction-legality check)."""
        for entry in self._fifo:
            if entry.seq >= seq:
                break
            if not entry.evicted and entry.kind.is_order:
                return True
        return False

    def entries(self) -> List[PBEntry]:
        """Live entries in FIFO order (debug / test aid)."""
        return [entry for entry in self._fifo if not entry.evicted]

"""The SBRP persistency model (Sections 5 and 6 of the paper).

Control flow summary:

* **PM store** — coalesces into the line's live PB entry unless the
  issuing warp has an ordering point younger than that entry, in which
  case the warp stalls in the EDM until the entry's flush is
  acknowledged (Section 6.1, "Persist operation").
* **oFence** — appends (or coalesces into) an ordering entry; never
  stalls: buffering is the whole point (Box 2 / Section 6.1).
* **pAcq / pRel, block scope** — ordering entries in the shared per-SM
  FIFO; the FIFO position plus the FSM enforce durability order without
  any NVM round trip — the "scopes" win of Figure 7.
* **pAcq / pRel, device scope** — pRel stalls its warp (ODM→EDM) while
  the PB force-drains up to the release; the flag publishes when the
  ACTR hits zero.  pAcq invalidates clean PM lines to avoid stale reads.
* **dFence** — like a device-scope release without a flag (Section 5).
* **Eviction** — bypass-flush when no ordering entry precedes the
  line's PB entry, else stall in the EDM until outstanding flushes
  complete (Section 6.1, "Eviction").
* **Drain** — eager / lazy / window policies (Section 6.2; Figure 10c).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping

from repro.common.bitmask import WarpMask
from repro.common.config import DrainPolicy, Scope, SystemConfig
from repro.common.errors import PersistencyError
from repro.common.stats import StatsRegistry
from repro.memory.address_space import is_pm_addr
from repro.memory.cache import CacheLine
from repro.persistency.base import Outcome, PersistencyModel
from repro.persistency.sbrp.pbuffer import EntryKind, PBEntry
from repro.persistency.sbrp.state import ActrZeroAction, SBRPState

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.sm import SM
    from repro.gpu.warp import Warp

#: Fraction of PB occupancy above which the lazy policy starts draining.
LAZY_PRESSURE = 0.75


class SBRPModel(PersistencyModel):
    """Scoped Buffered Release Persistency."""

    def __init__(self, config: SystemConfig, stats: StatsRegistry) -> None:
        super().__init__(config, stats)
        self.states: Dict[int, SBRPState] = {}
        # Drain policy knobs are fixed for the model's lifetime (configs
        # are replaced, never mutated); cache them off the attribute
        # chain for the per-entry _policy_allows test.
        self._drain_policy = config.sbrp.drain_policy
        self._window = config.sbrp.window

    def init_sm(self, sm: "SM") -> None:
        self.states[sm.sm_id] = SBRPState(
            sm.sm_id,
            pb_entries=self.config.sbrp.pb_entries(self.config.gpu),
            max_warps=self.config.gpu.max_warps_per_sm,
        )

    # ==================================================================
    # persist operation
    # ==================================================================
    def pm_store(
        self,
        sm: "SM",
        warp: "Warp",
        line_addr: int,
        words: Mapping[int, int],
        now: float,
    ) -> Outcome:
        st = self.states[sm.sm_id]
        bit = st.warp_bit(warp.slot)
        line = sm.l1.lookup(line_addr, now)
        if line is not None:
            if line.dirty and line.pb_index is not None:
                entry = st.pb.get(line.pb_index)
                if entry is not None:
                    if st.coalesce_blocked(warp.slot, entry):
                        # A later ordering point forbids coalescing; the
                        # warp waits in the EDM until the old persist is
                        # acknowledged, then retries with a fresh entry.
                        st.edm.set(warp.slot)
                        entry.waiters.append(warp)
                        st.force_until_seq = max(st.force_until_seq, entry.seq)
                        self.stats.add("sbrp.edm_stalls")
                        if sm.tracer.enabled:
                            sm.tracer.persist_delay(sm.sm_id, line_addr, "edm")
                        self._schedule_pump(sm)
                        return Outcome.blocked()
                    line.write_words(words)
                    entry.warp_mask |= bit
                    self.stats.add("sbrp.stores_coalesced")
                    self.stats.add("l1.write_hit_pm")
                    if sm.tracer.enabled:
                        sm.tracer.persist_store(sm.sm_id, line_addr, now)
                    return Outcome.complete(now + 1)
            self.stats.add("l1.write_hit_pm")
            return self._attach_persist(sm, st, warp, line, line_addr, words, now)
        victim = sm.l1.victim_for(line_addr)
        if victim.valid and victim.dirty and victim.is_pm:
            outcome = self.evict_dirty_pm(sm, warp, victim, now)
            if not outcome.done:
                return outcome
        sm.l1.fill(victim, line_addr, is_pm=True, now=now)
        self.stats.add("l1.write_miss_pm")
        return self._attach_persist(sm, st, warp, victim, line_addr, words, now)

    def _attach_persist(
        self,
        sm: "SM",
        st: SBRPState,
        warp: "Warp",
        line: CacheLine,
        line_addr: int,
        words: Mapping[int, int],
        now: float,
    ) -> Outcome:
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        entry = st.pb.append(EntryKind.PERSIST, st.warp_bit(warp.slot), line_addr)
        line.pb_index = entry.seq
        line.dirty = True
        line.is_pm = True
        line.write_words(words)
        self.stats.add("sbrp.persist_entries")
        if sm.metrics.enabled:
            sm.metrics.observe("sbrp.pb_occupancy", float(st.pb.live_count()))
        if sm.tracer.enabled:
            sm.tracer.persist_store(sm.sm_id, line_addr, now)
            self._trace_pb(sm, st, now)
        self._schedule_pump(sm)
        return Outcome.complete(now + 1)

    def _stall_for_space(self, sm: "SM", st: SBRPState, warp: "Warp") -> Outcome:
        st.space_waiters.append(warp)
        st.edm.set(warp.slot)
        self.stats.add("sbrp.pb_full_stalls")
        self._schedule_pump(sm)
        return Outcome.blocked()

    def _trace_pb(self, sm: "SM", st: SBRPState, now: float) -> None:
        """Emit PB-occupancy / ACTR counter samples (tracing only)."""
        track = f"sm{sm.sm_id}"
        sm.tracer.counter(track, "pb_occupancy", now, float(st.pb.live_count()))
        sm.tracer.counter(track, "actr", now, float(st.actr))

    # ==================================================================
    # fences
    # ==================================================================
    def ofence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        st = self.states[sm.sm_id]
        bit = st.warp_bit(warp.slot)
        tail = st.pb.tail()
        if tail is not None and tail.kind is EntryKind.OFENCE:
            # Back-to-back oFences coalesce into one entry (Section 6.1).
            tail.warp_mask |= bit
            st.note_order_point(warp.slot, tail)
            self.stats.add("sbrp.ofence_coalesced")
            return Outcome.complete(now + 1)
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        entry = st.pb.append(EntryKind.OFENCE, bit)
        st.note_order_point(warp.slot, entry)
        self.stats.add("sbrp.ofences")
        self._schedule_pump(sm)
        return Outcome.complete(now + 1)

    def dfence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        st = self.states[sm.sm_id]
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        bit = st.warp_bit(warp.slot)
        entry = st.pb.append(EntryKind.DFENCE, bit)
        entry.waiting_warp = warp
        st.note_order_point(warp.slot, entry)
        st.odm.set(warp.slot)
        st.force_until_seq = max(st.force_until_seq, entry.seq)
        self.stats.add("sbrp.dfences")
        self._schedule_pump(sm)
        return Outcome.blocked()

    def threadfence(self, sm: "SM", warp: "Warp", scope: Scope, now: float) -> Outcome:
        # Conventional fences order PM writes too (Section 5.2).  Block
        # scope stays within the SM; wider scopes require durability-like
        # draining plus invalidation, which dFence provides.
        if scope is Scope.BLOCK:
            return self.ofence(sm, warp, now)
        return self.dfence(sm, warp, now)

    # ==================================================================
    # scoped acquire / release
    # ==================================================================
    def _effective_scope(self, scope: Scope) -> Scope:
        """Figure 7's ablation: optionally demote block scope to device."""
        if scope is Scope.BLOCK and self.config.sbrp.demote_block_scope:
            return Scope.DEVICE
        return scope

    def pacq(
        self, sm: "SM", warp: "Warp", addr: int, scope: Scope, value: int, now: float
    ) -> Outcome:
        scope = self._effective_scope(scope)
        if value == 0:
            return Outcome.complete(now + self.config.gpu.l1_hit_latency)
        st = self.states[sm.sm_id]
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        bit = st.warp_bit(warp.slot)
        entry = st.pb.append(EntryKind.PACQ, bit, scope=scope)
        st.note_order_point(warp.slot, entry)
        self._schedule_pump(sm)
        if scope is Scope.BLOCK:
            self.stats.add("sbrp.pacq_block")
            return Outcome.complete(now + self.config.gpu.l1_hit_latency)
        # Device scope: drop clean PM lines so later reads see other
        # threadblocks' released data.
        sm.l1.invalidate_clean_pm()
        self.stats.add("sbrp.pacq_device")
        return Outcome.complete(now + self.config.gpu.l2_latency)

    def prel(
        self, sm: "SM", warp: "Warp", addr: int, value: int, scope: Scope, now: float
    ) -> Outcome:
        scope = self._effective_scope(scope)
        st = self.states[sm.sm_id]
        if st.pb.is_full():
            return self._stall_for_space(sm, st, warp)
        bit = st.warp_bit(warp.slot)
        entry = st.pb.append(
            EntryKind.PREL, bit, scope=scope, flag_addr=addr, flag_value=value
        )
        st.note_order_point(warp.slot, entry)
        if scope is Scope.BLOCK:
            # Buffered release: the FIFO + FSM enforce the durability
            # order, so the flag publishes (becomes visible) immediately
            # and the warp never leaves the SM — the key scope win.  A
            # PM-resident flag is itself a persist ordered after the
            # warp's earlier persists, and WPQ acceptance order is not
            # global across partitions, so its NVM write is deferred to
            # the entry's FIFO retirement (see _order_point_at_head) —
            # persisting here could make the flag durable before
            # po-earlier persists stuck behind a full WPQ.
            self.publish_flag(sm, addr, value)
            self.stats.add("sbrp.prel_block")
            self._schedule_pump(sm)
            return Outcome.complete(now + 2)
        entry.waiting_warp = warp
        st.odm.set(warp.slot)
        st.force_until_seq = max(st.force_until_seq, entry.seq)
        self.stats.add("sbrp.prel_device")
        self._schedule_pump(sm)
        return Outcome.blocked()

    def _publish(self, sm: "SM", addr: int, value: int, now: float) -> None:
        self.publish_flag(sm, addr, value)
        if is_pm_addr(addr):
            self._persist_flag(sm, addr, value, now)

    def _persist_flag(self, sm: "SM", addr: int, value: int, now: float) -> None:
        """Write a PM-resident release flag to the persistence domain.

        The flag is a persist in its own right, so it is tracked like any
        drained line: the ACTR covers it and the kernel-end drain waits
        for its acceptance — otherwise a crash right after sync() could
        miss the flag the program just released.
        """
        st = self.states[sm.sm_id]
        line_addr = addr - addr % sm.line_size
        ack = sm.subsystem.persist_line(now, sm.sm_id, line_addr, {addr: value})
        st.add_inflight(ack.ack_time)
        st.sends_pending += 1
        self._schedule_ack(sm, st, ack.accept_time, ack.ack_time, [])
        self.stats.add("sbrp.flag_persists")

    # ==================================================================
    # eviction
    # ==================================================================
    def evict_dirty_pm(
        self, sm: "SM", warp: "Warp", line: CacheLine, now: float
    ) -> Outcome:
        st = self.states[sm.sm_id]
        entry = st.pb.get(line.pb_index) if line.pb_index is not None else None
        if entry is None:
            # Defensive: a dirty PM line should always have a live entry.
            self.flush_line(sm, line, now)
            sm.l1.drop_line(line)
            return Outcome.complete(now + 1)
        # The bypass is illegal when an ordering entry precedes the
        # victim's entry in the PB, or when the victim's warp has
        # unacknowledged ordered-before persists in flight (FSM hit):
        # acceptance order across memory partitions is not global, so an
        # early flush could become durable before its predecessors.
        if st.pb.order_entry_before(entry.seq) or (
            entry.warp_mask & st.fsm.bits and st.actr > 0
        ):
            st.edm.set(warp.slot)
            st.actr_zero_waiters.append(warp)
            st.force_until_seq = max(st.force_until_seq, entry.seq)
            self.stats.add("sbrp.evict_stalls")
            if sm.tracer.enabled:
                sm.tracer.persist_delay(sm.sm_id, entry.line_addr, "actr")
            self._schedule_pump(sm)
            return Outcome.blocked()
        # No ordering entry precedes it: flush out of FIFO order.
        st.pb.tombstone(entry)
        ack = self.flush_line(sm, line, now)
        sm.l1.drop_line(line)
        st.add_inflight(ack.ack_time)
        st.sends_pending += 1
        self._schedule_ack(sm, st, ack.accept_time, ack.ack_time, entry.waiters)
        self.stats.add("sbrp.evict_bypass")
        self._wake_space_waiters(sm, st, now)
        return Outcome.complete(now + 1)

    # ==================================================================
    # the drain pump
    # ==================================================================
    def _schedule_pump(self, sm: "SM") -> None:
        st = self.states[sm.sm_id]
        if st.pump_scheduled:
            return
        st.pump_scheduled = True
        cb = st.pump_cb
        if cb is None:
            def cb(t, _sm=sm, _pump=self._pump):
                _pump(_sm, t)

            st.pump_cb = cb
        sm.engine.schedule(sm.engine.now, cb)

    def _pump(self, sm: "SM", now: float) -> None:
        """Drain pass: scan the PB in order, flushing every persist whose
        warp has no pending ordering obligation and retiring ordering
        points whose predecessors have flushed.

        A persist is *delayed* (not flushed) when its Warp BM overlaps
        the FSM (an unacknowledged flushed line is ordered before it) or
        overlaps a delayed earlier entry.  Crucially, the scan continues
        past delayed entries: unrelated warps' persists keep flowing —
        the paper's stated purpose for the FSM ("avoid false ordering
        amongst persists from different warps").
        """
        st = self.states[sm.sm_id]
        st.pump_scheduled = False
        if st.actr == 0:
            st.fsm.reset()
        traced = sm.tracer.enabled
        hold = 0  # warps with a delayed earlier entry in this pass
        pb = st.pb
        # Physically drop leading tombstones first (head() is the FIFO's
        # existing lazy-cleanup path): shorter scans, same live sequence.
        pb.head()
        fsm = st.fsm
        fsm_bits = fsm.bits  # only _order_point_at_head mutates the FSM
        persist = EntryKind.PERSIST
        remove = pb.remove
        # Inlined _policy_allows for the WINDOW policy (the default):
        # the method is pure, so short-circuiting here is value-identical.
        window = (
            self._window
            if self._drain_policy is DrainPolicy.WINDOW
            else None
        )
        # Iterate the deque directly: the pass only *tombstones* entries
        # (remove() flags them, never mutates the deque), and nothing in
        # the loop body appends — wakes merely schedule events.  Checking
        # ``evicted`` at visit time therefore matches the snapshot the
        # reference ``list(entries())`` took up front.
        for entry in pb._fifo:
            if entry.evicted:
                continue
            warp_mask = entry.warp_mask
            if entry.kind is persist:
                if warp_mask & (fsm_bits | hold):
                    hold |= warp_mask
                    if traced:
                        sm.tracer.persist_delay(sm.sm_id, entry.line_addr, "fsm")
                    continue
                if not (
                    entry.seq <= st.force_until_seq
                    or st.space_waiters
                    or (
                        st.sends_pending < window
                        if window is not None
                        else self._policy_allows(st, entry)
                    )
                ):
                    if traced:
                        policy = self.config.sbrp.drain_policy
                        sm.tracer.persist_delay(
                            sm.sm_id, entry.line_addr, policy.value
                        )
                    break  # drain-rate budget exhausted for this pass
                remove(entry)
                self._flush_entry(sm, st, entry, now)
            else:
                if warp_mask & hold:
                    # An earlier persist of this warp is still delayed;
                    # the ordering point cannot retire yet.
                    hold |= warp_mask
                    continue
                remove(entry)
                self._order_point_at_head(sm, st, entry, now)
                fsm_bits = fsm.bits
            if st.space_waiters:
                self._wake_space_waiters(sm, st, now)
        if st.actr == 0:
            st.fsm.reset()
            self._resolve_actr_zero(sm, st, now)
        if traced:
            self._trace_pb(sm, st, now)

    def _order_point_at_head(
        self, sm: "SM", st: SBRPState, entry: PBEntry, now: float
    ) -> None:
        mask = WarpMask(st.max_warps, entry.warp_mask)
        if entry.kind in (EntryKind.OFENCE, EntryKind.PACQ):
            # The issuing warp's later persists must wait for its earlier
            # (possibly in-flight) persists: oFence by intra-thread PMO,
            # pAcq because the matching release's persists may still be
            # unacknowledged ahead in the FIFO.
            st.fsm.or_with(mask)
            return
        if entry.kind is EntryKind.PREL and entry.scope is Scope.BLOCK:
            # A release does NOT order the releasing warp's own later
            # persists (only the acquirer's, via its pAcq entry), so no
            # FSM bit: this is what keeps per-round release chains from
            # serializing the whole drain.  A PM-resident flag is itself
            # a persist ordered after the warp's earlier persists: its
            # NVM write waits for those to be *accepted* (ACTR zero) —
            # FIFO retirement alone is not enough, because acceptance
            # order across WPQ partitions is not global.
            if entry.flag_addr is not None and is_pm_addr(entry.flag_addr):
                addr, value = entry.flag_addr, entry.flag_value
                st.actr_zero_actions.append(
                    ActrZeroAction(
                        warp=None,
                        effect=lambda t: self._persist_flag(sm, addr, value, t),
                    )
                )
            return
        st.fsm.or_with(mask)
        # Device-scope pRel or dFence: ODM -> EDM handoff; the warp
        # resumes (and the flag publishes) when the ACTR reaches zero.
        st.odm.clear_mask(mask)
        st.edm.or_with(mask)
        action = ActrZeroAction(warp=entry.waiting_warp, effect=None)
        if entry.kind is EntryKind.PREL and entry.flag_addr is not None:
            addr, value = entry.flag_addr, entry.flag_value
            action.effect = lambda t: self._publish(sm, addr, value, t)
        elif entry.kind is EntryKind.DFENCE:
            action.effect = lambda t: sm.l1.invalidate_clean_pm()
        st.actr_zero_actions.append(action)

    def _policy_allows(self, st: SBRPState, head: PBEntry) -> bool:
        if head.seq <= st.force_until_seq:
            return True
        if st.space_waiters:
            return True
        policy = self._drain_policy
        if policy is DrainPolicy.EAGER:
            return True
        if policy is DrainPolicy.WINDOW:
            return st.sends_pending < self._window
        return (
            st.pb.has_order_entries()
            or st.pb.live_count() > LAZY_PRESSURE * st.pb.capacity
        )

    def _flush_entry(
        self, sm: "SM", st: SBRPState, entry: PBEntry, now: float
    ) -> None:
        line = sm.l1.lookup(entry.line_addr, now)
        if line is None or not line.dirty:
            for waiter in entry.waiters:
                st.edm.clear(waiter.slot)
                sm.wake_warp(waiter, now + 1)
            return
        ack = self.flush_line(sm, line, now)
        # Standard write-back: the drained line stays resident and clean
        # (only its PB linkage is dropped), preserving the L1 retention
        # that block-scope PMO buys (Section 7.2's read-miss argument).
        line.pb_index = None
        st.add_inflight(ack.ack_time)
        st.sends_pending += 1
        self._schedule_ack(sm, st, ack.accept_time, ack.ack_time, entry.waiters)
        self.stats.add("sbrp.drained_persists")
        if sm.metrics.enabled:
            sm.metrics.inc("sbrp.drained_persists")

    def _schedule_ack(
        self,
        sm: "SM",
        st: SBRPState,
        accept_time: float,
        ack_time: float,
        waiters: List["Warp"],
    ) -> None:
        generation = st.generation

        def on_accept(t: float) -> None:
            if generation != st.generation:
                return
            st.sends_pending -= 1
            self._schedule_pump(sm)

        def on_ack(t: float) -> None:
            if generation != st.generation:
                return
            sm.engine.note_progress()
            st.retire_ack(ack_time)
            if sm.metrics.enabled:
                sm.metrics.inc("sbrp.acks")
                sm.metrics.observe("sbrp.actr", float(st.actr))
            if sm.tracer.enabled:
                sm.tracer.counter(f"sm{sm.sm_id}", "actr", t, float(st.actr))
            for waiter in waiters:
                st.edm.clear(waiter.slot)
                sm.wake_warp(waiter, t)
            if st.actr == 0:
                st.fsm.reset()
                self._resolve_actr_zero(sm, st, t)
            self._schedule_pump(sm)

        sm.engine.schedule(accept_time, on_accept)
        # A lost ack (fault injection) never arrives: the ACTR stays
        # elevated and the machine wedges diagnosably (deadlock / drain
        # stall / watchdog) instead of scheduling an event at infinity.
        if math.isfinite(ack_time):
            sm.engine.schedule(ack_time, on_ack)

    def _resolve_actr_zero(self, sm: "SM", st: SBRPState, now: float) -> None:
        actions, st.actr_zero_actions = st.actr_zero_actions, []
        for action in actions:
            if action.effect is not None:
                action.effect(now)
            if action.warp is not None:
                st.edm.clear(action.warp.slot)
                sm.complete_blocked(action.warp, now + 1)
        waiters, st.actr_zero_waiters = st.actr_zero_waiters, []
        for waiter in waiters:
            st.edm.clear(waiter.slot)
            sm.wake_warp(waiter, now)

    def _wake_space_waiters(self, sm: "SM", st: SBRPState, now: float) -> None:
        if st.pb.is_full():
            return
        waiters, st.space_waiters = st.space_waiters, []
        for waiter in waiters:
            st.edm.clear(waiter.slot)
            sm.wake_warp(waiter, now + 1)

    # ==================================================================
    # kernel-boundary drain (event-driven: SMs drain concurrently)
    # ==================================================================
    def begin_drain(self, sm: "SM", now: float) -> None:
        st = self.states[sm.sm_id]
        for entry in st.pb.entries():
            if entry.waiting_warp is not None:
                raise PersistencyError(
                    "kernel-end drain found a waiting ordering entry; a "
                    "warp was still blocked at kernel end"
                )
        st.force_until_seq = float("inf")
        self._schedule_pump(sm)

    def drained(self, sm: "SM", now: float) -> bool:
        st = self.states[sm.sm_id]
        return st.pb.live_count() == 0 and st.actr == 0

    def finish_drain(self, sm: "SM") -> None:
        """Reset per-SM state for the next kernel launch."""
        st = self.states[sm.sm_id]
        st.hard_reset_acks()
        st.odm.reset()
        st.edm.reset()
        st.force_until_seq = 0
        st.last_order_seq = [0] * st.max_warps

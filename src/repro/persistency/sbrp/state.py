"""Per-SM SBRP hardware state: ODM / EDM / FSM masks and the ACTR.

The three masks are the paper's Section 6 structures:

* **ODM** (order delay mask) — warps stalled enforcing ordering
  (device-scope pRel, dFence) while their persists flush.
* **EDM** (eviction delay mask) — warps stalled because a store or
  eviction would violate PMO.
* **FSM** (flush status mask) — warps whose flushed persists are still
  unacknowledged; a head persist sharing a bit with the FSM must wait
  for the ACTR to reach zero.

The simulator drives control flow through explicit waiter lists, but the
masks are maintained faithfully so tests (and curious users) can observe
exactly the hardware state the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.common.bitmask import WarpMask
from repro.persistency.sbrp.pbuffer import PBEntry, PersistBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.warp import Warp


@dataclass
class ActrZeroAction:
    """Work to perform the next time the ACTR hits zero."""

    #: Warp to wake (device-scope pRel / dFence issuer), if any.
    warp: Optional["Warp"] = None
    #: Extra effect (flag publication, cache invalidation).
    effect: Optional[Callable[[float], None]] = None


class SBRPState:
    """All SBRP structures of one SM."""

    def __init__(self, sm_id: int, pb_entries: int, max_warps: int) -> None:
        self.sm_id = sm_id
        self.pb = PersistBuffer(pb_entries)
        self.max_warps = max_warps
        self.odm = WarpMask(max_warps)
        self.edm = WarpMask(max_warps)
        self.fsm = WarpMask(max_warps)
        #: Pending (flushed, unacknowledged) persists.
        self.actr = 0
        #: Persists flushed but not yet *accepted* by the persistence
        #: domain.  Persist writes are posted; the window policy paces on
        #: acceptance credits so the drain streams at link bandwidth
        #: instead of one window per ack round trip.
        self.sends_pending = 0
        #: Ack-event staleness guard: bumped by the synchronous
        #: kernel-end drain so in-flight ack events become no-ops.
        self.generation = 0
        #: Ack times of in-flight persists (for the synchronous drain).
        self.inflight_acks: List[float] = []
        #: Sequence number of the youngest ordering entry per warp slot;
        #: a store may only coalesce into a persist entry younger than
        #: its warp's last ordering point.
        self.last_order_seq = [0] * max_warps
        #: Warps stalled on a full persist buffer.
        self.space_waiters: List["Warp"] = []
        #: Warps (evictions) stalled until the ACTR reaches zero.
        self.actr_zero_waiters: List["Warp"] = []
        #: Deferred completions for device-scope pRel / dFence.
        self.actr_zero_actions: List[ActrZeroAction] = []
        #: Drain everything up to this PB sequence regardless of policy.
        self.force_until_seq = 0
        self.pump_scheduled = False
        #: Reused pump callback (one closure per SM, not per schedule).
        self.pump_cb = None

    # ------------------------------------------------------------------
    # mask helpers
    # ------------------------------------------------------------------
    def warp_bit(self, slot: int) -> int:
        if not 0 <= slot < self.max_warps:
            raise IndexError(f"warp slot {slot} out of range")
        return 1 << slot

    def note_order_point(self, slot: int, entry: PBEntry) -> None:
        self.last_order_seq[slot] = entry.seq

    def coalesce_blocked(self, slot: int, entry: PBEntry) -> bool:
        """True when *slot* has an ordering point younger than *entry*,
        so its new store must not coalesce into that entry."""
        return self.last_order_seq[slot] > entry.seq

    # ------------------------------------------------------------------
    # acks
    # ------------------------------------------------------------------
    def add_inflight(self, ack_time: float) -> None:
        self.actr += 1
        self.inflight_acks.append(ack_time)

    def retire_ack(self, ack_time: float) -> None:
        self.actr -= 1
        if self.actr < 0:
            raise AssertionError("ACTR went negative")
        try:
            self.inflight_acks.remove(ack_time)
        except ValueError:
            pass

    def hard_reset_acks(self) -> None:
        """Synchronous drain: discard in-flight bookkeeping and
        invalidate any scheduled ack events."""
        self.generation += 1
        self.actr = 0
        self.sends_pending = 0
        self.inflight_acks.clear()
        self.fsm.reset()

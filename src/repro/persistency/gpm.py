"""GPM's implicit persistency model.

GPM [ASPLOS'22] runs on unmodified hardware, so its epoch barrier is the
system-scope ``__threadfence_sys``, which orders (and therefore flushes /
invalidates) writes to *both* volatile and persistent memory.  That is
the only difference from the enhanced :class:`EpochModel`: its barrier
additionally wipes volatile lines from the L1, costing later volatile
reads their locality — the ~6% mean gap of Figure 6.
"""

from __future__ import annotations

from repro.persistency.epoch import EpochModel


class GPMModel(EpochModel):
    """GPM: system-scope-fence epoch persistency (scope-agnostic,
    unbuffered, volatile-and-PM barrier)."""

    invalidate_volatile = True

    #: Extra cycles a system-scope fence spends draining the SM's
    #: pending volatile writes to the point of system-wide visibility.
    VOLATILE_DRAIN_COST = 48

    def _barrier(self, sm, now):
        # __threadfence_sys additionally orders volatile writes before
        # completing, on top of invalidating volatile L1 lines.
        done = super()._barrier(sm, now)
        return done + self.VOLATILE_DRAIN_COST

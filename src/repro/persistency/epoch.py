"""The epoch persistency family (GPM's implicit model + enhanced epoch).

Both models express every PMO through a single *epoch barrier*: the
issuing warp flushes the SM's dirty PM lines, invalidates cached PM data,
and stalls until every flushed persist is acknowledged as durable
(unbuffered, scope-agnostic — Section 4 of the paper).

``EpochModel`` is the paper's enhanced baseline: the barrier touches only
PM lines.  ``GPMModel`` (see :mod:`repro.persistency.gpm`) additionally
invalidates volatile lines, because GPM's real implementation reuses the
system-scope ``__threadfence_sys`` which cannot distinguish PM from
volatile data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.common.config import Scope
from repro.memory.address_space import is_pm_addr
from repro.memory.cache import CacheLine
from repro.persistency.base import Outcome, PersistencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.sm import SM
    from repro.gpu.warp import Warp

#: Instruction overhead of executing the fence itself.
FENCE_COST = 4


class EpochModel(PersistencyModel):
    """Enhanced epoch persistency: PM-only epoch barriers."""

    #: Subclass hook: GPM's system fence also wipes volatile lines.
    invalidate_volatile = False

    def __init__(self, config, stats) -> None:
        super().__init__(config, stats)
        #: Per-SM ack times of flushed-but-unacknowledged persists.  An
        #: epoch barrier cannot tell which warp issued which persist, so
        #: it waits for *all* of them — the model's false ordering.
        self._outstanding: dict[int, list[float]] = {}
        #: Per-SM completion time of the end-of-kernel drain.
        self._drain_done: dict[int, float] = {}

    def init_sm(self, sm: "SM") -> None:
        self._outstanding[sm.sm_id] = []

    def _track(self, sm: "SM", ack_time: float) -> None:
        self._outstanding[sm.sm_id].append(ack_time)

    def _outstanding_after(self, sm: "SM", now: float) -> float:
        """Latest pending ack; prunes already-delivered ones."""
        pending = [t for t in self._outstanding[sm.sm_id] if t > now]
        self._outstanding[sm.sm_id] = pending
        return max(pending, default=now)

    # ------------------------------------------------------------------
    # stores: plain write-back caching of PM lines between barriers
    # ------------------------------------------------------------------
    def pm_store(
        self,
        sm: "SM",
        warp: "Warp",
        line_addr: int,
        words: Mapping[int, int],
        now: float,
    ) -> Outcome:
        line = sm.l1.lookup(line_addr, now)
        if line is None:
            victim = sm.l1.victim_for(line_addr)
            if victim.valid and victim.dirty and victim.is_pm:
                self.evict_dirty_pm(sm, warp, victim, now)
            sm.l1.fill(victim, line_addr, is_pm=True, now=now)
            line = victim
            self.stats.add("l1.write_miss_pm")
        else:
            self.stats.add("l1.write_hit_pm")
        line.write_words(words)
        if sm.tracer.enabled:
            sm.tracer.persist_store(sm.sm_id, line_addr, now)
        return Outcome.complete(now + 1)

    # ------------------------------------------------------------------
    # the epoch barrier
    # ------------------------------------------------------------------
    def _barrier(self, sm: "SM", now: float) -> float:
        """Flush + invalidate + wait: returns the completion time."""
        # Even an empty barrier costs a round trip to the L2 (the point
        # of device-wide ordering) - real __threadfence timing.
        latest = now + FENCE_COST + self.config.gpu.l2_latency
        for line in sm.l1.dirty_pm_lines():
            ack = self.flush_line(sm, line, now)
            self._track(sm, ack.ack_time)
            self.stats.add("epoch.barrier_flushes")
        # The barrier is unbuffered and scope-agnostic: it waits for every
        # persist of the SM still in flight, not only its own flushes.
        latest = max(latest, self._outstanding_after(sm, now))
        dropped = sm.l1.invalidate_pm()
        if self.invalidate_volatile:
            dropped += sm.l1.invalidate_all()
        self.stats.add("epoch.lines_invalidated", dropped)
        self.stats.add("epoch.barriers")
        if sm.metrics.enabled:
            sm.metrics.inc("epoch.barriers")
            sm.metrics.observe("epoch.barrier_wait", latest - now)
        return latest

    def ofence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        return Outcome.complete(self._barrier(sm, now))

    def dfence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        return Outcome.complete(self._barrier(sm, now))

    def threadfence(self, sm: "SM", warp: "Warp", scope: Scope, now: float) -> Outcome:
        return Outcome.complete(self._barrier(sm, now))

    # ------------------------------------------------------------------
    # acquire / release lower onto barriers
    # ------------------------------------------------------------------
    def pacq(
        self, sm: "SM", warp: "Warp", addr: int, scope: Scope, value: int, now: float
    ) -> Outcome:
        if value == 0:
            # Failed spin attempt: only the flag load's cost.
            return Outcome.complete(now + self.config.gpu.l1_hit_latency)
        return Outcome.complete(self._barrier(sm, now))

    def prel(
        self, sm: "SM", warp: "Warp", addr: int, value: int, scope: Scope, now: float
    ) -> Outcome:
        done = self._barrier(sm, now)
        # The flag becomes visible only once every prior persist is
        # durable — the unbuffered release pattern.
        sm.engine.schedule(done, lambda t: self._publish(sm, addr, value, t))
        return Outcome.complete(done)

    def _publish(self, sm: "SM", addr: int, value: int, now: float) -> None:
        self.publish_flag(sm, addr, value)
        if is_pm_addr(addr):
            # A PM-resident release variable is itself a persist; the
            # barrier already waited for every prior persist's ack, so
            # writing it now keeps it ordered after them.  Tracked like
            # any flush so later barriers and the kernel-end drain wait
            # for its acceptance.
            line_addr = addr - addr % sm.line_size
            ack = sm.subsystem.persist_line(
                now, sm.sm_id, line_addr, {addr: value}
            )
            self._track(sm, ack.ack_time)
            self.stats.add("epoch.flag_persists")

    # ------------------------------------------------------------------
    # evictions: plain write-back, unordered within the epoch
    # ------------------------------------------------------------------
    def evict_dirty_pm(
        self, sm: "SM", warp: "Warp", line: CacheLine, now: float
    ) -> Outcome:
        ack = self.flush_line(sm, line, now)
        self._track(sm, ack.ack_time)
        self.stats.add("epoch.capacity_writebacks")
        return Outcome.complete(now + 1)

    # ------------------------------------------------------------------
    # kernel boundary
    # ------------------------------------------------------------------
    def begin_drain(self, sm: "SM", now: float) -> None:
        latest = now
        for line in sm.l1.dirty_pm_lines():
            ack = self.flush_line(sm, line, now)
            latest = max(latest, ack.ack_time)
        latest = max(latest, self._outstanding_after(sm, now))
        self._outstanding[sm.sm_id] = []
        sm.l1.invalidate_pm()
        self._drain_done[sm.sm_id] = latest
        # Park an event at the completion time so the engine's clock
        # reaches it even when nothing else is scheduled.
        sm.engine.schedule(latest, lambda t: None)

    def drained(self, sm: "SM", now: float) -> bool:
        return now >= self._drain_done.get(sm.sm_id, now)

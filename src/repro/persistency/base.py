"""Persistency-model interface and shared machinery.

The SM calls these hooks on every operation that touches persistent
state.  A hook returns an :class:`Outcome`:

* ``Outcome.complete(at)`` — the operation finishes at time ``at``; the
  warp becomes ready then.
* ``Outcome.blocked()`` — the model stalls the warp and promises to call
  ``sm.wake_warp(slot, retry=...)`` later.

Shared helpers implement the one mechanism every model needs: flushing a
dirty L1 line into the persistence domain (write words to the visible
image + send the line to the memory subsystem).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping

from repro.common.config import Scope, SystemConfig
from repro.common.stats import StatsRegistry
from repro.memory.cache import CacheLine
from repro.memory.devices import WriteAck

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.sm import SM
    from repro.gpu.warp import Warp


@dataclass(frozen=True, slots=True)
class Outcome:
    """Result of a persistency-model hook."""

    done: bool
    at: float = 0.0

    @classmethod
    def complete(cls, at: float) -> "Outcome":
        return cls(True, at)

    @classmethod
    def blocked(cls) -> "Outcome":
        return cls(False)


class PersistencyModel(abc.ABC):
    """Base class of GPM / Epoch / SBRP policy objects."""

    def __init__(self, config: SystemConfig, stats: StatsRegistry) -> None:
        self.config = config
        self.stats = stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def init_sm(self, sm: "SM") -> None:
        """Create per-SM state (masks, buffers).  Default: none."""

    # ------------------------------------------------------------------
    # hooks (all abstract)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pm_store(
        self,
        sm: "SM",
        warp: "Warp",
        line_addr: int,
        words: Mapping[int, int],
        now: float,
    ) -> Outcome:
        """Handle one PM-line's worth of a warp store."""

    @abc.abstractmethod
    def ofence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        """Intra-thread ordering fence (Box 2)."""

    @abc.abstractmethod
    def dfence(self, sm: "SM", warp: "Warp", now: float) -> Outcome:
        """Durability fence: stall until prior persists are durable."""

    @abc.abstractmethod
    def pacq(
        self, sm: "SM", warp: "Warp", addr: int, scope: Scope, value: int, now: float
    ) -> Outcome:
        """Persist acquire.  *value* is the flag value already loaded;
        zero means "not yet released" and carries no obligations."""

    @abc.abstractmethod
    def prel(
        self, sm: "SM", warp: "Warp", addr: int, value: int, scope: Scope, now: float
    ) -> Outcome:
        """Persist release of *value* to *addr*.  The model decides when
        the flag becomes visible (it must publish via
        :meth:`publish_flag` once its ordering obligations are met)."""

    @abc.abstractmethod
    def threadfence(self, sm: "SM", warp: "Warp", scope: Scope, now: float) -> Outcome:
        """Conventional scoped fence (orders volatile and PM writes)."""

    @abc.abstractmethod
    def evict_dirty_pm(
        self, sm: "SM", warp: "Warp", line: CacheLine, now: float
    ) -> Outcome:
        """A read/write wants to replace a dirty PM line (capacity)."""

    @abc.abstractmethod
    def begin_drain(self, sm: "SM", now: float) -> None:
        """Kernel end: start flushing every buffered persist.  The drain
        proceeds event-driven so all SMs drain concurrently."""

    @abc.abstractmethod
    def drained(self, sm: "SM", now: float) -> bool:
        """True once *sm* has no buffered or unacknowledged persists."""

    def finish_drain(self, sm: "SM") -> None:
        """Post-drain cleanup before the next launch.  Default: none."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def flush_line(self, sm: "SM", line: CacheLine, now: float) -> WriteAck:
        """Write a dirty PM line through to the persistence domain.

        Updates the globally visible image (persists write through the
        L2) and returns the WPQ acceptance/ack times.

        Every flush counts as forward progress for the engine watchdog.
        A fault injector may *drop* the flush: the line stays globally
        visible and the SM receives a prompt (lying) ack, but nothing is
        logged — the persist never becomes durable.
        """
        sm.engine.note_progress()
        # Handed off, not copied: both exits below reassign the line a
        # fresh dirty_words dict, so this reference is never aliased.
        words: Dict[int, int] = line.dirty_words
        # Bulk write-through: dirty words were int()-normalized and
        # alignment-checked when stored, so a dict update is equivalent
        # to per-word backing.write calls.
        sm.backing.visible.update(words)
        faults = sm.subsystem.faults
        if (
            faults is not None
            and faults.active
            and faults.drop_flush(sm.sm_id, line.tag)
        ):
            line.dirty = False
            line.dirty_words = {}
            self.stats.add(sm.stat_pm_flushes)
            self.stats.add("faults.dropped_flushes")
            return WriteAck(
                accept_time=now + 1,
                ack_time=now + self.config.gpu.l2_latency,
            )
        ack = sm.subsystem.persist_line(now, sm.sm_id, line.tag, words)
        if sm.metrics.enabled:
            sm.metrics.inc("persist.flushes")
        if sm.tracer.enabled:
            # Lifecycle: drain issued now; durable at acceptance; the
            # SM learns (ACTR decrement) at the ack.
            sm.tracer.persist_flush(
                sm.sm_id, line.tag, now, ack.accept_time, ack.ack_time
            )
        line.dirty = False
        line.dirty_words = {}
        self.stats._counters[sm.stat_pm_flushes] += 1.0
        return ack

    def publish_flag(self, sm: "SM", addr: int, value: int) -> None:
        """Make a release flag value globally visible."""
        sm.backing.write(addr, value)

"""Persistency models: GPM's epoch, the enhanced epoch, and SBRP.

A :class:`~repro.persistency.base.PersistencyModel` is a pluggable
policy object the SM consults on every PM store, fence, scoped
acquire/release, and dirty-PM eviction.  The three models of the paper's
evaluation are provided:

* :class:`~repro.persistency.gpm.GPMModel` — GPM's implicit model: an
  unbuffered, scope-agnostic epoch barrier (system-scope fence) that
  flushes and invalidates *both* volatile and PM lines.
* :class:`~repro.persistency.epoch.EpochModel` — the enhanced epoch
  model whose barrier only affects writes to PM.
* :class:`~repro.persistency.sbrp.SBRPModel` — the paper's contribution:
  scoped, buffered release persistency with the Section 6 hardware.
"""

from repro.persistency.base import Outcome, PersistencyModel
from repro.persistency.epoch import EpochModel
from repro.persistency.gpm import GPMModel
from repro.persistency.sbrp import SBRPModel


def build_model(config, stats):
    """Instantiate the persistency model named by *config.model*."""
    from repro.common.config import ModelName

    classes = {
        ModelName.GPM: GPMModel,
        ModelName.EPOCH: EpochModel,
        ModelName.SBRP: SBRPModel,
    }
    return classes[config.model](config, stats)


__all__ = [
    "EpochModel",
    "GPMModel",
    "Outcome",
    "PersistencyModel",
    "SBRPModel",
    "build_model",
]

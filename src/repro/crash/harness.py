"""The crash-recovery harness.

Workflow::

    harness = CrashHarness(lambda: build_app("gpkvs"), config)
    report = harness.crash_at_fraction(0.5)   # power fails mid-run
    assert report.consistent

A *crash* is a point-in-time snapshot of the durable PM image (the
persist log records when each persist was accepted by an ADR memory
controller).  Recovery always happens on a **fresh machine**: new GPU,
cold caches, empty persist buffers — only the durable PM image and the
driver's namespace table survive, exactly like a real power cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from typing import Any

from repro.apps.base import App, RunOutcome
from repro.common.config import SystemConfig
from repro.common.errors import RecoveryError
from repro.system import CrashImage, GPUSystem

AppFactory = Callable[[], App]


@dataclass
class CrashReport:
    """Outcome of one injected crash."""

    crash_time: float
    run_cycles: float
    recovery_cycles: float
    consistent: bool
    completed: bool
    error: Optional[str] = None


class CrashHarness:
    """Runs an app once, then injects crashes at chosen instants."""

    def __init__(
        self,
        factory: AppFactory,
        config: SystemConfig,
        faults: Optional[Any] = None,
    ) -> None:
        self.factory = factory
        self.config = config
        #: Optional :class:`repro.faults.FaultInjector` applied to the
        #: *baseline* run (and its crash images); recovery always
        #: happens on a clean machine.
        self.faults = faults
        self._baseline: Optional[GPUSystem] = None
        self._baseline_app: Optional[App] = None
        self._run: Optional[RunOutcome] = None

    # ------------------------------------------------------------------
    # baseline crash-free execution
    # ------------------------------------------------------------------
    def baseline(self) -> GPUSystem:
        """Run the workload once (lazily); crashes replay against it."""
        if self._baseline is None:
            system = GPUSystem(self.config, faults=self.faults)
            app = self.factory()
            app.setup(system)
            self._run = app.run(system)
            system.sync()
            self._baseline = system
            self._baseline_app = app
        return self._baseline

    @property
    def run_cycles(self) -> float:
        self.baseline()
        assert self._run is not None
        return self._run.cycles

    def end_time(self) -> float:
        return self.baseline().now

    # ------------------------------------------------------------------
    # crash injection
    # ------------------------------------------------------------------
    def crash_at(self, time: float, complete: bool = True) -> CrashReport:
        """Power failure at absolute simulated time *time*."""
        baseline = self.baseline()
        image = baseline.crash(at=min(time, baseline.now))
        return self._recover_from(image, complete)

    def crash_at_fraction(self, fraction: float, complete: bool = True) -> CrashReport:
        """Power failure *fraction* of the way through the execution.

        The endpoints are handled explicitly rather than through float
        boundary behavior: ``0.0`` crashes before the first persist is
        durable (the image is exactly the host-initialized state) and
        ``1.0`` crashes after the final sync (everything is durable).
        """
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be within [0, 1]")
        if fraction == 0:
            return self.crash_at(0.0, complete)
        if fraction == 1:
            return self.crash_at(self.end_time(), complete)
        return self.crash_at(self.end_time() * fraction, complete)

    def sweep(self, points: int = 8, complete: bool = True) -> List[CrashReport]:
        """Inject crashes at evenly spaced instants of the execution."""
        return [
            self.crash_at_fraction(i / (points + 1), complete)
            for i in range(1, points + 1)
        ]

    def persist_boundaries(self, limit: Optional[int] = None) -> List[float]:
        """Every instant at which the durable image changes: ``0.0``
        (pre-first-persist) plus each distinct persist-acceptance time.

        Crashing at each of these covers *every distinct durable image*
        of the execution — the exhaustive version of :meth:`sweep`.
        With *limit*, the list is subsampled deterministically (always
        keeping the first and last boundary).
        """
        baseline = self.baseline()
        times = [0.0] + baseline.gpu.subsystem.persist_log.boundary_times(
            end=baseline.now
        )
        if limit is not None and limit > 0 and len(times) > limit:
            if limit == 1:
                times = [times[-1]]
            else:
                step = (len(times) - 1) / (limit - 1)
                picked = {round(i * step) for i in range(limit)}
                times = [times[i] for i in sorted(picked)]
        return times

    def crash_at_every_persist(
        self, complete: bool = False, limit: Optional[int] = None
    ) -> List[CrashReport]:
        """Inject one crash per persist boundary (see
        :meth:`persist_boundaries`); the fault campaign reuses this as
        its clean power-cut sweep."""
        return [
            self.crash_at(t, complete) for t in self.persist_boundaries(limit)
        ]

    # ------------------------------------------------------------------
    # recovery on a fresh machine
    # ------------------------------------------------------------------
    def _recover_from(self, image: CrashImage, complete: bool) -> CrashReport:
        rebooted = GPUSystem(self.config, pm_image=image)
        app = self.factory()
        app.reopen(rebooted)
        recovery = app.recover(rebooted)
        rebooted.sync()
        report = CrashReport(
            crash_time=image.time,
            run_cycles=self.run_cycles,
            recovery_cycles=recovery.cycles,
            consistent=True,
            completed=False,
        )
        try:
            app.check(rebooted, complete=False)
        except RecoveryError as exc:
            report.consistent = False
            report.error = str(exc)
            return report
        if complete:
            # Forward progress: re-running the workload must finish the
            # job from the recovered state.
            app.run(rebooted)
            rebooted.sync()
            try:
                app.check(rebooted, complete=True)
                report.completed = True
            except RecoveryError as exc:
                report.error = str(exc)
        return report

    def recovery_cycles_at_worst_case(self) -> float:
        """Recovery runtime for the paper's Figure 11 scenario: crash at
        the instant that maximizes recovery work (just before the last
        commit becomes durable)."""
        report = self.crash_at_fraction(0.999, complete=False)
        if not report.consistent:
            raise RecoveryError(f"worst-case recovery failed: {report.error}")
        return report.recovery_cycles

"""Crash injection and recovery orchestration.

:class:`~repro.crash.harness.CrashHarness` runs an application's
crash-free execution once, then replays power failures at arbitrary
instants: every persist's durability time is logged, so a crash at time
*t* yields the exact durable PM image ADR semantics guarantee.  Each
crash boots a fresh machine from the image, runs the app's recovery
kernel, verifies the app's consistency invariants, and (optionally)
re-runs the workload to completion to prove forward progress.
"""

from repro.crash.harness import CrashHarness, CrashReport

__all__ = ["CrashHarness", "CrashReport"]

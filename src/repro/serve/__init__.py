"""Serving subsystem: traffic-driven gpKVS with durable transactions.

The paper evaluates gpKVS as one fixed kernel batch; the serving
subsystem turns it into the ROADMAP's production shape — a request
*stream* served by the simulator:

* :mod:`~repro.serve.workload` — deterministic seeded YCSB-style
  workload generator (read/update/insert/RMW mixes, zipfian or uniform
  key popularity, open-loop Poisson/uniform arrivals) batched into
  kernel launches with per-batch write deduplication;
* :mod:`~repro.serve.txn` — the durable-transaction path selector:
  L1-persist-buffer undo logging vs. direct-NVM redo write-through,
  chosen adaptively per transaction size (with forced-path baselines
  for ablation);
* :mod:`~repro.serve.app` — :class:`~repro.serve.app.ServeKVS`, the
  transactional KVS app that executes one planned stream, batch by
  batch, under group commit;
* :mod:`~repro.serve.runner` — one SLO measurement: throughput,
  p50/p95/p99 request latency, recovery time after crash-under-load;
* :mod:`~repro.serve.bench` — ``python -m repro.serve.bench``, the
  model x policy SLO grid through the crash-isolated Executor.

Nothing here imports :mod:`repro.bench` at module scope; the serve app
registers lazily in :mod:`repro.apps` to keep imports cycle-free.
"""

from repro.serve.txn import (
    PATH_DIRECT,
    PATH_PB,
    POLICIES,
    POLICY_ADAPTIVE,
    POLICY_FORCED_DIRECT,
    POLICY_FORCED_PB,
    select_path,
)
from repro.serve.workload import (
    MIXES,
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_UPDATE,
    Batch,
    Plan,
    Request,
    WorkloadSpec,
    plan_workload,
)

__all__ = [
    "Batch",
    "MIXES",
    "OP_INSERT",
    "OP_READ",
    "OP_RMW",
    "OP_UPDATE",
    "PATH_DIRECT",
    "PATH_PB",
    "POLICIES",
    "POLICY_ADAPTIVE",
    "POLICY_FORCED_DIRECT",
    "POLICY_FORCED_PB",
    "Plan",
    "Request",
    "WorkloadSpec",
    "plan_workload",
    "select_path",
]

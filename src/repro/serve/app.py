"""ServeKVS: the transactional key-value store behind the serving layer.

One :class:`ServeKVS` instance executes a planned request stream
(:mod:`repro.serve.workload`) against a PM-resident direct-mapped table,
one kernel launch per batch, one request per thread.  Every batch is a
group commit: the launch drains all buffered persists, so at any crash
instant only the in-flight batch's transactions can be partial.

Row layout (all PM): ``tbl_key[s]`` holds ``key + 1`` (0 = absent),
``tbl_val[s]`` the encoded value, ``pay[s * payload_large + i]`` the
payload words.  Key *k* maps to slot *k* (the workload generator keeps
keys below capacity).

Write transactions persist through one of two paths selected by
:func:`repro.serve.txn.select_path`:

* **PB / undo** — write a *logical* undo record of the pre-image
  (known host-side from the version history, so no row read), sealed
  with a checksum, ``ofence``, update in place, ``ofence``, clear the
  seal — everything rides the persist buffer until the group commit
  (the gpKVS Figure 4 protocol with logical logging and
  variable-length payloads);
* **direct / redo** — write a redo record of the *new* row flagged
  with a checksum, ``ofence``, ``dfence`` (the NVM write-through: the
  warp stalls until the record is durable, pulling its drain forward
  into the batch's execution), apply in place, ``ofence``, clear the
  flag (FIFO drain order makes the clear durable only after the row).

Both logs are indexed by the request's slot *within its batch*, so one
batch's records never collide; the ``drain=True`` launch boundary makes
the previous batch's cleared log durable before slots are reused.

Recovery scans both logs on the rebooted machine: a validly sealed undo
record rolls its row back, a validly flagged redo record rolls its row
forward, and both logs are discarded only after a ``dfence``.

``seeded_bug="early_commit"`` clears the undo seal *before* the
in-place update — premature log truncation, the teeth check for the
fault campaign's recovery oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.common import SEAL
from repro.serve.txn import (
    DEFAULT_THRESHOLD_WORDS,
    PATH_DIRECT,
    POLICIES,
    POLICY_ADAPTIVE,
    select_path,
)
from repro.serve.workload import Batch, Plan, WorkloadSpec, plan_workload
from repro.system import GPUSystem

#: Value encoding: version *j* of key *k*.  The stride pair (100003, 31)
#: is coprime, so ``(value - base) / 31`` uniquely recovers the version
#: during checking; payload word *i* of that version is ``value + 1 + i``.
VALUE_BASE = 100003
VALUE_STEP = 31


def encode_value(key: "np.ndarray | int", version: "np.ndarray | int"):
    return (key + 1) * VALUE_BASE + VALUE_STEP * version


@dataclass(frozen=True)
class ServeKVSParams(AppParams):
    """Workload spec + transaction-layer knobs, flat for ScenarioJob."""

    seed: int = 7
    n_requests: int = 256
    mix: str = "rmw_heavy"
    popularity: str = "zipfian"
    theta: float = 0.99
    n_keys: int = 256
    capacity: int = 640
    arrival: str = "poisson"
    rate_per_kcycle: float = 4.0
    payload_small: int = 2
    payload_large: int = 8
    large_every: int = 4
    batch_requests: int = 128
    #: Persist-path policy: adaptive | forced_pb | forced_direct.
    policy: str = POLICY_ADAPTIVE
    #: Adaptive cut-over in row words (key + value + payload).
    threshold_words: int = DEFAULT_THRESHOLD_WORDS
    #: ALU cost of request parsing/hashing, cycles.
    compute_cycles: int = 12
    #: "" = correct protocol; "early_commit" truncates the undo log
    #: before the in-place update (fault-campaign teeth).
    seeded_bug: str = ""

    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(
            seed=self.seed,
            n_requests=self.n_requests,
            mix=self.mix,
            popularity=self.popularity,
            theta=self.theta,
            n_keys=self.n_keys,
            capacity=self.capacity,
            arrival=self.arrival,
            rate_per_kcycle=self.rate_per_kcycle,
            payload_small=self.payload_small,
            payload_large=self.payload_large,
            large_every=self.large_every,
            batch_requests=self.batch_requests,
        )


class ServeKVS(App):
    """Traffic-driven persistent KVS with a dual-path transaction layer."""

    name = "serve_kvs"
    scoped_pmo = "intra-thread"
    recovery_style = "logging"

    def __init__(self, **overrides: Any) -> None:
        self.params = ServeKVSParams(**overrides)
        if self.params.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.params.policy!r}; have {POLICIES}"
            )
        if self.params.seeded_bug not in ("", "early_commit"):
            raise ValueError(
                f"unknown seeded_bug {self.params.seeded_bug!r}; "
                "have '', 'early_commit'"
            )
        #: The plan is a pure function of the params, so every instance
        #: (including the fresh ones the crash harness builds for
        #: recovery) sees the identical stream.
        self.plan: Plan = plan_workload(self.params.workload())
        #: Per batch: the launch list (suffix, lane arrays).
        self._stages = [self._batch_stages(b) for b in self.plan.batches]

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def _regions(self) -> Dict[str, int]:
        p = self.params
        cap, pay, b = p.capacity, p.payload_large, p.batch_requests
        return {
            "serve.tbl_key": 4 * cap,
            "serve.tbl_val": 4 * cap,
            "serve.pay": 4 * cap * pay,
            "serve.ulog_slot": 4 * b,
            "serve.ulog_key": 4 * b,
            "serve.ulog_val": 4 * b,
            "serve.ulog_pay": 4 * b * pay,
            "serve.ulog_seal": 4 * b,
            "serve.rlog_slot": 4 * b,
            "serve.rlog_key": 4 * b,
            "serve.rlog_val": 4 * b,
            "serve.rlog_pay": 4 * b * pay,
            "serve.rlog_flag": 4 * b,
        }

    def setup(self, system: GPUSystem) -> None:
        p = self.params
        for region, size in self._regions().items():
            attr = region.split(".", 1)[1]
            setattr(self, attr, system.pm_create(region, size))
        slots = np.arange(p.n_keys)
        keys = np.zeros(p.capacity, dtype=np.int64)
        vals = np.zeros(p.capacity, dtype=np.int64)
        keys[: p.n_keys] = slots + 1
        vals[: p.n_keys] = encode_value(slots, 0)
        system.host_write_words(self.tbl_key, keys)
        system.host_write_words(self.tbl_val, vals)
        payload = np.zeros(p.capacity * p.payload_large, dtype=np.int64)
        for s in range(p.n_keys):
            plen = p.workload().payload_words(s)
            base = s * p.payload_large
            payload[base : base + plen] = vals[s] + 1 + np.arange(plen)
        system.host_write_words(self.pay, payload)

    def reopen(self, system: GPUSystem) -> None:
        for region in self._regions():
            attr = region.split(".", 1)[1]
            setattr(self, attr, system.pm_open(region))

    # ------------------------------------------------------------------
    # per-batch host-side request arrays
    # ------------------------------------------------------------------
    def _batch_stages(self, batch: Batch, policy: "str | None" = None):
        """A batch's launches: one kernel covering all its lanes.

        The batch's size sort (:func:`~repro.serve.workload
        ._order_in_batch`) packs reads, buffered writes and
        write-through writes into contiguous lane ranges, so once a
        batch spans several threadblocks each SM sees a homogeneous
        persist path — a write-through warp's dfence drains its own
        SM's records, not another path's buffered bulk (the persist
        buffer and its FIFO are per-SM).

        *policy* overrides the configured persist-path policy for this
        batch only (degraded-mode path shedding).
        """
        return [("", self._lane_arrays(list(batch.requests), batch, policy))]

    def _lane_arrays(
        self, requests, batch: Batch, policy: "str | None" = None
    ) -> Dict[str, np.ndarray]:
        p = self.params
        path_policy = policy if policy is not None else p.policy
        n = len(requests)
        arr = {
            "n": n,
            "key": np.zeros(n, dtype=np.int64),
            "ver": np.zeros(n, dtype=np.int64),
            "plen": np.zeros(n, dtype=np.int64),
            "read": np.zeros(n, dtype=bool),
            "rmw": np.zeros(n, dtype=bool),
            "write": np.zeros(n, dtype=bool),
            "direct": np.zeros(n, dtype=bool),
        }
        arr["old_key"] = np.zeros(n, dtype=np.int64)
        arr["old_val"] = np.zeros(n, dtype=np.int64)
        # Write combining: the batch's applying writer commits on top of
        # the key's version *before the batch*, not its own minus one —
        # intermediate versions are subsumed by the group commit.
        first_ver: Dict[int, int] = {}
        for req in batch.requests:
            if req.is_write:
                first_ver[req.key] = min(
                    first_ver.get(req.key, req.version), req.version
                )
        for i, req in enumerate(requests):
            arr["key"][i] = req.key
            arr["ver"][i] = req.version
            arr["plen"][i] = req.payload
            arr["read"][i] = req.op == "read"
            arr["rmw"][i] = req.op == "rmw"
            arr["write"][i] = req.is_applying_write
            if req.is_applying_write:
                arr["direct"][i] = (
                    select_path(path_policy, req.payload, p.threshold_words)
                    == PATH_DIRECT
                )
                # Version-aware logical undo: the layer tracks committed
                # versions, so the pre-image is known without a row
                # read.  A never-written row's pre-image is absent.
                pre_ver = first_ver[req.key] - 1
                if not (req.key >= p.n_keys and pre_ver == 0):
                    arr["old_key"][i] = req.key + 1
                    arr["old_val"][i] = encode_value(req.key, pre_ver)
        return arr

    def path_counts(self) -> Dict[str, int]:
        """How many write transactions each persist path serves."""
        arrays = [arr for stages in self._stages for _, arr in stages]
        direct = sum(int(a["direct"].sum()) for a in arrays)
        writes = sum(int(a["write"].sum()) for a in arrays)
        return {"pb": writes - direct, "direct": direct}

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _serve_kernel(self, w, arr: Dict[str, np.ndarray]):
        p = self.params
        pw = p.payload_large
        n = arr["n"]
        idx = np.minimum(w.tid, n - 1)
        active = w.tid < n
        key = arr["key"][idx]
        slot = key  # direct-mapped
        newv = encode_value(key, arr["ver"][idx])
        plen = arr["plen"][idx]
        read = active & arr["read"][idx]
        write = active & arr["write"][idx]
        rmw = active & arr["rmw"][idx]
        direct = write & arr["direct"][idx]
        pb = write & ~arr["direct"][idx]
        yield w.compute(p.compute_cycles)

        # Reads (and the read half of RMW): key, value, payload words.
        probe = read | rmw
        if bool(probe.any()):
            yield w.ld(self.tbl_key.base + 4 * slot, mask=probe)
            yield w.ld(self.tbl_val.base + 4 * slot, mask=probe)
            for i in range(pw):
                m = probe & (i < plen)
                if bool(m.any()):
                    yield w.ld(self.pay.base + 4 * (slot * pw + i), mask=m)

        pb_any = bool(pb.any())
        direct_any = bool(direct.any())
        write_any = bool(write.any())

        # PB path: sealed logical-undo record of the pre-image (known
        # from the version history — no row read on the log path).
        if pb_any:
            old_k = arr["old_key"][idx]
            old_v = arr["old_val"][idx]
            acc = slot ^ old_k ^ old_v ^ SEAL
            yield w.st(self.ulog_slot.base + 4 * w.tid, slot, mask=pb)
            yield w.st(self.ulog_key.base + 4 * w.tid, old_k, mask=pb)
            yield w.st(self.ulog_val.base + 4 * w.tid, old_v, mask=pb)
            for i in range(pw):
                m = pb & (i < plen)
                if bool(m.any()):
                    # An insert's pre-image payload is zero.
                    old_p = np.where(old_k != 0, old_v + 1 + i, 0)
                    yield w.st(
                        self.ulog_pay.base + 4 * (w.tid * pw + i),
                        old_p,
                        mask=m,
                    )
                    acc = acc + np.where(m, (old_p + 1) * (i + 2), 0)
            # Payload words enter the checksum position-weighted, not
            # XORed: the record lines flush concurrently (no ordering
            # inside the record), and a run of consecutive payload
            # values XORs to zero — the same as no payload at all — so
            # a crash that persists the seal before any payload word
            # would validate a hollow record.  A weighted sum shifts
            # under every missing or torn subset.  ``2*acc + 1`` keeps
            # a live seal distinct from the cleared state.
            yield w.st(self.ulog_seal.base + 4 * w.tid, 2 * acc + 1, mask=pb)

        # Direct path: flagged redo record of the new row (no old reads).
        if direct_any:
            facc = slot ^ (key + 1) ^ newv ^ SEAL
            yield w.st(self.rlog_slot.base + 4 * w.tid, slot, mask=direct)
            yield w.st(self.rlog_key.base + 4 * w.tid, key + 1, mask=direct)
            yield w.st(self.rlog_val.base + 4 * w.tid, newv, mask=direct)
            for i in range(pw):
                m = direct & (i < plen)
                if bool(m.any()):
                    yield w.st(
                        self.rlog_pay.base + 4 * (w.tid * pw + i),
                        newv + 1 + i,
                        mask=m,
                    )
                    facc = facc + np.where(m, (newv + 2 + i) * (i + 2), 0)
            yield w.st(
                self.rlog_flag.base + 4 * w.tid, 2 * facc + 1, mask=direct
            )

        # Records before row updates.
        if write_any:
            yield w.ofence()
        if p.seeded_bug == "early_commit" and pb_any:
            # BUG: the undo log is truncated before the update it
            # covers — a crash inside the update window finds no valid
            # record and the torn row survives recovery.
            yield w.st(self.ulog_seal.base + 4 * w.tid, 0, mask=pb)
        if direct_any:
            # The write-through commit: the redo record is durable from
            # here, and the drained persist buffer sheds its pressure.
            yield w.dfence()

        # Apply in place (both paths share the row stores).
        if write_any:
            yield w.st(self.tbl_key.base + 4 * slot, key + 1, mask=write)
            yield w.st(self.tbl_val.base + 4 * slot, newv, mask=write)
            for i in range(pw):
                m = write & (i < plen)
                if bool(m.any()):
                    yield w.st(
                        self.pay.base + 4 * (slot * pw + i),
                        newv + 1 + i,
                        mask=m,
                    )
            yield w.ofence()
            # Commit: discard the records (same-line-across-fence).
            if pb_any and p.seeded_bug != "early_commit":
                yield w.st(self.ulog_seal.base + 4 * w.tid, 0, mask=pb)
            if direct_any:
                # The persist buffer drains in FIFO order, so this
                # clear can only become durable after the in-place row
                # it covers — no second fence needed; rolling a cleared
                # record forward is idempotent anyway.
                yield w.st(self.rlog_flag.base + 4 * w.tid, 0, mask=direct)

    def _recover_kernel(self, w, arr_unused=None):
        p = self.params
        pw = p.payload_large
        b = p.batch_requests
        active = w.tid < b
        u_slot = yield w.ld(self.ulog_slot.base + 4 * w.tid, mask=active)
        u_key = yield w.ld(self.ulog_key.base + 4 * w.tid, mask=active)
        u_val = yield w.ld(self.ulog_val.base + 4 * w.tid, mask=active)
        u_seal = yield w.ld(self.ulog_seal.base + 4 * w.tid, mask=active)
        u_slot = np.clip(u_slot, 0, p.capacity - 1)
        u_plen = np.where(
            u_slot % p.large_every == 0, p.payload_large, p.payload_small
        )
        acc = u_slot ^ u_key ^ u_val ^ SEAL
        u_pay = []
        for i in range(pw):
            m = active & (i < u_plen)
            word = yield w.ld(
                self.ulog_pay.base + 4 * (w.tid * pw + i), mask=m
            )
            u_pay.append(word)
            acc = acc + np.where(m, (word + 1) * (i + 2), 0)
        u_valid = active & (u_seal == 2 * acc + 1)

        r_slot = yield w.ld(self.rlog_slot.base + 4 * w.tid, mask=active)
        r_key = yield w.ld(self.rlog_key.base + 4 * w.tid, mask=active)
        r_val = yield w.ld(self.rlog_val.base + 4 * w.tid, mask=active)
        r_flag = yield w.ld(self.rlog_flag.base + 4 * w.tid, mask=active)
        r_slot = np.clip(r_slot, 0, p.capacity - 1)
        r_plen = np.where(
            r_slot % p.large_every == 0, p.payload_large, p.payload_small
        )
        facc = r_slot ^ r_key ^ r_val ^ SEAL
        r_pay = []
        for i in range(pw):
            m = active & (i < r_plen)
            word = yield w.ld(
                self.rlog_pay.base + 4 * (w.tid * pw + i), mask=m
            )
            r_pay.append(word)
            facc = facc + np.where(m, (word + 1) * (i + 2), 0)
        r_valid = active & (r_flag == 2 * facc + 1)

        # Roll back in-flight undo transactions, roll forward flagged
        # redo transactions.
        yield w.st(self.tbl_key.base + 4 * u_slot, u_key, mask=u_valid)
        yield w.st(self.tbl_val.base + 4 * u_slot, u_val, mask=u_valid)
        for i in range(pw):
            m = u_valid & (i < u_plen)
            if bool(m.any()):
                yield w.st(
                    self.pay.base + 4 * (u_slot * pw + i), u_pay[i], mask=m
                )
        yield w.st(self.tbl_key.base + 4 * r_slot, r_key, mask=r_valid)
        yield w.st(self.tbl_val.base + 4 * r_slot, r_val, mask=r_valid)
        for i in range(pw):
            m = r_valid & (i < r_plen)
            if bool(m.any()):
                yield w.st(
                    self.pay.base + 4 * (r_slot * pw + i), r_pay[i], mask=m
                )
        yield w.dfence()
        # Discard both logs only after the restoration is durable.
        yield w.st(self.ulog_seal.base + 4 * w.tid, 0, mask=active)
        yield w.st(self.rlog_flag.base + 4 * w.tid, 0, mask=active)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _grid(self, system: GPUSystem, threads: int) -> int:
        per_block = system.config.gpu.threads_per_block
        return max(1, -(-threads // per_block))

    def _split_lanes(
        self, arr: Dict[str, np.ndarray], split: int
    ) -> List[Dict[str, np.ndarray]]:
        """Slice one stage's lane arrays into up to *split* chunks."""
        n = arr["n"]
        parts = max(1, min(int(split), n))
        if parts == 1:
            return [arr]
        bounds = np.linspace(0, n, parts + 1, dtype=int)
        chunks: List[Dict[str, np.ndarray]] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi == lo:
                continue
            chunk: Dict[str, Any] = {"n": int(hi - lo)}
            for name, value in arr.items():
                if name != "n":
                    chunk[name] = value[lo:hi]
            chunks.append(chunk)
        return chunks

    def serve_batch(
        self,
        system: GPUSystem,
        index: int,
        policy: "str | None" = None,
        split: int = 1,
    ) -> List[Any]:
        """Launch batch *index*'s kernels; return their results.

        The resilience layer's two degraded-mode levers hang here:
        *policy* sheds this batch's writes to one persist path, and
        *split* throttles the batch into smaller launches, each drained
        so later chunks can reuse the per-lane log slots (the same
        drain-boundary argument that makes cross-batch slot reuse
        safe).  Defaults reproduce the planned single-launch group
        commit exactly.
        """
        if policy is not None and policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; have {POLICIES}")
        batch = self.plan.batches[index]
        stages = (
            self._stages[index]
            if policy is None
            else self._batch_stages(batch, policy)
        )
        results = []
        for pos, (suffix, arr) in enumerate(stages):
            chunks = self._split_lanes(arr, split)
            for c, chunk in enumerate(chunks):
                tag = f"{suffix}.c{c}" if len(chunks) > 1 else suffix
                results.append(
                    system.launch(
                        self._serve_kernel,
                        self._grid(system, chunk["n"]),
                        kwargs={"arr": chunk},
                        name=f"serve.batch{batch.index}{tag}",
                        # Group commit: the batch's last stage drains;
                        # throttled chunks each drain (slot reuse).
                        drain=len(chunks) > 1 or pos == len(stages) - 1,
                    )
                )
        return results

    def run(self, system: GPUSystem) -> RunOutcome:
        results = []
        for index in range(len(self.plan.batches)):
            results.extend(self.serve_batch(system, index))
        return RunOutcome(results)

    def recover(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._recover_kernel,
            self._grid(system, self.params.batch_requests),
            name="serve.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, system: GPUSystem, complete: bool = True) -> None:
        p = self.params
        pw = p.payload_large
        cap = p.capacity
        keys = system.read_words(self.tbl_key, cap)
        vals = system.read_words(self.tbl_val, cap)
        pays = system.read_words(self.pay, cap * pw).reshape(cap, pw)
        slots = np.arange(cap)
        final = np.zeros(cap, dtype=np.int64)
        for k, v in self.plan.final_versions.items():
            final[k] = v
        populated = slots < p.n_keys
        inserted = np.zeros(cap, dtype=bool)
        for k in self.plan.insert_keys:
            inserted[k] = True

        present = keys != 0
        self.require(
            bool(np.all(keys[present] == slots[present] + 1)),
            "serve_kvs: table holds a foreign key",
        )
        self.require(
            bool(np.all(populated <= present)),
            f"serve_kvs: {int((populated & ~present).sum())} populated "
            "keys vanished",
        )
        self.require(
            bool(np.all(present <= (populated | inserted))),
            "serve_kvs: phantom rows outside the key space",
        )
        # Value = some committed version of its key, no newer than the
        # last planned write.
        delta = vals - encode_value(slots, 0)
        version = delta // VALUE_STEP
        value_ok = (
            (delta % VALUE_STEP == 0) & (delta >= 0) & (version <= final)
        )
        bad = present & ~value_ok
        self.require(
            not bad.any(),
            f"serve_kvs: {int(bad.sum())} rows hold an impossible value, "
            f"first at slot {int(np.argmax(bad))}",
        )
        # Payload atomicity: every payload word of a present row belongs
        # to exactly the row's value version; absent rows and tail words
        # are zero.
        plen = np.where(
            slots % p.large_every == 0, p.payload_large, p.payload_small
        )
        col = np.arange(pw)[None, :]
        in_row = col < plen[:, None]
        expected = np.where(
            present[:, None] & in_row, vals[:, None] + 1 + col, 0
        )
        torn = pays != expected
        self.require(
            not torn.any(),
            f"serve_kvs: torn payload at slot "
            f"{int(np.argmax(torn.any(axis=1)))}",
        )
        absent = ~present
        self.require(
            bool(np.all(vals[absent] == 0)),
            "serve_kvs: absent rows hold values",
        )
        if complete:
            missing = inserted & ~present
            self.require(
                not missing.any(),
                f"serve_kvs: {int(missing.sum())} inserts missing",
            )
            stale = present & (version != final)
            self.require(
                not stale.any(),
                f"serve_kvs: {int(stale.sum())} rows behind their final "
                f"version, first at slot {int(np.argmax(stale))}",
            )


def build_serve_app(**overrides: Any) -> ServeKVS:
    return ServeKVS(**overrides)

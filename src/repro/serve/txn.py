"""Durable-transaction persist-path selection.

Every write transaction persists through one of two paths, the core
design of "Adaptive Data Path Selection for Durable Transaction in GPU
Persistent Memory" (PAPERS.md):

* **PB path** (``pb``) — undo logging through the L1 persist buffer:
  read the old row, write a sealed undo record, ``ofence``, update in
  place, ``ofence``, clear the seal.  Persists stay buffered, so small
  transactions commit at L1 speed — but the old-row reads and the
  doubled store footprint put large transactions' lines straight into
  persist-buffer pressure (evictions, drain stalls).

* **direct path** (``direct``) — redo logging with NVM write-through:
  write the redo record (new values only — no old-row reads), flag it
  with a checksum, ``dfence`` (the write-through: the warp waits until
  the record is durable, and the drained buffer sheds its pressure),
  apply in place, ``ofence``, clear the flag.  The dfence is a real
  stall, so small transactions lose here; large ones win by skipping
  the cold old-row reads and by keeping the persist buffer shallow.

The adaptive policy picks per transaction *size* (row words = key +
value + payload); the forced policies pin one path for ablation.
Combined with size-segregated batching (:mod:`repro.serve.workload`)
the per-request choice is homogeneous per warp, so a warp either skips
the dfence entirely or amortizes one across 32 commits.
"""

from __future__ import annotations

from typing import Tuple

#: Persist paths.
PATH_PB = "pb"
PATH_DIRECT = "direct"

#: Selection policies.
POLICY_ADAPTIVE = "adaptive"
POLICY_FORCED_PB = "forced_pb"
POLICY_FORCED_DIRECT = "forced_direct"

POLICIES: Tuple[str, ...] = (
    POLICY_ADAPTIVE,
    POLICY_FORCED_PB,
    POLICY_FORCED_DIRECT,
)

#: Default adaptive cut-over, in row words (key + value + payload).
#: Small-payload rows (2 + payload_small = 4 words) stay on the PB
#: path; large-payload rows (2 + payload_large = 10 words) go direct.
DEFAULT_THRESHOLD_WORDS = 6


def txn_size_words(payload_words: int) -> int:
    """A transaction's row footprint: key word + value word + payload."""
    return 2 + payload_words


def select_path(
    policy: str,
    payload_words: int,
    threshold_words: int = DEFAULT_THRESHOLD_WORDS,
) -> str:
    """The persist path for one write transaction under *policy*."""
    if policy == POLICY_FORCED_PB:
        return PATH_PB
    if policy == POLICY_FORCED_DIRECT:
        return PATH_DIRECT
    if policy == POLICY_ADAPTIVE:
        return (
            PATH_DIRECT
            if txn_size_words(payload_words) > threshold_words
            else PATH_PB
        )
    raise ValueError(f"unknown policy {policy!r}; have {POLICIES}")

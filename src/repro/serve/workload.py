"""Deterministic YCSB-style workload generation for the serving layer.

A :class:`WorkloadSpec` fully determines a request stream: operation mix
(read / update / insert / read-modify-write), key popularity (zipfian
with configurable skew, or uniform), open-loop arrival process (Poisson
or uniform spacing at a configured rate), and per-key payload size
(small or large, fixed per key so payload-length invariants stay
checkable after a crash).  ``plan_workload`` expands the spec into a
:class:`Plan` — the request list plus its batching into kernel launches
— as a pure function of the spec, so the same seed always yields a
byte-identical stream (a test pins this via :meth:`Plan.digest`).

Batching rules:

* requests are admitted in arrival order, ``batch_requests`` at a time;
* writes to the same key within one batch are **combined**: only the
  last one applies (``Request.applies``), jumping the row straight to
  the newest version at the group commit — the classic group-commit
  write-combining rule.  Earlier writers still acknowledge at the same
  commit (their versions are subsumed), which keeps the final value
  schedule-independent without serializing hot-key traffic into
  degenerate one-request batches;
* within a batch, requests are stably sorted non-appliers-first, then
  small applying writes, then large applying writes.  One request maps
  to one thread, so this size segregation packs each persist path into
  as few warps as possible — the adaptive path selector
  (:mod:`repro.serve.txn`) decides per warp in effect, which is what
  makes per-size path selection pay off.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Operation kinds (stable wire names).
OP_READ = "read"
OP_UPDATE = "update"
OP_INSERT = "insert"
OP_RMW = "rmw"

#: Write-class operations: these consume a per-key version number and a
#: transaction slot in the batch's log.
WRITE_OPS = (OP_UPDATE, OP_INSERT, OP_RMW)

#: Named operation mixes, YCSB-style: weights for
#: (read, update, insert, rmw).
MIXES: Dict[str, Tuple[float, float, float, float]] = {
    "read_only": (1.0, 0.0, 0.0, 0.0),
    "read_heavy": (0.95, 0.05, 0.0, 0.0),  # YCSB-B
    "update_heavy": (0.5, 0.5, 0.0, 0.0),  # YCSB-A
    "rmw_heavy": (0.5, 0.2, 0.0, 0.3),  # YCSB-F flavour
    "insert_heavy": (0.4, 0.3, 0.3, 0.0),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a request stream."""

    seed: int = 7
    n_requests: int = 256
    mix: str = "rmw_heavy"
    #: Key popularity: "zipfian" (rank-ordered, skew ``theta``) or
    #: "uniform".
    popularity: str = "zipfian"
    theta: float = 0.99
    #: Keys populated at setup; reads/updates/RMWs target these.
    n_keys: int = 256
    #: Table slots; must cover ``n_keys`` plus every insert.
    capacity: int = 640
    #: Open-loop arrival process: "poisson" or "uniform".
    arrival: str = "poisson"
    #: Mean arrivals per thousand simulated cycles.
    rate_per_kcycle: float = 4.0
    #: Payload words for small / large keys; a key's class is fixed.
    payload_small: int = 2
    payload_large: int = 8
    #: Every ``large_every``-th key carries the large payload.
    large_every: int = 4
    #: Requests per kernel launch (group-commit granularity).
    batch_requests: int = 128

    def validate(self) -> "WorkloadSpec":
        if self.mix not in MIXES:
            raise ValueError(f"unknown mix {self.mix!r}; have {sorted(MIXES)}")
        if self.popularity not in ("zipfian", "uniform"):
            raise ValueError(f"unknown popularity {self.popularity!r}")
        if self.arrival not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival {self.arrival!r}")
        if not 0 < self.n_keys <= self.capacity:
            raise ValueError("need 0 < n_keys <= capacity")
        if self.payload_small > self.payload_large:
            raise ValueError("payload_small must not exceed payload_large")
        if self.batch_requests < 1 or self.n_requests < 1:
            raise ValueError("need n_requests >= 1 and batch_requests >= 1")
        if self.rate_per_kcycle <= 0:
            raise ValueError("rate_per_kcycle must be positive")
        if self.large_every < 1:
            raise ValueError("large_every must be >= 1")
        return self

    def payload_words(self, key: int) -> int:
        """A key's payload length — a pure function of the key, so the
        crash checker knows every row's expected shape."""
        return (
            self.payload_large
            if key % self.large_every == 0
            else self.payload_small
        )


@dataclass(frozen=True)
class Request:
    """One client request of the stream."""

    index: int  #: position in arrival order
    op: str
    key: int
    arrival: int  #: arrival time, cycles
    payload: int  #: payload words (fixed per key)
    version: int  #: per-key write sequence number; 0 for reads
    #: False for a write combined away by a later write to the same key
    #: in the same batch: it acknowledges at the group commit but its
    #: version never lands in the table.
    applies: bool = True

    @property
    def is_write(self) -> bool:
        return self.op in WRITE_OPS

    @property
    def is_applying_write(self) -> bool:
        return self.is_write and self.applies


@dataclass(frozen=True)
class Batch:
    """One kernel launch worth of requests (one group commit)."""

    index: int
    requests: Tuple[Request, ...]

    @property
    def ready_time(self) -> int:
        """Earliest cycle the batch can launch: its last arrival."""
        return max(r.arrival for r in self.requests)


@dataclass(frozen=True)
class Plan:
    """A fully expanded workload: the stream and its batching."""

    spec: WorkloadSpec
    requests: Tuple[Request, ...]
    batches: Tuple[Batch, ...]
    #: Final committed version per written key (absent = never written).
    final_versions: Dict[int, int] = field(default_factory=dict)

    @property
    def insert_keys(self) -> List[int]:
        return sorted(
            {r.key for r in self.requests if r.op == OP_INSERT}
        )

    @property
    def max_version(self) -> int:
        return max(self.final_versions.values(), default=0)

    def digest(self) -> str:
        """SHA-256 over the canonical stream encoding — the determinism
        tests' byte-identity witness."""
        blob = hashlib.sha256()
        for r in self.requests:
            blob.update(
                f"{r.index}:{r.op}:{r.key}:{r.arrival}:"
                f"{r.payload}:{r.version}:{int(r.applies)};".encode("ascii")
            )
        for b in self.batches:
            blob.update(
                f"b{b.index}=" .encode("ascii")
                + ",".join(str(r.index) for r in b.requests).encode("ascii")
                + b"|"
            )
        return blob.hexdigest()


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def _zipf_cdf(n: int, theta: float) -> List[float]:
    """Cumulative popularity of ranks ``0..n-1`` under a zipfian with
    exponent *theta* (YCSB's ``zipfian_const``)."""
    weights = [1.0 / float(rank + 1) ** theta for rank in range(n)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def _pick_rank(cdf: List[float], u: float) -> int:
    """Inverse-CDF sampling by bisection (deterministic, stdlib-only)."""
    lo, hi = 0, len(cdf) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


def generate_requests(spec: WorkloadSpec) -> List[Request]:
    """The seeded request stream, before batching (versions = 0)."""
    spec.validate()
    rng = random.Random(spec.seed)
    read_w, update_w, insert_w, _rmw_w = MIXES[spec.mix]
    cdf = (
        _zipf_cdf(spec.n_keys, spec.theta)
        if spec.popularity == "zipfian"
        else []
    )
    mean_gap = 1000.0 / spec.rate_per_kcycle
    clock = 0.0
    next_insert = spec.n_keys
    requests: List[Request] = []
    for index in range(spec.n_requests):
        if spec.arrival == "poisson":
            clock += rng.expovariate(1.0 / mean_gap)
        else:
            clock += mean_gap
        u = rng.random()
        if u < read_w:
            op = OP_READ
        elif u < read_w + update_w:
            op = OP_UPDATE
        elif u < read_w + update_w + insert_w:
            op = OP_INSERT
        else:
            op = OP_RMW
        if op == OP_INSERT and next_insert >= spec.capacity:
            op = OP_UPDATE  # table full: degrade to an update
        if op == OP_INSERT:
            key = next_insert
            next_insert += 1
        elif spec.popularity == "zipfian":
            key = _pick_rank(cdf, rng.random())
        else:
            key = rng.randrange(spec.n_keys)
        requests.append(
            Request(
                index=index,
                op=op,
                key=key,
                arrival=int(clock),
                payload=spec.payload_words(key),
                version=0,
            )
        )
    return requests


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
def _order_in_batch(requests: List[Request]) -> Tuple[Request, ...]:
    """Stable size segregation: non-applying requests first, then small
    applying writes, then large ones (see module docstring)."""
    return tuple(
        sorted(
            requests,
            key=lambda r: (1, r.payload) if r.is_applying_write else (0, 0),
        )
    )


def plan_workload(spec: WorkloadSpec) -> Plan:
    """Expand *spec* into the batched stream with versions assigned."""
    raw = generate_requests(spec)
    versions: Dict[int, int] = {}
    batches: List[Batch] = []
    for start in range(0, len(raw), spec.batch_requests):
        chunk = raw[start : start + spec.batch_requests]
        # Every write consumes a version in arrival order; only the
        # last write per key in the batch applies (write combining).
        last_writer: Dict[int, int] = {}
        for pos, req in enumerate(chunk):
            if req.is_write:
                last_writer[req.key] = pos
        admitted: List[Request] = []
        for pos, req in enumerate(chunk):
            if req.is_write:
                versions[req.key] = versions.get(req.key, 0) + 1
                req = Request(
                    index=req.index,
                    op=req.op,
                    key=req.key,
                    arrival=req.arrival,
                    payload=req.payload,
                    version=versions[req.key],
                    applies=last_writer[req.key] == pos,
                )
            admitted.append(req)
        batches.append(
            Batch(index=len(batches), requests=_order_in_batch(admitted))
        )
    ordered = tuple(
        sorted(
            (r for b in batches for r in b.requests),
            key=lambda r: r.index,
        )
    )
    return Plan(
        spec=spec,
        requests=ordered,
        batches=tuple(batches),
        final_versions=dict(sorted(versions.items())),
    )

"""Serving SLO benchmark: the models x persist-path-policies grid.

``python -m repro.serve.bench`` runs the planned request stream through
the crash-isolated :class:`~repro.exec.Executor` as ``mode="serve"``
jobs — one cell per (persistency model, persist-path policy) — and
writes a sorted-key JSON report of each cell's throughput, latency
percentiles (p50/p95/p99 from the :mod:`repro.metrics` histograms) and
worst-case recovery-under-load time.  Every stat is a deterministic
function of (app params, system config), so the report is byte-identical
across ``--workers`` counts — CI pins that with a two-run ``cmp``.

The summary block reports the paper-style ablation ratio per model:
adaptive path selection versus each forced-path baseline (a test asserts
adaptive beats the forced-PB baseline under SBRP on the default
mixed-size workload).

Command line::

    python -m repro.serve.bench                  # full grid -> serve JSON
    python -m repro.serve.bench --smoke          # CI-sized stream
    python -m repro.serve.bench --workers 4      # crash-isolated pool
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.common.config import ModelName, small_system
from repro.exec import Executor, ScenarioJob
from repro.exec.executor import add_pool_args, pool_kwargs
from repro.exec.jobs import MODE_SERVE
from repro.serve.txn import POLICIES, POLICY_ADAPTIVE

#: Persistency models of the grid, report order.
SERVE_MODELS = (ModelName.GPM, ModelName.EPOCH, ModelName.SBRP)

#: App params of the full benchmark stream: the showcase defaults of
#: :class:`~repro.serve.app.ServeKVSParams` (256-request zipfian
#: RMW-heavy mix, mixed payload sizes, 128-request batches) at a
#: saturating offered load — arrivals outpace service, so the span
#: measures serving *capacity* and the latency percentiles include
#: queueing under backlog.  At the default trickle rate the system
#: idles between batches and every policy looks alike.
SERVE_PARAMS: Dict[str, Any] = {"rate_per_kcycle": 40.0}

#: CI-sized stream: same structure, ~3x fewer simulated cycles.
SMOKE_PARAMS: Dict[str, Any] = {
    "n_requests": 96,
    "n_keys": 96,
    "capacity": 256,
    "batch_requests": 48,
    "rate_per_kcycle": 40.0,
}

#: Result-stat keys copied into each report cell.
CELL_STATS = (
    "serve.requests",
    "serve.batches",
    "serve.span_cycles",
    "serve.throughput_rps",
    "serve.latency_p50",
    "serve.latency_p95",
    "serve.latency_p99",
    "serve.latency_mean",
    "serve.recovery_cycles",
    "serve.path_pb",
    "serve.path_direct",
)


def suite_jobs(smoke: bool = False) -> List[ScenarioJob]:
    """The grid's jobs: one serve measurement per model x policy."""
    params = SMOKE_PARAMS if smoke else SERVE_PARAMS
    jobs: List[ScenarioJob] = []
    for model in SERVE_MODELS:
        for policy in POLICIES:
            jobs.append(
                ScenarioJob(
                    app="serve_kvs",
                    config=small_system(model),
                    app_params={"policy": policy, **params},
                    mode=MODE_SERVE,
                )
            )
    return jobs


def cell_name(job: ScenarioJob) -> str:
    return f"{job.config.label}/{job.app_params['policy']}"


def build_report(
    jobs: List[ScenarioJob], results: List[Any], smoke: bool
) -> Dict[str, Any]:
    """Assemble the sorted-key report document."""
    cells: Dict[str, Any] = {}
    for job, result in zip(jobs, results):
        cell = {key: result.stats[key] for key in CELL_STATS}
        cell["cycles"] = result.cycles
        cells[cell_name(job)] = cell

    # Per-model ablation: adaptive vs each forced baseline on service
    # cycles (sum of kernel cycles, queueing excluded; < 1 means
    # adaptive serves the stream faster).
    summary: Dict[str, Any] = {}
    for model in SERVE_MODELS:
        label = small_system(model).label
        adaptive = cells[f"{label}/{POLICY_ADAPTIVE}"]["cycles"]
        ratios = {}
        for policy in POLICIES:
            if policy == POLICY_ADAPTIVE:
                continue
            forced = cells[f"{label}/{policy}"]["cycles"]
            ratios[f"adaptive_vs_{policy}"] = (
                adaptive / forced if forced else 0.0
            )
        summary[label] = ratios

    return {
        "schema": 1,
        "suite": "smoke" if smoke else "full",
        "app_params": dict(SMOKE_PARAMS if smoke else SERVE_PARAMS),
        "cells": cells,
        "summary": summary,
    }


def render_report(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Serve the YCSB-style stream across persistency "
        "models and persist-path policies; report throughput, tail "
        "latency and recovery time.",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized stream"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="crash-isolated worker processes (default: 1; the report "
        "is byte-identical across counts)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: serve_<suite>.json in cwd)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache directory",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    add_pool_args(parser)
    args = parser.parse_args(argv)

    jobs = suite_jobs(smoke=args.smoke)
    executor = Executor(
        workers=args.workers, cache=args.cache_dir, **pool_kwargs(args)
    )
    results = executor.submit(jobs)
    doc = build_report(jobs, results, smoke=args.smoke)

    if not args.quiet:
        for job, result in zip(jobs, results):
            stats = result.stats
            print(
                f"  {cell_name(job):28s} "
                f"{stats['serve.throughput_rps']:>12.0f} req/s  "
                f"p99 {stats['serve.latency_p99']:>8.0f} cy  "
                f"recovery {stats['serve.recovery_cycles']:>8.0f} cy",
                file=sys.stderr,
            )
        print(f"  {executor.footer()}", file=sys.stderr)

    suite = "smoke" if args.smoke else "full"
    out = Path(args.out) if args.out else Path(f"serve_{suite}.json")
    out.write_text(render_report(doc), encoding="utf-8")
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

"""One serving SLO measurement: throughput, latency percentiles,
recovery time under load.

``run_serve_scenario`` executes a planned request stream (one
:class:`~repro.serve.app.ServeKVS` instance) on a fresh simulated
machine, then prices the stream against its open-loop arrival times:

* batch *b* cannot start before its last request arrives
  (``Batch.ready_time``) nor before batch *b-1* finished (group commit
  is in-order), so ``start = max(prev_finish, ready)`` and
  ``finish = start + kernel_cycles`` on a host-side virtual clock;
* a request's latency is ``finish(batch) - arrival`` — queueing delay
  plus service time, recorded into a :mod:`repro.metrics` histogram
  whose deterministic p50/p95/p99 land in the result stats;
* throughput is requests per simulated second over the stream's span;
* recovery time reuses :class:`~repro.crash.CrashHarness`'s worst-case
  crash point (the paper's Figure 11 scenario) — power fails just
  before the last commit durably lands, the recovery kernel runs on a
  rebooted machine, and its cycles are the recovery-under-load cost.

Everything is a deterministic function of (app params, config), so
serve reports are byte-identical across Executor worker counts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps import build_app
from repro.bench.runner import ScenarioResult
from repro.common.config import SystemConfig
from repro.common.units import CLOCK_MHZ
from repro.crash import CrashHarness
from repro.metrics.registry import MetricsRegistry
from repro.system import GPUSystem

#: Histogram of request latencies, cycles.
LATENCY_METRIC = "serve.latency_cycles"


def run_serve_scenario(
    app_name: str,
    config: SystemConfig,
    app_params: Optional[dict] = None,
    measure_recovery: bool = True,
) -> ScenarioResult:
    """Serve one request stream and report its SLO numbers."""
    params = dict(app_params or {})
    metrics = MetricsRegistry()
    system = GPUSystem(config, metrics=metrics)
    app = build_app(app_name, **params)
    app.setup(system)
    outcome = app.run(system)
    system.sync()
    app.check(system, complete=True)

    # Price the stream on the open-loop virtual clock.  A batch may
    # commit in stages ("serve.batch3.wt" + "serve.batch3"), so group
    # kernel cycles by the batch index encoded in the launch name.
    plan = app.plan
    batch_cycles: Dict[int, float] = {}
    for kernel in outcome.kernels:
        index = int(kernel.name.split(".")[1].removeprefix("batch"))
        batch_cycles[index] = batch_cycles.get(index, 0.0) + kernel.cycles
    finish = 0.0
    batch_rows = []
    for batch in plan.batches:
        start = max(finish, float(batch.ready_time))
        finish = start + batch_cycles[batch.index]
        batch_rows.append(
            {
                "batch": batch.index,
                "requests": len(batch.requests),
                "ready": batch.ready_time,
                "start": start,
                "finish": finish,
                "kernel_cycles": batch_cycles[batch.index],
            }
        )
        for req in batch.requests:
            metrics.observe(LATENCY_METRIC, finish - req.arrival)

    latency = metrics.histogram(LATENCY_METRIC).summary()
    span_s = finish / (CLOCK_MHZ * 1e6)
    n_requests = len(plan.requests)
    throughput = n_requests / span_s if span_s > 0 else 0.0

    recovery_cycles = 0.0
    if measure_recovery:
        harness = CrashHarness(lambda: build_app(app_name, **params), config)
        recovery_cycles = harness.recovery_cycles_at_worst_case()

    paths = app.path_counts()
    stats: Dict[str, float] = {
        "serve.requests": float(n_requests),
        "serve.batches": float(len(plan.batches)),
        "serve.span_cycles": finish,
        "serve.throughput_rps": throughput,
        "serve.latency_p50": latency.get("p50", 0.0),
        "serve.latency_p95": latency.get("p95", 0.0),
        "serve.latency_p99": latency.get("p99", 0.0),
        "serve.latency_mean": latency.get("mean", 0.0),
        "serve.recovery_cycles": recovery_cycles,
        "serve.path_pb": float(paths["pb"]),
        "serve.path_direct": float(paths["direct"]),
    }
    detail: Dict[str, Any] = {
        "policy": params.get("policy", "adaptive"),
        "mix": params.get("mix", "update_heavy"),
        "batches": batch_rows,
    }
    return ScenarioResult(
        app=app_name,
        label=config.label,
        cycles=outcome.cycles,
        stats=stats,
        detail=detail,
        metrics=system.metrics_snapshot(),
    )

"""Building po / vmo / pmo for an execution witness (Boxes 1 and 2).

The model is *axiomatic*: given a litmus program and a synchronization
witness (which release each acquire observed), the relations are built
as explicit :class:`networkx.DiGraph` edges:

* ``po`` — program order within each thread.
* ``vmo`` — the fragment of volatile memory order the witness fixes:
  po edges plus release→acquire edges for observed same-location pairs
  of sufficient scope (scoped release consistency).
* ``pmo`` — Box 2's two rules plus transitivity:

  - *intra-thread*: ``W po OF po W'  ⟹  W pmo W'`` (dFence counts as an
    ordering fence too);
  - *inter-thread*: ``W po pRel(X,S) vmo pAcq(X,S) po W'  ⟹  W pmo W'``
    when S covers both threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from repro.common.errors import LitmusError
from repro.formal.events import Event, EventKind, LitmusProgram, ReadsFrom


@dataclass
class ExecutionWitness:
    """One resolved execution: the program plus acquire pairings."""

    program: LitmusProgram
    reads_from: ReadsFrom = field(default_factory=dict)

    def release_of(self, acq: Event) -> Optional[Event]:
        rel_eid = self.reads_from.get(acq.eid)
        if rel_eid is None:
            return None
        for event in self.program.events():
            if event.eid == rel_eid:
                return event
        raise LitmusError(f"witness references unknown event {rel_eid}")


def build_po(program: LitmusProgram) -> nx.DiGraph:
    """Program order: a chain per thread."""
    po = nx.DiGraph()
    for thread in program.threads:
        for event in thread.events:
            po.add_node(event.eid)
        for a, b in zip(thread.events, thread.events[1:]):
            po.add_edge(a.eid, b.eid)
    return po


def build_vmo(witness: ExecutionWitness) -> nx.DiGraph:
    """The witness-determined fragment of volatile memory order.

    vmo contains po (per-thread order is respected by the scoped model
    for same-thread operations) and one release→acquire edge for every
    observed pairing whose scope covers both threads.  The relation is
    transitively closed, as Box 1 requires.
    """
    program = witness.program
    vmo = build_po(program)
    for acq in program.acquires():
        rel = witness.release_of(acq)
        if rel is None:
            continue
        if rel.loc != acq.loc:
            raise LitmusError(
                f"acquire {acq} cannot read release {rel}: different locations"
            )
        scope = _narrowest(rel, acq)
        if program.scope_covers(scope, rel.tid, acq.tid):
            vmo.add_edge(rel.eid, acq.eid)
    if not nx.is_directed_acyclic_graph(vmo):
        raise LitmusError("infeasible witness: cyclic vmo")
    return nx.transitive_closure_dag(vmo)


def build_pmo(witness: ExecutionWitness) -> nx.DiGraph:
    """Persist memory order over the program's PM writes (Box 2)."""
    program = witness.program
    po = build_po(program)
    po_closed = nx.transitive_closure_dag(po)
    vmo = build_vmo(witness)
    events = {event.eid: event for event in program.events()}
    persists = [e for e in program.events() if e.is_persist]
    pmo = nx.DiGraph()
    for persist in persists:
        pmo.add_node(persist.eid)

    fences = [
        e
        for e in program.events()
        if e.kind in (EventKind.OFENCE, EventKind.DFENCE)
    ]
    # Rule 1: intra-thread via ordering/durability fences.
    for fence in fences:
        for w1 in persists:
            if w1.tid != fence.tid or not po_closed.has_edge(w1.eid, fence.eid):
                continue
            for w2 in persists:
                if w2.tid != fence.tid:
                    continue
                if po_closed.has_edge(fence.eid, w2.eid):
                    pmo.add_edge(w1.eid, w2.eid)

    # Rule 2: inter-thread via scoped release/acquire in vmo.
    for acq in program.acquires():
        rel = witness.release_of(acq)
        if rel is None:
            continue
        scope = _narrowest(rel, acq)
        if not program.scope_covers(scope, rel.tid, acq.tid):
            continue
        if not vmo.has_edge(rel.eid, acq.eid):
            continue
        for w1 in persists:
            if w1.tid != rel.tid or not po_closed.has_edge(w1.eid, rel.eid):
                continue
            for w2 in persists:
                if w2.tid != acq.tid:
                    continue
                if po_closed.has_edge(acq.eid, w2.eid):
                    pmo.add_edge(w1.eid, w2.eid)

    # A PM-resident release variable is itself a persist ordered after
    # the persists preceding the release.
    for rel in program.releases():
        if rel.loc is not None and rel.loc.startswith("p"):
            pmo.add_node(rel.eid)
            for w1 in persists:
                if w1.tid == rel.tid and po_closed.has_edge(w1.eid, rel.eid):
                    pmo.add_edge(w1.eid, rel.eid)

    if not nx.is_directed_acyclic_graph(pmo):
        raise LitmusError("pmo has a cycle; witness is inconsistent")
    closed = nx.transitive_closure_dag(pmo)
    closed.graph["events"] = events
    return closed


def durable_prefix_required(pmo: nx.DiGraph, eid: int) -> List[int]:
    """Every persist that must be durable whenever *eid* is durable."""
    return sorted(nx.ancestors(pmo, eid))


def _narrowest(rel: Event, acq: Event):
    """The effective scope of a release/acquire pair is the narrowest of
    the two operations' scopes (Section 2)."""
    assert rel.scope is not None and acq.scope is not None
    order = {"block": 0, "device": 1, "system": 2}
    return rel.scope if order[rel.scope.value] <= order[acq.scope.value] else acq.scope

"""Litmus tests for the SBRP specification.

A :class:`LitmusTest` pairs a program with *forbidden* crash images;
:func:`run_litmus` enumerates every execution witness and every crash
image the model allows and checks none is forbidden (and that each
*required* image is reachable).  The library covers the paper's worked
examples:

* ``mp_ofence`` — message passing through PM with oFence (Figure 4's
  logging discipline): the "flag without data" image is forbidden.
* ``no_fence`` — the same without the fence: the bad image IS allowed.
* ``scoped_release`` — inter-thread PMO via block-scope release/acquire
  within one block (Box 2's rule 2).
* ``scope_mismatch`` — the Section 5.3 scoped persistency bug: a
  block-scope release observed across blocks gives NO pmo edge, so the
  bad image is allowed.
* ``transitive_chain`` — Box 1's transitivity across three threads.
* ``dfence_durability`` — a completed dFence forces its predecessors
  into every image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import Scope
from repro.common.errors import LitmusError
from repro.formal.crash_states import CrashImageT, allowed_crash_images
from repro.formal.events import LitmusProgram, all_reads_from
from repro.formal.relations import ExecutionWitness


@dataclass
class LitmusResult:
    name: str
    images: List[CrashImageT]
    violations: List[CrashImageT]
    missing: List[CrashImageT]

    @property
    def passed(self) -> bool:
        return not self.violations and not self.missing


@dataclass
class LitmusTest:
    """A litmus program plus its expected crash-image properties."""

    name: str
    build: Callable[[], LitmusProgram]
    #: Predicates over images; a matching image fails the test.
    forbidden: Sequence[Callable[[CrashImageT], bool]] = ()
    #: Images that must be reachable (exact location->value matches,
    #: compared on the mentioned locations only).
    required: Sequence[CrashImageT] = ()
    #: dFence eids treated as completed (by index into events, resolved
    #: lazily via the marker location trick below).
    completed_dfences: Sequence[int] = ()


def run_litmus(test: LitmusTest) -> LitmusResult:
    """Enumerate all witnesses x crash images and check expectations."""
    program = test.build().validate()
    images: List[CrashImageT] = []
    seen = set()
    for reads_from in all_reads_from(program):
        witness = ExecutionWitness(program, reads_from)
        try:
            witness_images = allowed_crash_images(
                witness, test.completed_dfences
            )
        except LitmusError:
            continue  # infeasible witness (cyclic synchronization)
        for image in witness_images:
            key = tuple(sorted(image.items()))
            if key not in seen:
                seen.add(key)
                images.append(image)
    violations = [
        image
        for image in images
        if any(predicate(image) for predicate in test.forbidden)
    ]
    missing = [
        wanted
        for wanted in test.required
        if not any(_matches(image, wanted) for image in images)
    ]
    return LitmusResult(test.name, images, violations, missing)


def _matches(image: CrashImageT, wanted: CrashImageT) -> bool:
    return all(image.get(loc, 0) == value for loc, value in wanted.items())


# ----------------------------------------------------------------------
# the library
# ----------------------------------------------------------------------
def _mp_ofence() -> LitmusProgram:
    prog = LitmusProgram("mp_ofence")
    t0 = prog.thread(block=0)
    t0.w("pData", 1).ofence().w("pFlag", 1)
    return prog


def _no_fence() -> LitmusProgram:
    prog = LitmusProgram("no_fence")
    t0 = prog.thread(block=0)
    t0.w("pData", 1).w("pFlag", 1)
    return prog


def _scoped_release(scope: Scope, same_block: bool) -> LitmusProgram:
    prog = LitmusProgram("scoped_release")
    t0 = prog.thread(block=0)
    t0.w("pX", 1).prel("flag", 1, scope)
    t1 = prog.thread(block=0 if same_block else 1)
    t1.pacq("flag", scope).w("pY", 1)
    return prog


def _transitive_chain() -> LitmusProgram:
    prog = LitmusProgram("transitive_chain")
    t0 = prog.thread(block=0)
    t0.w("pA", 1).prel("f0", 1, Scope.DEVICE)
    t1 = prog.thread(block=1)
    t1.pacq("f0", Scope.DEVICE).w("pB", 1).prel("f1", 1, Scope.DEVICE)
    t2 = prog.thread(block=2)
    t2.pacq("f1", Scope.DEVICE).w("pC", 1)
    return prog


def _dfence_durability() -> LitmusProgram:
    prog = LitmusProgram("dfence_durability")
    t0 = prog.thread(block=0)
    t0.w("pA", 1).w("pB", 2).dfence().w("pC", 3)
    return prog


def _intra_thread_chain() -> LitmusProgram:
    prog = LitmusProgram("intra_thread_chain")
    t0 = prog.thread(block=0)
    t0.w("pA", 1).ofence().w("pB", 2).ofence().w("pC", 3)
    return prog


def _same_location_overwrite() -> LitmusProgram:
    prog = LitmusProgram("same_location_overwrite")
    t0 = prog.thread(block=0)
    t0.w("pX", 1).ofence().w("pX", 2)
    return prog


LITMUS_TESTS: Dict[str, LitmusTest] = {
    "mp_ofence": LitmusTest(
        name="mp_ofence",
        build=_mp_ofence,
        forbidden=[lambda im: im.get("pFlag", 0) == 1 and im.get("pData", 0) != 1],
        required=[{}, {"pData": 1}, {"pData": 1, "pFlag": 1}],
    ),
    "no_fence": LitmusTest(
        name="no_fence",
        build=_no_fence,
        # Without a fence the bad image must be REACHABLE.
        required=[{"pFlag": 1, "pData": 0}],
    ),
    "block_release_same_block": LitmusTest(
        name="block_release_same_block",
        build=lambda: _scoped_release(Scope.BLOCK, same_block=True),
        forbidden=[lambda im: im.get("pY", 0) == 1 and im.get("pX", 0) != 1],
    ),
    "scope_mismatch_bug": LitmusTest(
        name="scope_mismatch_bug",
        build=lambda: _scoped_release(Scope.BLOCK, same_block=False),
        # The Section 5.3 bug: block scope across blocks gives no PMO,
        # so pY-without-pX must be reachable.
        required=[{"pY": 1, "pX": 0}],
    ),
    "device_release_cross_block": LitmusTest(
        name="device_release_cross_block",
        build=lambda: _scoped_release(Scope.DEVICE, same_block=False),
        forbidden=[lambda im: im.get("pY", 0) == 1 and im.get("pX", 0) != 1],
    ),
    "transitive_chain": LitmusTest(
        name="transitive_chain",
        build=_transitive_chain,
        forbidden=[
            lambda im: im.get("pC", 0) == 1 and im.get("pA", 0) != 1,
            lambda im: im.get("pC", 0) == 1 and im.get("pB", 0) != 1,
            lambda im: im.get("pB", 0) == 1 and im.get("pA", 0) != 1,
        ],
    ),
    "dfence_durability": LitmusTest(
        name="dfence_durability",
        build=_dfence_durability,
        # The dFence (eid 2) completed: pA and pB are mandatory.
        completed_dfences=[2],
        forbidden=[lambda im: im.get("pA", 0) != 1 or im.get("pB", 0) != 2],
    ),
    "intra_thread_chain": LitmusTest(
        name="intra_thread_chain",
        build=_intra_thread_chain,
        forbidden=[
            lambda im: im.get("pC", 0) == 3 and im.get("pB", 0) != 2,
            lambda im: im.get("pB", 0) == 2 and im.get("pA", 0) != 1,
        ],
    ),
    "same_location_overwrite": LitmusTest(
        name="same_location_overwrite",
        build=_same_location_overwrite,
        # pX=2 durable requires pX=1 to have been durable first, so the
        # visible survivor can be 2 only via the ordered overwrite; an
        # image holding 1 must also be reachable (crash between).
        required=[{"pX": 0}, {"pX": 1}, {"pX": 2}],
    ),
}

"""Enumerating the crash images a persistency model permits.

A crash image corresponds to a *downward-closed* subset of the pmo DAG
(if W2 is durable, everything pmo-before it is durable), with per-
location values chosen among the pmo-maximal durable writes to that
location.  dFences additionally force durability: every persist
pmo-before a *completed* dFence must be in every image (completion of a
dFence guarantees the issuing thread's prior persists are durable).

For litmus-sized programs the enumeration is exhaustive; apps use the
simulator's persist log instead (:mod:`repro.crash`).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.formal.events import Event, EventKind, LitmusProgram
from repro.formal.relations import ExecutionWitness, build_pmo, build_po

#: A crash image: location -> durable value (missing = initial zero).
CrashImageT = Dict[str, int]


def downward_closed_subsets(dag: nx.DiGraph) -> Iterable[FrozenSet[int]]:
    """All downward-closed subsets (order ideals) of a DAG.

    Exponential; intended for litmus-scale graphs (a dozen nodes).
    """
    nodes = list(nx.topological_sort(dag))
    ancestors = {n: nx.ancestors(dag, n) for n in nodes}
    seen: Set[FrozenSet[int]] = set()
    for mask in itertools.product([False, True], repeat=len(nodes)):
        subset = {n for n, take in zip(nodes, mask) if take}
        if all(ancestors[n] <= subset for n in subset):
            seen.add(frozenset(subset))
    return seen


def allowed_crash_images(
    witness: ExecutionWitness,
    completed_dfences: Optional[Iterable[int]] = None,
) -> List[CrashImageT]:
    """Every PM image the model allows after a crash of this execution.

    *completed_dfences* lists eids of dFence events known to have
    completed before the crash; their preceding persists become
    mandatory in every image.
    """
    program = witness.program
    pmo = build_pmo(witness)
    events: Dict[int, Event] = pmo.graph["events"]

    # Acquires are blocking spins: a thread whose acquire observed no
    # release never executes its later events, so those persists cannot
    # appear in any image of this witness.
    executed = _executed_events(witness)
    restricted = pmo.subgraph([n for n in pmo.nodes if n in executed]).copy()

    mandatory = _dfence_mandatory(program, completed_dfences or ()) & executed

    images: Set[Tuple[Tuple[str, int], ...]] = set()
    for subset in downward_closed_subsets(restricted):
        if not mandatory <= subset:
            continue
        images.update(_value_choices(subset, restricted, events))
    return [dict(image) for image in sorted(images)]


def allowed_final_images(witness: ExecutionWitness) -> List[CrashImageT]:
    """Every PM image the model allows once the machine has fully
    drained: the durable set is *all* executed persists (including
    PM-resident release flags), and only the per-location value choice
    among pmo-maximal writes remains free.

    The conformance checker compares the simulator's post-``sync()``
    image against this set: an execution whose final image is missing a
    persist (an acknowledged-but-never-written drain, say) is flagged
    even though every *crash* image it produced was an allowed subset.
    """
    pmo = build_pmo(witness)
    events: Dict[int, Event] = pmo.graph["events"]
    executed = _executed_events(witness)
    restricted = pmo.subgraph([n for n in pmo.nodes if n in executed]).copy()
    subset = frozenset(restricted.nodes)
    images = set(_value_choices(subset, restricted, events))
    return [dict(image) for image in sorted(images)]


def _executed_events(witness: ExecutionWitness) -> FrozenSet[int]:
    """Event ids that actually execute under this witness.

    Each thread truncates at its first acquire that observed no release
    — and an acquire can only observe a release that itself executed, so
    truncation cascades to a fixpoint.
    """
    executed: Set[int] = {e.eid for e in witness.program.events()}
    while True:
        next_executed: Set[int] = set()
        for thread in witness.program.threads:
            for event in thread.events:
                if event.kind is EventKind.PACQ:
                    source = witness.reads_from.get(event.eid)
                    if source is None or source not in executed:
                        break
                next_executed.add(event.eid)
        if next_executed == executed:
            return frozenset(executed)
        executed = next_executed


def _dfence_mandatory(
    program: LitmusProgram, completed_dfences: Iterable[int]
) -> FrozenSet[int]:
    """Persists that every image must contain: those program-ordered
    before a completed dFence of the same thread."""
    completed = set(completed_dfences)
    po = nx.transitive_closure_dag(build_po(program))
    mandatory: Set[int] = set()
    for event in program.events():
        if event.kind is EventKind.DFENCE and event.eid in completed:
            for persist in program.events():
                if (
                    persist.is_persist
                    and persist.tid == event.tid
                    and po.has_edge(persist.eid, event.eid)
                ):
                    mandatory.add(persist.eid)
    return frozenset(mandatory)


def _value_choices(
    subset: FrozenSet[int],
    pmo: nx.DiGraph,
    events: Dict[int, Event],
) -> Iterable[Tuple[Tuple[str, int], ...]]:
    """Per-location value combinations for one durable set.

    Writes to the same location that are pmo-unordered may land in any
    order; the surviving value is any pmo-maximal durable write.
    """
    by_loc: Dict[str, List[int]] = {}
    for eid in subset:
        event = events[eid]
        assert event.loc is not None
        by_loc.setdefault(event.loc, []).append(eid)

    per_loc_options: List[List[Tuple[str, int]]] = []
    for loc, eids in sorted(by_loc.items()):
        maximal = [
            e
            for e in eids
            if not any(
                other != e and pmo.has_edge(e, other)
                for other in eids
            )
        ]
        per_loc_options.append(
            [(loc, events[eid].value) for eid in sorted(set(maximal))]
        )
    if not per_loc_options:
        yield ()
        return
    for combo in itertools.product(*per_loc_options):
        yield tuple(sorted(combo))

"""Event vocabulary for the axiomatic model.

A litmus program is a handful of threads, each a straight-line list of
events over named locations.  PM locations are written ``"pX"`` (their
names start with ``p``); everything else is volatile — the convention
keeps litmus tests readable.

Scopes follow the paper: each thread belongs to a threadblock; a scoped
release/acquire pair only synchronizes when its scope covers both
threads (``BLOCK`` requires the same block, ``DEVICE``/``SYSTEM`` always
cover — the model is single-GPU).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.config import Scope
from repro.common.errors import LitmusError


class EventKind(enum.Enum):
    W = "write"  # PM write (persist)
    WV = "volatile-write"
    R = "read"
    OFENCE = "ofence"
    DFENCE = "dfence"
    PACQ = "pacq"
    PREL = "prel"


@dataclass(frozen=True)
class Event:
    """One event of a litmus program."""

    eid: int
    tid: int
    kind: EventKind
    loc: Optional[str] = None
    value: int = 0
    scope: Optional[Scope] = None

    @property
    def is_persist(self) -> bool:
        return self.kind is EventKind.W

    def __repr__(self) -> str:
        parts = [f"T{self.tid}", self.kind.name]
        if self.loc is not None:
            parts.append(f"{self.loc}={self.value}" if self._writes else self.loc)
        if self.scope is not None:
            parts.append(self.scope.value)
        return f"<{':'.join(parts)}#{self.eid}>"

    @property
    def _writes(self) -> bool:
        return self.kind in (EventKind.W, EventKind.WV, EventKind.PREL)


class Thread:
    """Builder for one thread's straight-line event list."""

    def __init__(self, tid: int, block: int, counter) -> None:
        self.tid = tid
        self.block = block
        self._counter = counter
        self.events: List[Event] = []

    def _add(self, kind: EventKind, loc=None, value=0, scope=None) -> "Thread":
        self.events.append(
            Event(next(self._counter), self.tid, kind, loc, value, scope)
        )
        return self

    def w(self, loc: str, value: int) -> "Thread":
        """Write; PM iff the location name starts with 'p'."""
        kind = EventKind.W if loc.startswith("p") else EventKind.WV
        return self._add(kind, loc, value)

    def r(self, loc: str) -> "Thread":
        return self._add(EventKind.R, loc)

    def ofence(self) -> "Thread":
        return self._add(EventKind.OFENCE)

    def dfence(self) -> "Thread":
        return self._add(EventKind.DFENCE)

    def pacq(self, loc: str, scope: Scope = Scope.BLOCK) -> "Thread":
        return self._add(EventKind.PACQ, loc, 0, scope)

    def prel(self, loc: str, value: int, scope: Scope = Scope.BLOCK) -> "Thread":
        return self._add(EventKind.PREL, loc, value, scope)


class LitmusProgram:
    """A multi-threaded litmus program with a block assignment."""

    def __init__(self, name: str = "litmus") -> None:
        self.name = name
        self._counter = itertools.count()
        self.threads: List[Thread] = []

    def thread(self, block: int = 0) -> Thread:
        thread = Thread(len(self.threads), block, self._counter)
        self.threads.append(thread)
        return thread

    def block_of(self, tid: int) -> int:
        return self.threads[tid].block

    def scope_covers(self, scope: Scope, tid_a: int, tid_b: int) -> bool:
        """Whether *scope* includes both threads (Box 2's "sufficient
        scope that includes both threads")."""
        if scope in (Scope.DEVICE, Scope.SYSTEM):
            return True
        return self.block_of(tid_a) == self.block_of(tid_b)

    def events(self) -> List[Event]:
        return [event for thread in self.threads for event in thread.events]

    def persists(self) -> List[Event]:
        return [event for event in self.events() if event.is_persist]

    def releases(self) -> List[Event]:
        return [e for e in self.events() if e.kind is EventKind.PREL]

    def acquires(self) -> List[Event]:
        return [e for e in self.events() if e.kind is EventKind.PACQ]

    def validate(self) -> "LitmusProgram":
        if not self.threads:
            raise LitmusError("litmus program has no threads")
        for rel in self.releases():
            if rel.loc is None:
                raise LitmusError("release without a location")
        return self

    def op_count(self) -> int:
        """Total number of operations (the shrinker's size metric)."""
        return sum(len(thread.events) for thread in self.threads)

    # ------------------------------------------------------------------
    # serialization (programs ride inside ScenarioJob specs)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON form; :meth:`from_json` rebuilds an equivalent
        program (event ids are reassigned thread-by-thread, which leaves
        every relation unchanged — ids are only internal names)."""
        return {
            "name": self.name,
            "threads": [
                {
                    "block": thread.block,
                    "events": [
                        {
                            "kind": event.kind.name,
                            "loc": event.loc,
                            "value": event.value,
                            "scope": (
                                event.scope.value
                                if event.scope is not None
                                else None
                            ),
                        }
                        for event in thread.events
                    ],
                }
                for thread in self.threads
            ],
        }

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "LitmusProgram":
        program = LitmusProgram(data.get("name", "litmus"))
        for tdata in data["threads"]:
            thread = program.thread(block=tdata["block"])
            for edata in tdata["events"]:
                scope = (
                    Scope(edata["scope"])
                    if edata.get("scope") is not None
                    else None
                )
                thread._add(
                    EventKind[edata["kind"]],
                    loc=edata.get("loc"),
                    value=edata.get("value", 0),
                    scope=scope,
                )
        return program.validate()


#: A synchronization witness: which release each acquire reads from.
ReadsFrom = Dict[int, Optional[int]]  # acquire eid -> release eid (or None)


def all_reads_from(program: LitmusProgram) -> List[ReadsFrom]:
    """Enumerate every way the program's acquires could pair with same-
    location releases (or observe none).  Scope filtering happens during
    pmo construction; this is the raw combinatorial space."""
    acquires = program.acquires()
    options: List[List[Tuple[int, Optional[int]]]] = []
    for acq in acquires:
        candidates: List[Optional[int]] = [None]
        candidates += [
            rel.eid for rel in program.releases() if rel.loc == acq.loc
        ]
        options.append([(acq.eid, c) for c in candidates])
    witnesses: List[ReadsFrom] = []
    for combo in itertools.product(*options) if options else [()]:
        witnesses.append(dict(combo))
    return witnesses

"""Executable formal model of SBRP (Boxes 1 and 2 of the paper).

The paper specifies SBRP axiomatically: program order (``po``), volatile
memory order (``vmo``), and persist memory order (``pmo``), with two
derivation rules (intra-thread via ``oFence``; inter-thread via scoped
``pRel``/``pAcq`` pairs) plus transitivity.  This subpackage makes the
specification executable:

* :mod:`~repro.formal.events` — event vocabulary and litmus programs,
* :mod:`~repro.formal.relations` — builds po / vmo / pmo as explicit
  relations (networkx digraphs) for a given execution witness,
* :mod:`~repro.formal.crash_states` — enumerates every crash image the
  model permits (downward-closed cuts of the pmo DAG),
* :mod:`~repro.formal.litmus` — a litmus-test harness with a library of
  tests covering the paper's examples (message passing, scope
  mismatches, transitivity, dFence), and
* :mod:`~repro.formal.bridge` — runs litmus programs on the timing
  simulator and checks the observed durable states fall within the set
  the axiomatic model allows (model validation).
"""

from repro.formal.events import Event, EventKind, LitmusProgram, Thread
from repro.formal.relations import ExecutionWitness, build_pmo, build_po, build_vmo
from repro.formal.crash_states import allowed_crash_images
from repro.formal.litmus import LITMUS_TESTS, LitmusTest, run_litmus

__all__ = [
    "Event",
    "EventKind",
    "ExecutionWitness",
    "LITMUS_TESTS",
    "LitmusProgram",
    "LitmusTest",
    "Thread",
    "allowed_crash_images",
    "build_pmo",
    "build_po",
    "build_vmo",
    "run_litmus",
]

"""Scoped-persistency-bug detector (Section 5.3).

Given a litmus program, reports release/acquire pairs whose scope does
not cover both threads: the programmer expressed a synchronization
intent (same location, observable pairing) that the persistency model
will NOT turn into a pmo edge — the exact bug class of Section 5.3.

This is the static analogue of tools like ScoRD (which the paper cites
for the volatile version of these bugs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.formal.events import Event, LitmusProgram
from repro.formal.relations import _narrowest


@dataclass(frozen=True)
class ScopeBugReport:
    """One potentially mis-scoped release/acquire pair."""

    release: Event
    acquire: Event
    reason: str

    def __str__(self) -> str:
        return (
            f"scope bug: {self.release} -> {self.acquire}: {self.reason}"
        )


def find_scope_bugs(program: LitmusProgram) -> List[ScopeBugReport]:
    """Release/acquire pairs that can pair by location but whose scope
    leaves them without any pmo guarantee."""
    reports: List[ScopeBugReport] = []
    for rel in program.releases():
        for acq in program.acquires():
            if rel.loc != acq.loc or rel.tid == acq.tid:
                continue
            scope = _narrowest(rel, acq)
            if not program.scope_covers(scope, rel.tid, acq.tid):
                reports.append(
                    ScopeBugReport(
                        release=rel,
                        acquire=acq,
                        reason=(
                            f"{scope.value}-scope pairing between thread "
                            f"{rel.tid} (block {program.block_of(rel.tid)}) "
                            f"and thread {acq.tid} (block "
                            f"{program.block_of(acq.tid)}) creates no "
                            "inter-thread PMO"
                        ),
                    )
                )
    return reports


def assert_scope_clean(program: LitmusProgram) -> None:
    """Raise ``AssertionError`` listing every detected scope bug."""
    bugs = find_scope_bugs(program)
    if bugs:
        raise AssertionError("\n".join(str(b) for b in bugs))

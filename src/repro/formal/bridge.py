"""Model validation: run litmus programs on the timing simulator.

Each litmus thread becomes one warp (leader lane active); the program's
crash images observed from the simulator's persist log at every instant
must be a subset of what the axiomatic model allows — if the simulator
ever produces an image the model forbids, the hardware implementation
violates its own specification.

:func:`simulate_program` is the general entry point used by the
conformance checker (:mod:`repro.check`): it returns not just the
deduplicated crash images but the *observed execution* — which release
each acquire actually read, when each dFence completed and what was
durable at that instant, and the final post-drain image — so the
differential oracle can check the durability obligations that depend on
the witness, not only unconstrained downward closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.config import ModelName, Scope, SystemConfig, small_system
from repro.formal.events import EventKind, LitmusProgram
from repro.formal.litmus import LitmusTest, run_litmus
from repro.system import GPUSystem

#: Word spacing between litmus locations.  One cache line apart, so each
#: location gets its own persist record and (with the default two-
#: partition memory system) consecutive locations land on *different*
#: NVM partitions — exactly the layout where acceptance-order bugs show.
LOC_STRIDE = 128


@dataclass
class SimulationObservation:
    """Everything one simulator run of a litmus program revealed."""

    #: Distinct durable PM images in order of first appearance, with the
    #: earliest time each was observed.
    images: List[Tuple[float, Dict[str, int]]] = field(default_factory=list)
    #: The post-``sync()`` image: every buffered persist has drained.
    final_image: Dict[str, int] = field(default_factory=dict)
    #: dFence eid -> (completion time, durable image at that instant).
    dfence_images: Dict[int, Tuple[float, Dict[str, int]]] = field(
        default_factory=dict
    )
    #: Observed witness: acquire eid -> eid of the release it read (by
    #: flag value), or None when the value matched no known release.
    reads_from: Dict[int, Optional[int]] = field(default_factory=dict)
    #: Simulated completion time of the run.
    end: float = 0.0

    def image_dicts(self) -> List[Dict[str, int]]:
        return [image for _, image in self.images]


def base_config(
    program: LitmusProgram, model: ModelName = ModelName.SBRP
) -> SystemConfig:
    """The default shrunk system for a litmus program: one SM per block
    (at least two) and enough warp slots for the widest block."""
    blocks = sorted({t.block for t in program.threads})
    widest = max(
        sum(1 for t in program.threads if t.block == b) for b in blocks
    )
    return small_system(
        model, num_sms=max(2, len(blocks)), threads_per_block=32 * max(2, widest)
    )


def simulate_program(
    program: LitmusProgram,
    model: ModelName = ModelName.SBRP,
    config: Optional[SystemConfig] = None,
    crash_points: int = 64,
    faults: Optional[Any] = None,
    model_factory: Optional[Callable[..., Any]] = None,
    thread_order: Optional[Sequence[int]] = None,
) -> SimulationObservation:
    """Run *program* on the timing simulator and observe its execution.

    *config* overrides the default shrunk system (the conformance
    enumerator sweeps drain policies and WPQ congestion this way).
    *model_factory* builds the persistency model instead of the config's
    registered one — the mutation-teeth hook.  *thread_order* permutes
    the warp assignment of threads within each block (a bounded
    scheduling perturbation); it lists thread ids in issue-slot order.
    """
    program.validate()
    blocks = sorted({t.block for t in program.threads})
    if config is None:
        config = base_config(program, model)
    system = GPUSystem(config, faults=faults, model_factory=model_factory)

    locations = sorted(
        {e.loc for e in program.events() if e.loc is not None}
    )
    pm_region = system.pm_create("litmus.pm", LOC_STRIDE * max(1, len(locations)))
    vol_region = system.malloc(LOC_STRIDE * max(1, len(locations)))
    addr: Dict[str, int] = {}
    for index, loc in enumerate(locations):
        region = pm_region if loc.startswith("p") else vol_region
        addr[loc] = region.base + LOC_STRIDE * index

    # Flag value -> release eid, for reconstructing the witness from the
    # value each acquire spun up on.  Generated programs keep values
    # unique per location, so the mapping is unambiguous there.
    release_of_value: Dict[Tuple[str, int], int] = {}
    for rel in program.releases():
        release_of_value.setdefault((rel.loc, rel.value), rel.eid)

    order = list(thread_order) if thread_order is not None else None
    observation = SimulationObservation()

    def thread_rank(tid: int) -> int:
        if order is None:
            return tid
        try:
            return order.index(tid)
        except ValueError:
            return len(order) + tid

    def kernel(w):
        mine = [
            t
            for t in program.threads
            if t.block == blocks[w.block_id % len(blocks)]
        ]
        mine.sort(key=lambda t: thread_rank(t.tid))
        if w.warp_in_block >= len(mine):
            return
        thread = mine[w.warp_in_block]
        leader = w.lane == 0
        for event in thread.events:
            if event.kind in (EventKind.W, EventKind.WV):
                yield w.st(addr[event.loc], event.value, mask=leader)
            elif event.kind is EventKind.R:
                yield w.ld(addr[event.loc], mask=leader)
            elif event.kind is EventKind.OFENCE:
                yield w.ofence()
            elif event.kind is EventKind.DFENCE:
                yield w.dfence()
                now = system.gpu.engine.now
                observation.dfence_images[event.eid] = (now, {})
            elif event.kind is EventKind.PREL:
                yield w.prel(addr[event.loc], event.value, event.scope)
            elif event.kind is EventKind.PACQ:
                while True:
                    got = yield w.pacq(addr[event.loc], event.scope)
                    if got != 0:
                        break
                observation.reads_from[event.eid] = release_of_value.get(
                    (event.loc, got)
                )

    system.launch(kernel, grid_blocks=len(blocks))
    system.sync()

    end = system.gpu.engine.now
    observation.end = end

    def named_image(t: float) -> Dict[str, int]:
        image = system.gpu.subsystem.crash_image(t)
        return {
            loc: image.get(a, 0)
            for loc, a in addr.items()
            if loc.startswith("p")
        }

    # Every instant where the durable image can change, plus an even
    # sampling (the boundaries alone would miss nothing, but the spaced
    # points keep the historical behavior for coarse sweeps).
    times = set(system.gpu.subsystem.persist_log.boundary_times(end=end))
    times.update(end * i / crash_points for i in range(crash_points + 1))
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    for t in sorted(times):
        named = named_image(t)
        key = tuple(sorted(named.items()))
        if key not in seen:
            seen.add(key)
            observation.images.append((t, named))

    observation.final_image = named_image(end)
    # A dFence's durability obligation binds at its completion instant:
    # everything the issuing thread persisted before it must already be
    # durable *then* (later images only grow).
    observation.dfence_images = {
        eid: (t, named_image(t))
        for eid, (t, _) in observation.dfence_images.items()
    }
    return observation


def simulate_litmus(
    test: LitmusTest,
    model: ModelName = ModelName.SBRP,
    crash_points: int = 64,
    faults: Optional[Any] = None,
) -> List[Dict[str, int]]:
    """Run the litmus program on the simulator; return the distinct
    durable images observed at every persist boundary plus
    *crash_points* evenly spaced instants.

    *faults* (a :class:`repro.faults.FaultInjector`) lets the fault
    campaign run litmus programs on deliberately broken hardware and
    check whether the formal oracle notices."""
    program = test.build().validate()
    observation = simulate_program(
        program, model=model, crash_points=crash_points, faults=faults
    )
    return observation.image_dicts()


def validate_against_model(
    test: LitmusTest,
    model: ModelName = ModelName.SBRP,
    faults: Optional[Any] = None,
) -> List[Dict[str, int]]:
    """Return simulator-observed images NOT allowed by the axiomatic
    model (empty = the implementation refines its specification).

    The simulator samples crash points across the whole execution —
    including before any dFence completes — so the comparison uses the
    unconstrained allowed set (no completed-dFence assumption).
    """
    unconstrained = LitmusTest(
        name=test.name, build=test.build, forbidden=(), required=()
    )
    allowed = run_litmus(unconstrained).images
    allowed_keys = {tuple(sorted(img.items())) for img in allowed}

    def normalize(img: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted((k, v) for k, v in img.items() if v != 0))

    allowed_norm = {normalize(dict(k)) for k in map(dict, allowed_keys)}
    observed = simulate_litmus(test, model, faults=faults)
    return [img for img in observed if normalize(img) not in allowed_norm]

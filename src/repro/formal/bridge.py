"""Model validation: run litmus programs on the timing simulator.

Each litmus thread becomes one warp (leader lane active); the program's
crash images observed from the simulator's persist log at every instant
must be a subset of what the axiomatic model allows — if the simulator
ever produces an image the model forbids, the hardware implementation
violates its own specification.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.config import ModelName, Scope, small_system
from repro.formal.events import EventKind, LitmusProgram
from repro.formal.litmus import LitmusTest, run_litmus
from repro.system import GPUSystem


def simulate_litmus(
    test: LitmusTest,
    model: ModelName = ModelName.SBRP,
    crash_points: int = 64,
    faults: Optional[Any] = None,
) -> List[Dict[str, int]]:
    """Run the litmus program on the simulator; return the distinct
    durable images observed at every persist boundary plus
    *crash_points* evenly spaced instants.

    *faults* (a :class:`repro.faults.FaultInjector`) lets the fault
    campaign run litmus programs on deliberately broken hardware and
    check whether the formal oracle notices."""
    program = test.build().validate()
    blocks = sorted({t.block for t in program.threads})
    # All threads of a block share a threadblock; each thread is one
    # warp.  Threads/block is sized to fit the widest block.
    widest = max(
        sum(1 for t in program.threads if t.block == b) for b in blocks
    )
    config = small_system(
        model, num_sms=max(2, len(blocks)), threads_per_block=32 * max(2, widest)
    )
    system = GPUSystem(config, faults=faults)

    locations = sorted(
        {e.loc for e in program.events() if e.loc is not None}
    )
    pm_region = system.pm_create("litmus.pm", 128 * max(1, len(locations)))
    vol_region = system.malloc(128 * max(1, len(locations)))
    addr: Dict[str, int] = {}
    for index, loc in enumerate(locations):
        region = pm_region if loc.startswith("p") else vol_region
        addr[loc] = region.base + 128 * index

    def kernel(w):
        mine = [
            t
            for t in program.threads
            if t.block == blocks[w.block_id % len(blocks)]
        ]
        if w.warp_in_block >= len(mine):
            return
        thread = mine[w.warp_in_block]
        leader = w.lane == 0
        for event in thread.events:
            if event.kind in (EventKind.W, EventKind.WV):
                yield w.st(addr[event.loc], event.value, mask=leader)
            elif event.kind is EventKind.R:
                yield w.ld(addr[event.loc], mask=leader)
            elif event.kind is EventKind.OFENCE:
                yield w.ofence()
            elif event.kind is EventKind.DFENCE:
                yield w.dfence()
            elif event.kind is EventKind.PREL:
                yield w.prel(addr[event.loc], event.value, event.scope)
            elif event.kind is EventKind.PACQ:
                while True:
                    got = yield w.pacq(addr[event.loc], event.scope)
                    if got != 0:
                        break

    system.launch(kernel, grid_blocks=len(blocks))
    system.sync()

    end = system.now
    # Every instant where the durable image can change, plus an even
    # sampling (the boundaries alone would miss nothing, but the spaced
    # points keep the historical behavior for coarse sweeps).
    times = set(system.gpu.subsystem.persist_log.boundary_times(end=end))
    times.update(end * i / crash_points for i in range(crash_points + 1))
    images: List[Dict[str, int]] = []
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    for t in sorted(times):
        image = system.gpu.subsystem.crash_image(t)
        named = {
            loc: image.get(a, 0) for loc, a in addr.items() if loc.startswith("p")
        }
        key = tuple(sorted(named.items()))
        if key not in seen:
            seen.add(key)
            images.append(named)
    return images


def validate_against_model(
    test: LitmusTest,
    model: ModelName = ModelName.SBRP,
    faults: Optional[Any] = None,
) -> List[Dict[str, int]]:
    """Return simulator-observed images NOT allowed by the axiomatic
    model (empty = the implementation refines its specification).

    The simulator samples crash points across the whole execution —
    including before any dFence completes — so the comparison uses the
    unconstrained allowed set (no completed-dFence assumption).
    """
    unconstrained = LitmusTest(
        name=test.name, build=test.build, forbidden=(), required=()
    )
    allowed = run_litmus(unconstrained).images
    allowed_keys = {tuple(sorted(img.items())) for img in allowed}

    def normalize(img: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted((k, v) for k, v in img.items() if v != 0))

    allowed_norm = {normalize(dict(k)) for k in map(dict, allowed_keys)}
    observed = simulate_litmus(test, model, faults=faults)
    return [img for img in observed if normalize(img) not in allowed_norm]

"""Configuration dataclasses for the simulated system.

Defaults follow Table 1 of the paper:

=================  =======================================
# of SMs           30
Clock speed        1365 MHz
L1 cache           64 KB/SM
L2 cache           3 MB
GDDR               336 GB/s, 100 ns
NVM                84 GB/s read / 42 GB/s write, 300 ns
PCIe               28 GB/s, 300 ns
Window size        6
Threads/block      1024
=================  =======================================

Tests and examples use :func:`small_system` which shrinks the GPU (fewer
SMs, smaller caches) while preserving every ratio that matters for the
persistency-model comparison.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional

from repro.common.errors import ConfigError
from repro.common.retry import SCHEDULE_EXPONENTIAL, RetryPolicy
from repro.common.units import ns_to_cycles


def stable_hash(obj: Any) -> str:
    """SHA-256 of the canonical JSON encoding of *obj*.

    Canonical means sorted keys, no whitespace, and enums collapsed to
    their values — so the same logical object always hashes the same,
    across processes and interpreter runs (unlike ``hash()``).
    """

    def _plain(value: Any) -> Any:
        if isinstance(value, enum.Enum):
            return value.value
        if isinstance(value, dict):
            return {k: _plain(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [_plain(v) for v in value]
        return value

    text = json.dumps(_plain(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class Scope(enum.Enum):
    """Synchronization scopes of the CUDA hierarchy (Section 2)."""

    BLOCK = "block"
    DEVICE = "device"
    SYSTEM = "system"

    def includes(self, other: "Scope") -> bool:
        """True when this scope is at least as wide as *other*."""
        order = {Scope.BLOCK: 0, Scope.DEVICE: 1, Scope.SYSTEM: 2}
        return order[self] >= order[other]


class ModelName(enum.Enum):
    """The three persistency models evaluated in Section 7."""

    #: GPM's implicit model: a system-scope fence acting as an epoch
    #: barrier for *both* volatile and persistent writes (unbuffered).
    GPM = "gpm"
    #: Enhanced epoch model: the barrier only affects writes to PM.
    EPOCH = "epoch"
    #: The paper's contribution: Scoped Buffered Release Persistency.
    SBRP = "sbrp"


class PMPlacement(enum.Enum):
    """Where the NVM sits relative to the GPU (Section 3)."""

    #: NVM attached to the CPU, reached over PCIe (Figure 1a).
    FAR = "far"
    #: NVM on-board the GPU next to GDDR (Figure 1b).
    NEAR = "near"


class DrainPolicy(enum.Enum):
    """When SBRP's persist buffer flushes dirty PM lines (Section 6.2)."""

    #: Flush as soon as ordering constraints allow (CPU-style).
    EAGER = "eager"
    #: Flush only at ordering operations or under capacity pressure.
    LAZY = "lazy"
    #: Keep a fixed number of persists outstanding (the paper's default).
    WINDOW = "window"


@dataclass(frozen=True)
class GPUConfig:
    """Core and cache geometry of the simulated GPU."""

    num_sms: int = 30
    warp_size: int = 32
    max_warps_per_sm: int = 32
    threads_per_block: int = 1024
    line_size: int = 128
    l1_size: int = 64 * 1024
    l1_assoc: int = 4
    l2_size: int = 3 * 1024 * 1024
    l1_hit_latency: int = 28
    l2_latency: int = 190
    issue_width: int = 1
    spin_backoff_cycles: int = 40

    @property
    def warps_per_block(self) -> int:
        return self.threads_per_block // self.warp_size

    @property
    def l1_lines(self) -> int:
        return self.l1_size // self.line_size

    def validate(self) -> None:
        if self.threads_per_block % self.warp_size:
            raise ConfigError("threads_per_block must be a warp multiple")
        if self.warps_per_block > self.max_warps_per_sm:
            raise ConfigError(
                "a threadblock must fit in one SM "
                f"({self.warps_per_block} warps > {self.max_warps_per_sm})"
            )
        if self.l1_size % (self.line_size * self.l1_assoc):
            raise ConfigError("L1 size must divide into sets of full ways")


@dataclass(frozen=True)
class MemoryConfig:
    """Latency/bandwidth parameters of the memory system (Table 1)."""

    placement: PMPlacement = PMPlacement.FAR
    gddr_bw_gbps: float = 336.0
    gddr_latency_ns: float = 100.0
    nvm_read_bw_gbps: float = 84.0
    nvm_write_bw_gbps: float = 42.0
    nvm_latency_ns: float = 300.0
    pcie_bw_gbps: float = 28.0
    pcie_latency_ns: float = 300.0
    #: Multiplier applied to both NVM bandwidths (Figure 10b sweeps this).
    nvm_bw_scale: float = 1.0
    #: Enhanced ADR: persists are durable once they reach the host LLC,
    #: removing NVM device latency from the persist path (Figure 9).
    #: Only meaningful for PM-far.
    eadr: bool = False
    #: ADR write-pending-queue entries per memory controller.
    wpq_entries: int = 16
    num_partitions: int = 2

    @property
    def gddr_latency(self) -> int:
        return ns_to_cycles(self.gddr_latency_ns)

    @property
    def nvm_latency(self) -> int:
        return ns_to_cycles(self.nvm_latency_ns)

    @property
    def pcie_latency(self) -> int:
        return ns_to_cycles(self.pcie_latency_ns)

    def validate(self) -> None:
        if self.nvm_bw_scale <= 0:
            raise ConfigError("nvm_bw_scale must be positive")
        if self.eadr and self.placement is not PMPlacement.FAR:
            raise ConfigError("eADR only applies to PM-far systems")
        if self.wpq_entries < 1:
            raise ConfigError("WPQ needs at least one entry")


@dataclass(frozen=True)
class SBRPConfig:
    """Knobs of the SBRP hardware implementation (Section 6)."""

    #: Persist-buffer entries as a fraction of L1 lines (Figure 10a).
    pb_coverage: float = 0.5
    #: Outstanding-persist target of the window policy (Figure 10c).
    window: int = 6
    drain_policy: DrainPolicy = DrainPolicy.WINDOW
    #: Treat every block-scope pAcq/pRel as device scope.  Used by the
    #: Figure 7 breakdown to isolate how much of SBRP's win comes from
    #: scopes versus buffering.
    demote_block_scope: bool = False

    def pb_entries(self, gpu: GPUConfig) -> int:
        return max(1, int(gpu.l1_lines * self.pb_coverage))

    def validate(self) -> None:
        if not 0 < self.pb_coverage <= 1:
            raise ConfigError("pb_coverage must be in (0, 1]")
        if self.window < 1:
            raise ConfigError("window must be at least 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Runtime resilience knobs (chaos subsystem, DESIGN §13).

    Disabled by default: a stock simulation behaves exactly as before
    this config existed.  When enabled, transient NVM errors retry on a
    bounded exponential-backoff schedule instead of the device-level
    linear one, and occupancy watermarks drive the serve scheduler's
    degraded-mode state machine (path shedding → throttling → typed
    :class:`~repro.common.errors.DegradedModeError` rejections).
    """

    enabled: bool = False
    #: Transient-error retry budget (beyond the device default of 5).
    max_retries: int = 8
    backoff_base_cycles: float = 200.0
    backoff_mult: float = 2.0
    backoff_cap_cycles: float = 3200.0
    #: Occupancy fraction (WPQ or persist buffer) entering degraded mode.
    #: Acceptance backpressure keeps WPQ occupancy at or below 1.0, so
    #: watermarks are fractions of capacity.
    high_watermark: float = 0.6
    #: Occupancy fraction at which degraded mode exits (hysteresis).
    low_watermark: float = 0.2
    #: Occupancy fraction above which new batches are rejected outright.
    reject_watermark: float = 0.97
    #: Client backoff charged per rejection before re-probing occupancy.
    reject_backoff_cycles: float = 2000.0
    #: Rejections tolerated per batch before DegradedModeError escapes.
    max_rejects: int = 8

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            base_cycles=self.backoff_base_cycles,
            mult=self.backoff_mult,
            cap_cycles=self.backoff_cap_cycles,
            schedule=SCHEDULE_EXPONENTIAL,
        )

    def validate(self) -> None:
        if self.max_retries < 0 or self.max_rejects < 0:
            raise ConfigError("resilience budgets must be non-negative")
        if self.high_watermark <= self.low_watermark:
            raise ConfigError("high_watermark must exceed low_watermark")
        if self.reject_watermark < self.high_watermark:
            raise ConfigError("reject_watermark must be >= high_watermark")
        if self.reject_backoff_cycles <= 0:
            raise ConfigError("reject_backoff_cycles must be positive")
        self.retry_policy()  # validates the backoff fields


#: Timing-core implementations selectable via ``SystemConfig.engine``.
#: ``"fast"`` is the flattened-queue/batched-warp core; ``"reference"``
#: is the original straight-line implementation retained as the oracle
#: for the differential harness (``repro.perfcore``).  Both must produce
#: bit-identical results; the harness enforces it.
ENGINE_KINDS = ("reference", "fast")


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated scenario."""

    model: ModelName = ModelName.SBRP
    gpu: GPUConfig = field(default_factory=GPUConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    sbrp: SBRPConfig = field(default_factory=SBRPConfig)
    seed: int = 0
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Timing-core selection; see :data:`ENGINE_KINDS`.  Participates in
    #: :meth:`cache_key` so reference and fast runs of the same scenario
    #: never dedupe to one cached result.
    engine: str = "fast"
    #: Batched warp stepping (``engine="fast"`` only): the SM replays
    #: runs of its own issue events inline in one event pop instead of a
    #: schedule/pop round trip per warp step.  Bit-exact with the
    #: unbatched fast core — the ``repro.perfcore`` harness diffs both
    #: settings against the reference engine.  Ignored (and harmless)
    #: under ``engine="reference"``.
    batch_warps: bool = True

    def validate(self) -> "SystemConfig":
        self.gpu.validate()
        self.memory.validate()
        self.sbrp.validate()
        self.resilience.validate()
        if self.engine not in ENGINE_KINDS:
            raise ConfigError(
                f"engine must be one of {ENGINE_KINDS}, got {self.engine!r}"
            )
        if not isinstance(self.batch_warps, bool):
            raise ConfigError(
                f"batch_warps must be a bool, got {self.batch_warps!r}"
            )
        return self

    @property
    def label(self) -> str:
        """Paper-style scenario name, e.g. ``SBRP-near`` or ``GPM``."""
        if self.model is ModelName.GPM:
            return "GPM"
        suffix = "near" if self.memory.placement is PMPlacement.NEAR else "far"
        return f"{self.model.value.upper()}-{suffix}"

    def with_model(self, model: ModelName) -> "SystemConfig":
        return replace(self, model=model)

    def with_placement(self, placement: PMPlacement) -> "SystemConfig":
        return replace(self, memory=replace(self.memory, placement=placement))

    # ------------------------------------------------------------------
    # serialization / content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form: nested dicts with enums as their values."""
        raw = asdict(self)
        raw["model"] = self.model.value
        raw["memory"]["placement"] = self.memory.placement.value
        raw["sbrp"]["drain_policy"] = self.sbrp.drain_policy.value
        return raw

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        memory = dict(data["memory"])
        memory["placement"] = PMPlacement(memory["placement"])
        sbrp = dict(data["sbrp"])
        sbrp["drain_policy"] = DrainPolicy(sbrp["drain_policy"])
        resilience = ResilienceConfig(**data.get("resilience", {}))
        return SystemConfig(
            model=ModelName(data["model"]),
            gpu=GPUConfig(**data["gpu"]),
            memory=MemoryConfig(**memory),
            sbrp=SBRPConfig(**sbrp),
            seed=data.get("seed", 0),
            resilience=resilience,
            engine=data.get("engine", "fast"),
            batch_warps=data.get("batch_warps", True),
        ).validate()

    def cache_key(self) -> str:
        """Stable content hash of the full configuration.

        Every field of every sub-config participates, so the key changes
        whenever any timing-relevant parameter changes and two configs
        with equal fields always share a key.
        """
        return stable_hash(self.to_dict())


def paper_system(
    model: ModelName = ModelName.SBRP,
    placement: PMPlacement = PMPlacement.FAR,
    **memory_overrides: float,
) -> SystemConfig:
    """The full Table 1 configuration."""
    memory = MemoryConfig(placement=placement, **memory_overrides)
    return SystemConfig(model=model, memory=memory).validate()


def scale_memory_to_sms(memory: MemoryConfig, num_sms: int) -> MemoryConfig:
    """Scale device bandwidths so per-SM shares match the 30-SM machine.

    A shrunk GPU with full Table 1 bandwidths would give each SM an
    outsized share of the NVM/PCIe pipes and distort every model
    comparison; scaling preserves the paper's compute-to-memory balance.
    """
    factor = num_sms / GPUConfig().num_sms
    return replace(
        memory,
        gddr_bw_gbps=memory.gddr_bw_gbps * factor,
        nvm_read_bw_gbps=memory.nvm_read_bw_gbps * factor,
        nvm_write_bw_gbps=memory.nvm_write_bw_gbps * factor,
        pcie_bw_gbps=memory.pcie_bw_gbps * factor,
    )


def small_system(
    model: ModelName = ModelName.SBRP,
    placement: PMPlacement = PMPlacement.FAR,
    num_sms: int = 4,
    threads_per_block: int = 128,
    l1_size: int = 16 * 1024,
    memory: Optional[MemoryConfig] = None,
    sbrp: Optional[SBRPConfig] = None,
    scale_bandwidth: bool = True,
) -> SystemConfig:
    """A shrunk configuration for fast tests and examples.

    The L1, SM count, block size and memory bandwidths shrink together so
    that occupancy, cache pressure and the compute-to-memory balance stay
    representative of the full Table 1 machine.
    """
    gpu = GPUConfig(
        num_sms=num_sms,
        threads_per_block=threads_per_block,
        max_warps_per_sm=max(4, threads_per_block // 32),
        l1_size=l1_size,
        l2_size=256 * 1024,
    )
    mem = memory if memory is not None else MemoryConfig(placement=placement)
    if scale_bandwidth:
        mem = scale_memory_to_sms(mem, num_sms)
    return SystemConfig(
        model=model,
        gpu=gpu,
        memory=mem,
        sbrp=sbrp or SBRPConfig(),
    ).validate()

"""Fixed-width bitmasks used by the SBRP hardware structures.

The paper's persist buffer keeps a 32-bit *Warp BM* per entry and three
per-SM masks (ODM, EDM, FSM) sized to the maximum number of resident
warps.  :class:`WarpMask` wraps an integer with bounds-checked bit
operations so the hardware code reads like the paper's description.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class WarpMask:
    """A fixed-width bitmask over warp slots.

    Bit *i* set means "warp slot *i* participates".  Instances are
    mutable; the SBRP masks (ODM/EDM/FSM) mutate in place, while
    per-entry Warp BMs are typically built once and OR-ed.
    """

    __slots__ = ("width", "_bits")

    def __init__(self, width: int = 32, bits: int = 0) -> None:
        if width <= 0:
            raise ValueError(f"mask width must be positive, got {width}")
        limit = (1 << width) - 1
        if bits & ~limit:
            raise ValueError(f"bits {bits:#x} exceed mask width {width}")
        self.width = width
        self._bits = bits

    @classmethod
    def from_warps(cls, warps: Iterable[int], width: int = 32) -> "WarpMask":
        """Build a mask with the given warp-slot indices set."""
        mask = cls(width)
        for warp in warps:
            mask.set(warp)
        return mask

    @classmethod
    def single(cls, warp: int, width: int = 32) -> "WarpMask":
        """Build a mask with exactly one warp-slot bit set."""
        mask = cls(width)
        mask.set(warp)
        return mask

    @property
    def bits(self) -> int:
        return self._bits

    def set(self, warp: int) -> None:
        self._check(warp)
        self._bits |= 1 << warp

    def clear(self, warp: int) -> None:
        self._check(warp)
        self._bits &= ~(1 << warp)

    def test(self, warp: int) -> bool:
        self._check(warp)
        return bool(self._bits & (1 << warp))

    def or_with(self, other: "WarpMask") -> None:
        """In-place OR (the paper's 'bitwise OR into FSM' operation)."""
        self._bits |= other._bits & ((1 << self.width) - 1)

    def and_nonzero(self, other: "WarpMask") -> bool:
        """True when the masks share any set bit (the paper's AND test)."""
        return bool(self._bits & other._bits)

    def clear_mask(self, other: "WarpMask") -> None:
        """Clear every bit set in *other*."""
        self._bits &= ~other._bits

    def reset(self) -> None:
        self._bits = 0

    def any(self) -> bool:
        return self._bits != 0

    def count(self) -> int:
        return bin(self._bits).count("1")

    def warps(self) -> Iterator[int]:
        """Iterate the warp-slot indices whose bits are set."""
        bits = self._bits
        warp = 0
        while bits:
            if bits & 1:
                yield warp
            bits >>= 1
            warp += 1

    def copy(self) -> "WarpMask":
        return WarpMask(self.width, self._bits)

    def _check(self, warp: int) -> None:
        if not 0 <= warp < self.width:
            raise IndexError(f"warp slot {warp} out of range [0, {self.width})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WarpMask):
            return NotImplemented
        return self.width == other.width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __bool__(self) -> bool:
        return self.any()

    def __repr__(self) -> str:
        return f"WarpMask(width={self.width}, bits={self._bits:#x})"

"""Deterministic retry-backoff policies.

A :class:`RetryPolicy` is the promoted form of what used to be an ad-hoc
``retry_delay`` formula on :class:`~repro.faults.plans.NVMTransientPlan`:
a frozen, jitter-free description of how long each retry of a failed
operation waits before the next attempt.  Jitter-free matters — every
delay is a pure function of the attempt number, so two runs of the same
scenario inject byte-identical timing and campaign/soak reports stay
byte-identical across worker counts.

Two schedules:

* ``linear`` — attempt *k* waits ``base_cycles * k`` (the legacy
  device-level schedule; its total over *n* failures is the arithmetic
  series ``base * n(n+1)/2`` that ``NVMTransientPlan.retry_delay`` has
  always reported);
* ``exponential`` — attempt *k* waits ``base_cycles * mult**(k-1)``,
  capped at ``cap_cycles`` (the resilience layer's bounded
  retry-with-exponential-backoff).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

SCHEDULE_LINEAR = "linear"
SCHEDULE_EXPONENTIAL = "exponential"

SCHEDULES = (SCHEDULE_LINEAR, SCHEDULE_EXPONENTIAL)


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, deterministic retry schedule (delays in cycles)."""

    #: Failures beyond this budget escalate instead of retrying.
    max_retries: int = 5
    base_cycles: float = 400.0
    #: Exponential growth factor (ignored by the linear schedule).
    mult: float = 2.0
    #: Per-attempt delay ceiling (``inf`` = uncapped).
    cap_cycles: float = float("inf")
    schedule: str = SCHEDULE_LINEAR

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ConfigError(
                f"unknown retry schedule {self.schedule!r}; have {SCHEDULES}"
            )
        if self.max_retries < 0:
            raise ConfigError("retry max_retries must be non-negative")
        if self.base_cycles <= 0:
            raise ConfigError("retry base_cycles must be positive")
        if self.mult < 1:
            raise ConfigError("retry mult must be at least 1")
        if self.cap_cycles <= 0:
            raise ConfigError("retry cap_cycles must be positive")

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (1-based)."""
        if attempt < 1:
            raise ConfigError("retry attempts are 1-based")
        if self.schedule == SCHEDULE_LINEAR:
            raw = self.base_cycles * attempt
        else:
            raw = self.base_cycles * self.mult ** (attempt - 1)
        return min(raw, self.cap_cycles)

    def total_delay(self, fails: int) -> float:
        """Added latency when *fails* consecutive failures all retry."""
        if fails <= 0:
            return 0.0
        if self.schedule == SCHEDULE_LINEAR and self.cap_cycles == float("inf"):
            # Closed form keeps the legacy device-level value bit-exact.
            return self.base_cycles * fails * (fails + 1) / 2
        return float(sum(self.delay(a) for a in range(1, fails + 1)))

    def exhausted(self, fails: int) -> bool:
        """True when *fails* failures exceed the retry budget."""
        return fails > self.max_retries

"""Hierarchical statistics counters.

Every simulator component records events into a shared
:class:`StatsRegistry` under dotted names (``l1.read_miss_pm``,
``nvm.bytes_written`` ...).  The benchmark harness extracts figures from
these counters; tests assert on them to pin down model behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple


class StatsRegistry:
    """A flat map of dotted counter names to numeric values."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount* (creating it at zero)."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Overwrite counter *name*."""
        self._counters[name] = value

    def peak(self, name: str, value: float) -> None:
        """Track the running maximum of *name*.

        The first observation always records, so negative-valued peaks
        work and an unobserved counter is never materialized at zero.
        """
        current = self._counters.get(name)
        if current is None or value > current:
            self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """Return a sub-dictionary of counters under ``prefix.``."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(dotted)
        }

    def merge(self, other: "StatsRegistry") -> None:
        """Accumulate every counter of *other* into this registry."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def snapshot(self) -> Mapping[str, float]:
        """An immutable copy of the current counters."""
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return f"StatsRegistry({len(self._counters)} counters)"


def histogram_summary(
    values: Iterable[float], bounds: Optional[Sequence[float]] = None
) -> Dict[str, float]:
    """p50/p95/p99 digest of raw observations.

    Routes through the shared
    :class:`~repro.metrics.registry.MetricHistogram` so every percentile
    reported anywhere in the repo (stats post-processing, live metrics,
    exported snapshots) uses one bucketing and interpolation scheme.
    """
    from repro.metrics.registry import MetricHistogram

    hist = MetricHistogram(bounds)
    for value in values:
        hist.observe(float(value))
    return hist.summary()

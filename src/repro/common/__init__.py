"""Shared infrastructure: units, configuration, bitmasks, statistics.

Everything in this subpackage is substrate-agnostic plumbing used by the
memory system, the GPU model, and the persistency models.
"""

from repro.common.bitmask import WarpMask
from repro.common.config import (
    DrainPolicy,
    GPUConfig,
    MemoryConfig,
    ModelName,
    PMPlacement,
    SBRPConfig,
    Scope,
    SystemConfig,
    stable_hash,
)
from repro.common.errors import (
    ConfigError,
    PersistencyError,
    ReproError,
    SimulationError,
)
from repro.common.stats import StatsRegistry
from repro.common.units import (
    CLOCK_MHZ,
    bytes_per_cycle,
    cycles_to_ns,
    gbps_to_bytes_per_cycle,
    ns_to_cycles,
)

__all__ = [
    "CLOCK_MHZ",
    "ConfigError",
    "DrainPolicy",
    "GPUConfig",
    "MemoryConfig",
    "ModelName",
    "PMPlacement",
    "PersistencyError",
    "ReproError",
    "SBRPConfig",
    "Scope",
    "SimulationError",
    "StatsRegistry",
    "SystemConfig",
    "WarpMask",
    "bytes_per_cycle",
    "cycles_to_ns",
    "gbps_to_bytes_per_cycle",
    "ns_to_cycles",
    "stable_hash",
]

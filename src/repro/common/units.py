"""Unit conversions between wall-clock quantities and GPU core cycles.

The simulator works exclusively in GPU core cycles.  The paper's Table 1
gives latencies in nanoseconds and bandwidths in GB/s for a 1365 MHz core
clock; these helpers convert both into cycle-domain quantities.
"""

from __future__ import annotations

#: Simulated GPU core clock (Table 1 of the paper).
CLOCK_MHZ = 1365

#: Nanoseconds per GPU core cycle.
NS_PER_CYCLE = 1000.0 / CLOCK_MHZ


def ns_to_cycles(ns: float) -> int:
    """Convert a latency in nanoseconds to (rounded) core cycles."""
    return max(1, round(ns / NS_PER_CYCLE))


def cycles_to_ns(cycles: float) -> float:
    """Convert a cycle count back to nanoseconds."""
    return cycles * NS_PER_CYCLE


def gbps_to_bytes_per_cycle(gbps: float) -> float:
    """Convert a bandwidth in GB/s (10^9 bytes) to bytes per core cycle."""
    bytes_per_second = gbps * 1e9
    cycles_per_second = CLOCK_MHZ * 1e6
    return bytes_per_second / cycles_per_second


def bytes_per_cycle(gbps: float) -> float:
    """Alias of :func:`gbps_to_bytes_per_cycle` for brevity at call sites."""
    return gbps_to_bytes_per_cycle(gbps)

"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an invalid state (engine-level failure)."""


class PersistencyError(ReproError):
    """A persistency-model invariant was violated during simulation."""


class MemoryError_(ReproError):
    """An invalid memory access (bad address, unallocated region)."""


class RecoveryError(ReproError):
    """Post-crash recovery produced an inconsistent data structure."""


class LitmusError(ReproError):
    """A litmus test is malformed or its outcome check failed."""

"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an invalid state (engine-level failure)."""


class LivelockError(SimulationError):
    """The engine processed a bounded number of events without any
    forward progress (no persist flushed, no warp retired).

    Carries the diagnostics needed to tell *which* structure wedged:
    the simulated time, how many idle events elapsed, and a snapshot of
    queue depths (engine event queue plus whatever the device layer
    reports — blocked warps, persist-buffer occupancy).
    """

    def __init__(
        self,
        now: float,
        idle_events: int,
        queue_depths: "dict[str, float] | None" = None,
    ) -> None:
        self.now = now
        self.idle_events = idle_events
        self.queue_depths = dict(queue_depths or {})
        depths = ", ".join(
            f"{name}={value:g}" for name, value in sorted(self.queue_depths.items())
        )
        super().__init__(
            f"no forward progress after {idle_events} events (t={now:.0f}); "
            f"queue depths: {depths or 'unavailable'}"
        )


class PersistencyError(ReproError):
    """A persistency-model invariant was violated during simulation."""


class MemoryError_(ReproError):
    """An invalid memory access (bad address, unallocated region)."""


class RecoveryError(ReproError):
    """Post-crash recovery produced an inconsistent data structure."""


class OracleViolation(RecoveryError):
    """A recovery oracle rejected a post-crash state.

    Raised by :meth:`repro.apps.base.App.oracle_check` (and the formal
    bridge) so fault-campaign classification can tell app-invariant
    violations apart from recovery kernels crashing, by type alone.
    """


class DegradedModeError(ReproError):
    """The resilience layer's admission control rejected work.

    Raised at the serve batch scheduler when occupancy pressure stays
    above the reject watermark for longer than the bounded client
    backoff tolerates.  A typed rejection — never a silent drop — so
    callers can distinguish shed load from lost data.
    """


class LitmusError(ReproError):
    """A litmus test is malformed or its outcome check failed."""


class FaultInjectionError(ReproError):
    """An injected fault escalated into a hard failure (for example, an
    NVM write exhausted its retry budget)."""


class TornPersistError(FaultInjectionError):
    """A torn-persist injection could not be applied coherently (for
    example, a tear requested on an empty or single-word record where
    the plan demands a strict partial write)."""

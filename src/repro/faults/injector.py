"""The fault injector: plan interpretation at the persistence path.

One :class:`FaultInjector` serves one :class:`~repro.system.GPUSystem`
(it carries mutable counters, so never share an instance between
systems).  The memory subsystem and the persistency models consult it at
four points:

* :meth:`persist_delay` — extra latency before the NVM controller
  accepts a write (transient failures with retry/backoff; may escalate
  to :class:`~repro.common.errors.FaultInjectionError`);
* :meth:`transform_accept` — the *actual* media-durability time of a
  record, possibly later than the WPQ acknowledged (drain reordering);
* :meth:`transform_ack` — the time the SM learns about durability
  (delayed acks) or never does (lost acks, ``inf``);
* :meth:`drop_flush` — a drained line that never becomes durable;
* :meth:`torn_records` — crash-time rewriting of accepted records into
  partial (torn) line writes.

All decisions are pure functions of the plan, its seed, and simulation-
deterministic counters — the same run always injects the same faults,
which is what makes campaign reports byte-identical across workers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import FaultInjectionError, TornPersistError
from repro.faults.plans import (
    AckDelayPlan,
    AckLossPlan,
    DrainDropPlan,
    DrainReorderPlan,
    FaultPlan,
    NVMTransientPlan,
    TornPersistPlan,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.subsystem import PersistRecord

_MASK64 = (1 << 64) - 1


def _mix(seed: int, n: int) -> int:
    """SplitMix64-style deterministic hash of (seed, n)."""
    x = (n * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


class FaultInjector:
    """Interprets one :class:`FaultPlan` against one simulated system."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.active = True
        #: Injection tallies (keys are stable; reports embed them).
        self.counts: Dict[str, int] = {}
        self._flushes_seen = 0
        self._drops = 0

    def _bump(self, key: str, by: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + by

    # ------------------------------------------------------------------
    # NVM write path
    # ------------------------------------------------------------------
    def persist_delay(self, seq: int, now: float = 0.0) -> float:
        """Extra cycles before the NVM controller sees persist *seq*.

        *now* is the issue time; point plans ignore it, but chronic
        timeline injectors use it to decide which fault windows apply.
        """
        plan = self.plan
        if not isinstance(plan, NVMTransientPlan):
            return 0.0
        if seq % plan.fail_every != 0:
            return 0.0
        if plan.fails > plan.max_retries:
            self._bump("nvm_retry_exhausted")
            raise FaultInjectionError(
                f"NVM write (persist #{seq}) failed {plan.fails} times, "
                f"exceeding the retry budget of {plan.max_retries}"
            )
        self._bump("nvm_transient_failures", plan.fails)
        return plan.retry_delay

    def transform_accept(self, seq: int, accept: float) -> float:
        """The record's actual durability time (may differ from what the
        WPQ acknowledged)."""
        plan = self.plan
        if isinstance(plan, DrainReorderPlan) and seq % plan.shift_every == 0:
            self._bump("reordered_persists")
            return accept + plan.shift_cycles
        return accept

    def transform_ack(self, seq: int, accept: float, ack: float) -> float:
        """When the issuing SM learns about durability (``inf`` = never)."""
        plan = self.plan
        if isinstance(plan, AckDelayPlan) and seq % plan.every == 0:
            self._bump("delayed_acks")
            return ack + plan.delay_cycles
        if isinstance(plan, AckLossPlan):
            past = seq - plan.lose_after
            if past > 0 and past % plan.lose_every == 0:
                self._bump("lost_acks")
                return float("inf")
        return ack

    # ------------------------------------------------------------------
    # persist-buffer drain path
    # ------------------------------------------------------------------
    def drop_flush(self, sm_id: int, line_addr: int) -> bool:
        """True when this drained line must never become durable."""
        plan = self.plan
        if not isinstance(plan, DrainDropPlan):
            return False
        index = self._flushes_seen
        self._flushes_seen += 1
        if index < plan.drop_offset:
            return False
        if plan.max_drops and self._drops >= plan.max_drops:
            return False
        if (index - plan.drop_offset) % plan.drop_every == 0:
            self._drops += 1
            self._bump("dropped_flushes")
            return True
        return False

    # ------------------------------------------------------------------
    # crash-image path
    # ------------------------------------------------------------------
    def torn_records(
        self, records: List["PersistRecord"], time: float
    ) -> List["PersistRecord"]:
        """Rewrite *records* (accepted by *time*, sorted by acceptance)
        so lines still resident in the WPQ at the crash tear."""
        plan = self.plan
        if not isinstance(plan, TornPersistPlan) or not records:
            return records
        if plan.mode == "last":
            victims = {records[-1].seq}
        else:
            victims = {
                r.seq for r in records if time - r.accept_time <= plan.span_cycles
            }
        out: List["PersistRecord"] = []
        for record in records:
            if record.seq not in victims or time - record.accept_time > plan.span_cycles:
                out.append(record)
                continue
            out.append(self._tear(record))
        return out

    def _tear(self, record: "PersistRecord") -> "PersistRecord":
        from dataclasses import replace

        if not record.words:
            raise TornPersistError(
                f"persist #{record.seq} has no words to tear"
            )
        addrs = sorted(record.words)
        bits = _mix(self.plan.seed, record.seq)
        kept = [a for i, a in enumerate(addrs) if (bits >> (i % 64)) & 1]
        if len(kept) == len(addrs):
            # A tear must be partial: always lose at least one word.
            kept = kept[:-1]
        self._bump("torn_records")
        self._bump("torn_words_dropped", len(addrs) - len(kept))
        return replace(record, words={a: record.words[a] for a in kept})


def build_injector(
    plan: Optional[FaultPlan],
    resilience: "Optional[object]" = None,
    time_offset: float = 0.0,
) -> Optional[FaultInjector]:
    """A fresh injector for *plan*, or None for fault-free runs.

    Timeline plans (the chaos subsystem's chronic fault schedules) get a
    :class:`~repro.chaos.injector.ChronicInjector`, optionally wired to a
    :class:`~repro.common.config.ResilienceConfig` retry policy and a
    global *time_offset* (machine-local time → soak-chain time).
    """
    if plan is None:
        return None
    if plan.kind == "timeline":
        from repro.chaos.injector import ChronicInjector

        return ChronicInjector(plan, resilience=resilience, time_offset=time_offset)
    return FaultInjector(plan)

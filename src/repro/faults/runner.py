"""One fault-injected scenario, end to end.

:func:`run_fault_scenario` is what a :class:`~repro.exec.jobs.ScenarioJob`
in ``mode="faults"`` executes inside its (possibly separate) worker
process:

1. run the app under a :class:`~repro.faults.injector.FaultInjector`
   built from the job's plan, classifying any wedge/escalation by type;
2. if the run completed, crash at **every persist boundary** (each
   instant the durable image can change, deterministically subsampled to
   ``max_crash_points``), recover each image on a clean machine, and
   classify it through the application oracle;
3. fold the per-point classifications into a scenario *outcome*, match
   it against the plan's declared expectation, and attach a minimized
   reproducer spec (one crash point, JSON-loadable as a ScenarioJob)
   for the first inconsistent point.

Everything in the returned :class:`~repro.bench.runner.ScenarioResult`
is deterministic — no wall-clock, no unseeded randomness — which is
what lets campaign reports compare byte-identical across worker counts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bench.runner import ScenarioResult
from repro.common.config import SystemConfig
from repro.common.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.oracles import (
    CONSISTENT,
    FAULT_RAISED,
    HUNG,
    INCONSISTENT_CLASSES,
    RUN_COMPLETED,
    classify_run_exception,
    describe,
    recover_and_classify,
)
from repro.faults.plans import (
    EXPECT_ANY,
    EXPECT_CONSISTENT,
    EXPECT_FAULT_RAISED,
    EXPECT_HUNG,
    EXPECT_INCONSISTENT,
    FaultPlan,
)
from repro.system import GPUSystem

#: Default cap on sampled crash points per scenario.  Boundaries are
#: subsampled deterministically (first + last always kept), so a sweep
#: stays bounded no matter how many persists the app issues.
DEFAULT_MAX_CRASH_POINTS = 24

#: Scenario outcome when at least one crash point was inconsistent.
OUTCOME_INCONSISTENT = "inconsistent"


def _subsample(times: List[float], limit: Optional[int]) -> List[float]:
    """Deterministic subsample keeping endpoints (mirrors
    :meth:`repro.crash.harness.CrashHarness.persist_boundaries`)."""
    if limit is None or limit <= 0 or len(times) <= limit:
        return times
    if limit == 1:
        return [times[-1]]
    step = (len(times) - 1) / (limit - 1)
    picked = {round(i * step) for i in range(limit)}
    return [times[i] for i in sorted(picked)]


def _matches(expect: str, outcome: str) -> bool:
    """Does the scenario *outcome* satisfy the plan's expectation?"""
    if expect == EXPECT_ANY:
        return True
    return {
        EXPECT_CONSISTENT: CONSISTENT,
        EXPECT_INCONSISTENT: OUTCOME_INCONSISTENT,
        EXPECT_HUNG: HUNG,
        EXPECT_FAULT_RAISED: FAULT_RAISED,
    }[expect] == outcome


def run_fault_scenario(
    app_name: str,
    config: SystemConfig,
    app_params: Dict[str, Any],
    fault: Dict[str, Any],
) -> ScenarioResult:
    """Execute one (app, config, fault plan) scenario; see module doc.

    *fault* is ``FaultPlan.to_json()`` plus optional runner knobs:
    ``max_crash_points`` (int) and ``crash_times`` (explicit list — how
    reproducer specs pin a single crash point).
    """
    from repro.apps import build_app

    payload = dict(fault)
    max_crash_points = payload.pop("max_crash_points", DEFAULT_MAX_CRASH_POINTS)
    crash_times = payload.pop("crash_times", None)
    plan = FaultPlan.from_json(payload)
    injector = FaultInjector(plan)

    # Phase 1: the injected run.
    system = GPUSystem(config, faults=injector)
    app = build_app(app_name, **app_params)
    run_class = RUN_COMPLETED
    run_error: Optional[str] = None
    cycles = 0.0
    try:
        app.setup(system)
        outcome_run = app.run(system)
        system.sync()
        cycles = outcome_run.cycles
    except ReproError as exc:
        run_class = classify_run_exception(exc)
        run_error = describe(exc)

    # Phase 2: crash at every persist boundary, recover, classify.
    points: List[Dict[str, Any]] = []
    if run_class == RUN_COMPLETED:
        if crash_times is not None:
            times = [float(t) for t in crash_times]
        else:
            times = [0.0] + system.gpu.subsystem.persist_log.boundary_times(
                end=system.now
            )
            times = _subsample(times, max_crash_points)
        for t in times:
            image = system.crash(at=min(t, system.now))
            classification, error = recover_and_classify(
                app_name, app_params, config, image
            )
            points.append(
                {"time": t, "classification": classification, "error": error}
            )

    # Phase 3: fold into outcome + verdict + minimized reproducer.
    point_counts: Dict[str, int] = {}
    for point in points:
        cls = point["classification"]
        point_counts[cls] = point_counts.get(cls, 0) + 1
    if run_class != RUN_COMPLETED:
        outcome = run_class
    elif any(p["classification"] in INCONSISTENT_CLASSES for p in points):
        outcome = OUTCOME_INCONSISTENT
    else:
        outcome = CONSISTENT

    reproducer: Optional[Dict[str, Any]] = None
    for point in points:
        if point["classification"] in INCONSISTENT_CLASSES:
            pinned = dict(plan.to_json())
            pinned["crash_times"] = [point["time"]]
            reproducer = {
                "app": app_name,
                "app_params": dict(app_params),
                "config": config.to_dict(),
                "verify": True,
                "mode": "faults",
                "fault": pinned,
            }
            break

    detail = {
        "plan": plan.to_json(),
        "expect": plan.expect,
        "run": {"classification": run_class, "error": run_error},
        "points": points,
        "point_counts": dict(sorted(point_counts.items())),
        "injected": dict(sorted(injector.counts.items())),
        "outcome": outcome,
        "matched": _matches(plan.expect, outcome),
        "reproducer": reproducer,
    }
    stats = {
        "faults.crash_points": float(len(points)),
        "faults.inconsistent_points": float(
            sum(
                count
                for cls, count in point_counts.items()
                if cls in INCONSISTENT_CLASSES
            )
        ),
    }
    for key, value in injector.counts.items():
        stats[f"faults.{key}"] = float(value)
    return ScenarioResult(
        app=app_name,
        label=f"{config.label}[{plan.label}]",
        cycles=cycles,
        stats=stats,
        detail=detail,
    )

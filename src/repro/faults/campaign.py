"""The fault-injection campaign driver.

``python -m repro.faults.campaign`` sweeps fault plans across apps,
persistency models, and PM placements.  Every (app, model, placement,
plan) cell is one crash-isolated :class:`~repro.exec.jobs.ScenarioJob`
submitted through the shared :class:`~repro.exec.executor.Executor`, so
campaign cells parallelize, dedupe, and (with ``--cache-dir``) persist
exactly like the paper's figure sweeps.

The report is deterministic JSON: rows appear in submission order, no
wall-clock or hostnames are recorded, and every injected decision is a
pure function of the plan — ``--workers 1`` and ``--workers 4`` produce
byte-identical reports (CI diffs them).

Quick start::

    python -m repro.faults.campaign --smoke          # bounded CI preset
    python -m repro.faults.campaign --list-plans     # what can go wrong
    python -m repro.faults.campaign --repro repro.json   # replay one cell

Exit status is 0 iff no scenario or litmus cell violated its declared
expectation (``summary.unexpected`` is empty).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.common.config import ModelName, PMPlacement, small_system
from repro.exec import Executor, ScenarioJob
from repro.exec.executor import add_pool_args, pool_kwargs
from repro.exec.jobs import MODE_FAULTS
from repro.faults.oracles import (
    CONSISTENT,
    JOB_FAILED,
    UNREACHABLE_STATE,
    run_litmus_oracle,
)
from repro.faults.plans import (
    EXPECT_ANY,
    EXPECT_FAULT_RAISED,
    EXPECT_INCONSISTENT,
    PLAN_KINDS,
    AckDelayPlan,
    AckLossPlan,
    DrainDropPlan,
    DrainReorderPlan,
    FaultPlan,
    NVMTransientPlan,
    PowerCutPlan,
    TornPersistPlan,
)
from repro.faults.runner import DEFAULT_MAX_CRASH_POINTS, OUTCOME_INCONSISTENT

#: Shrunk app parameters (the tests' crash-sweep sizes): the campaign
#: measures *correctness*, not performance, so small batches that still
#: exercise every protocol step are the right cost point.
APP_PARAMS: Dict[str, Dict[str, Any]] = {
    "gpkvs": dict(n_pairs=512, capacity=1024, rounds=2),
    "hashmap": dict(n_inserts=512, capacity=1024, rounds=2),
    "srad": dict(side=24),
    "reduction": dict(blocks=3, per_thread=2),
    "multiqueue": dict(batches=2, blocks=3),
    "scan": dict(blocks=3),
}

#: Even smaller gpKVS for the CI smoke preset.
SMOKE_PARAMS: Dict[str, Any] = dict(n_pairs=128, capacity=256, rounds=2)
SMOKE_MAX_CRASH_POINTS = 12

#: Serving-subsystem crash-under-load cells: the CI-sized request
#: stream (mirrors ``repro.serve.bench`` smoke params).
SERVE_PARAMS: Dict[str, Any] = dict(
    n_requests=96, n_keys=96, capacity=256, batch_requests=48
)

ALL_MODELS = (ModelName.SBRP, ModelName.GPM, ModelName.EPOCH)
ALL_PLACEMENTS = (PMPlacement.FAR, PMPlacement.NEAR)


def named_plans() -> Dict[str, FaultPlan]:
    """The campaign's default plan menu, by stable name."""
    return {
        "power_cut": PowerCutPlan(),
        "torn_last": TornPersistPlan(),
        "torn_window": TornPersistPlan(mode="window", expect=EXPECT_ANY),
        "drain_reorder": DrainReorderPlan(),
        "drain_drop": DrainDropPlan(),
        "ack_delay": AckDelayPlan(),
        "ack_loss": AckLossPlan(),
        "nvm_transient": NVMTransientPlan(),
        "nvm_exhausted": NVMTransientPlan(
            fails=7, max_retries=3, expect=EXPECT_FAULT_RAISED
        ),
    }


@dataclass(frozen=True)
class Cell:
    """One campaign cell: metadata + the job that measures it."""

    app: str
    app_params: Dict[str, Any]
    model: ModelName
    placement: PMPlacement
    plan: FaultPlan
    max_crash_points: int
    #: Optional memory-system overrides.  A single-entry WPQ with
    #: throttled NVM bandwidth makes acceptance order diverge from send
    #: order across partitions — the congestion that turns latent
    #: ordering bugs (``missing_ofence``) into detected ones.
    wpq_entries: Optional[int] = None
    nvm_bw_scale: Optional[float] = None

    @property
    def name(self) -> str:
        tag = self.app_params.get("seeded_bug", "")
        seeded = f"!{tag}" if tag else ""
        congested = "~congested" if self.wpq_entries is not None else ""
        return (
            f"{self.app}{seeded}@{self.model.value}-{self.placement.value}"
            f"{congested}#{self.plan.label}"
        )

    def job(self) -> ScenarioJob:
        fault = dict(self.plan.to_json())
        fault["max_crash_points"] = self.max_crash_points
        config = small_system(self.model, placement=self.placement)
        if self.wpq_entries is not None or self.nvm_bw_scale is not None:
            memory = config.memory
            if self.wpq_entries is not None:
                memory = replace(memory, wpq_entries=self.wpq_entries)
            if self.nvm_bw_scale is not None:
                memory = replace(memory, nvm_bw_scale=self.nvm_bw_scale)
            config = replace(config, memory=memory)
        return ScenarioJob(
            app=self.app,
            config=config,
            app_params=dict(self.app_params),
            mode=MODE_FAULTS,
            fault=fault,
        )


# ----------------------------------------------------------------------
# campaign composition
# ----------------------------------------------------------------------
def seeded_cells(
    models: Tuple[ModelName, ...],
    max_points: int,
    params: Optional[Dict[str, Any]] = None,
) -> List[Cell]:
    """Deliberately broken apps under clean power cuts: if the oracles
    don't flag these, they have no teeth."""
    base = dict(params or SMOKE_PARAMS)
    plan = PowerCutPlan(expect=EXPECT_INCONSISTENT)
    return [
        Cell(
            app="gpkvs",
            app_params={**base, "seeded_bug": bug},
            model=model,
            placement=PMPlacement.FAR,
            plan=plan,
            max_crash_points=max_points,
        )
        for bug in ("unsealed_log", "commit_first")
        for model in models
    ]


def congested_cells(
    models: Tuple[ModelName, ...],
    max_points: int,
    params: Optional[Dict[str, Any]] = None,
) -> List[Cell]:
    """The ``missing_ofence`` teeth check.

    The bug drops the record->table ordering fence, which is *latent*
    under an uncongested FIFO drain: the persist buffer happens to send
    the undo record before the table overwrite anyway.  A single-entry
    WPQ at 2% NVM bandwidth decouples acceptance order from send order
    across the two NVM partitions, so some table overwrite becomes
    durable before its (invalid) undo record — and a crash in that
    window defeats recovery.

    Acceptance order only diverges *across* partitions (each partition's
    WPQ is FIFO), so the capacity is adjusted to give the table regions
    an odd line count: that flips ``tbl_val``'s base-line parity, putting
    every op group's value line on the opposite partition from its undo
    record.  With an even line count the whole group shares a partition
    and the bug stays hidden no matter how congested the drain is.
    """
    base = dict(params or SMOKE_PARAMS)
    cap_lines = -(-4 * int(base["capacity"]) // 128)
    if cap_lines % 2 == 0:
        base["capacity"] = (cap_lines - 1) * 32
    plan = PowerCutPlan(expect=EXPECT_INCONSISTENT)
    return [
        Cell(
            app="gpkvs",
            app_params={**base, "seeded_bug": "missing_ofence"},
            model=model,
            placement=PMPlacement.FAR,
            plan=plan,
            max_crash_points=max_points,
            wpq_entries=1,
            nvm_bw_scale=0.02,
        )
        for model in models
    ]


def serve_cells(
    models: Tuple[ModelName, ...],
    max_points: int,
    params: Optional[Dict[str, Any]] = None,
) -> List[Cell]:
    """Crash-under-load: power-cut the serving stream's durable
    transactions mid-flight under every model (recovery must land on a
    consistent table), plus the ``early_commit`` teeth check — the
    transaction layer truncates its undo log before the in-place update
    it covers, so some crash window must defeat recovery."""
    base = dict(params or SERVE_PARAMS)
    cells = [
        Cell(
            app="serve_kvs",
            app_params=dict(base),
            model=model,
            placement=PMPlacement.FAR,
            plan=PowerCutPlan(),
            max_crash_points=max_points,
        )
        for model in models
    ]
    teeth = ModelName.SBRP if ModelName.SBRP in models else models[0]
    cells.append(
        Cell(
            app="serve_kvs",
            app_params={**base, "seeded_bug": "early_commit"},
            model=teeth,
            placement=PMPlacement.FAR,
            plan=PowerCutPlan(expect=EXPECT_INCONSISTENT),
            max_crash_points=max_points,
        )
    )
    return cells


def smoke_cells(models: Tuple[ModelName, ...]) -> List[Cell]:
    """The bounded CI preset: gpKVS under every model, clean power cuts
    plus safe torn persists, the seeded-bug teeth checks under SBRP,
    and the serving subsystem's crash-under-load cells."""
    cells = [
        Cell(
            app="gpkvs",
            app_params=dict(SMOKE_PARAMS),
            model=model,
            placement=PMPlacement.FAR,
            plan=plan,
            max_crash_points=SMOKE_MAX_CRASH_POINTS,
        )
        for model in models
        for plan in (PowerCutPlan(), TornPersistPlan())
    ]
    seeded_models = (
        (ModelName.SBRP,) if ModelName.SBRP in models else models[:1]
    )
    cells += seeded_cells(seeded_models, SMOKE_MAX_CRASH_POINTS)
    cells += congested_cells(seeded_models, SMOKE_MAX_CRASH_POINTS)
    cells += serve_cells(models, SMOKE_MAX_CRASH_POINTS)
    return cells


def full_cells(
    apps: List[str],
    models: Tuple[ModelName, ...],
    placements: Tuple[PMPlacement, ...],
    plans: Dict[str, FaultPlan],
    max_points: int,
) -> List[Cell]:
    cells = [
        Cell(
            app=app,
            app_params=dict(APP_PARAMS[app]),
            model=model,
            placement=placement,
            plan=plan,
            max_crash_points=max_points,
        )
        for app in apps
        for model in models
        for placement in placements
        for _, plan in sorted(plans.items())
    ]
    cells += seeded_cells(models[:1], max_points, params=APP_PARAMS["gpkvs"])
    cells += congested_cells(models[:1], max_points, params=APP_PARAMS["gpkvs"])
    cells += serve_cells(models, max_points)
    return cells


def litmus_cases(
    models: Tuple[ModelName, ...], smoke: bool
) -> List[Dict[str, Any]]:
    """Formal-oracle cases: (test, model, plan, expectation).

    Every case runs the litmus program on the timing simulator and
    validates observed crash images against the axiomatic model.  The
    ``drain_drop`` case seeds broken hardware (an acked-but-dropped
    drain) — the formal oracle must call its images unreachable.
    """
    cases = [
        {
            "test": "mp_ofence",
            "model": ModelName.SBRP,
            "plan": None,
            "expect": CONSISTENT,
            "expect_scope_bug": False,
        },
        {
            "test": "mp_ofence",
            "model": ModelName.SBRP,
            "plan": DrainDropPlan(drop_every=2),
            "expect": UNREACHABLE_STATE,
            "expect_scope_bug": False,
        },
        {
            "test": "scope_mismatch_bug",
            "model": ModelName.SBRP,
            "plan": None,
            "expect": CONSISTENT,
            "expect_scope_bug": True,
        },
    ]
    if not smoke:
        from repro.formal.litmus import LITMUS_TESTS

        cases += [
            {
                "test": name,
                "model": model,
                "plan": None,
                "expect": CONSISTENT,
                "expect_scope_bug": name == "scope_mismatch_bug",
            }
            for name in sorted(LITMUS_TESTS)
            for model in models
            if not (name == "mp_ofence" and model is ModelName.SBRP)
        ]
    return cases


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------
def scenario_row(cell: Cell, result: Optional[Any]) -> Dict[str, Any]:
    row: Dict[str, Any] = {
        "name": cell.name,
        "app": cell.app,
        "app_params": dict(cell.app_params),
        "model": cell.model.value,
        "placement": cell.placement.value,
        "plan": cell.plan.label,
        "expect": cell.plan.expect,
    }
    if result is None:
        # Worker tracebacks are environment-specific; the report stays
        # deterministic and the traceback goes to stderr instead.
        row.update(
            outcome=JOB_FAILED,
            matched=False,
            point_counts={},
            injected={},
            error=None,
            reproducer=None,
        )
        return row
    detail = result.detail or {}
    error = detail.get("run", {}).get("error")
    if error is None:
        for point in detail.get("points", ()):
            if point["classification"] != CONSISTENT:
                error = point["error"]
                break
    row.update(
        outcome=detail.get("outcome"),
        matched=bool(detail.get("matched")),
        point_counts=detail.get("point_counts", {}),
        injected=detail.get("injected", {}),
        error=error,
        reproducer=detail.get("reproducer"),
    )
    return row


def litmus_row(case: Dict[str, Any]) -> Dict[str, Any]:
    outcome = run_litmus_oracle(
        case["test"], case["model"], plan=case["plan"]
    )
    scope_detected = bool(outcome["scope_bugs"])
    matched = (
        outcome["classification"] == case["expect"]
        and scope_detected == case["expect_scope_bug"]
    )
    return {
        "name": f"{case['test']}@{case['model'].value}"
        + (f"#{case['plan'].label}" if case["plan"] is not None else ""),
        "expect": case["expect"],
        "expect_scope_bug": case["expect_scope_bug"],
        "matched": matched,
        **outcome,
    }


def build_report(
    preset: str,
    cells: List[Cell],
    results: List[Optional[Any]],
    litmus: List[Dict[str, Any]],
) -> Dict[str, Any]:
    rows = [scenario_row(cell, result) for cell, result in zip(cells, results)]
    unexpected = [row["name"] for row in rows if not row["matched"]]
    unexpected += [row["name"] for row in litmus if not row["matched"]]
    summary = {
        "scenarios": len(rows),
        "litmus_cases": len(litmus),
        "matched": sum(row["matched"] for row in rows),
        "clean_consistent": sum(
            row["expect"] == CONSISTENT and row["outcome"] == CONSISTENT
            for row in rows
        ),
        "seeded_flagged": sum(
            row["expect"] == EXPECT_INCONSISTENT
            and row["outcome"] == OUTCOME_INCONSISTENT
            for row in rows
        ),
        "litmus_unreachable_detected": sum(
            row["expect"] == UNREACHABLE_STATE
            and row["classification"] == UNREACHABLE_STATE
            for row in litmus
        ),
        "scope_bugs_detected": sum(
            len(row["scope_bugs"]) for row in litmus
        ),
        "unexpected": unexpected,
    }
    return {
        "campaign": {"preset": preset, "cells": len(cells)},
        "scenarios": rows,
        "litmus": litmus,
        "summary": summary,
    }


def render_report(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _progress(event: Any) -> None:
    if event.kind == "done":
        print(
            f"[{event.done}/{event.total}] {event.label}: {event.status}",
            file=sys.stderr,
        )


def _repro(path: str) -> int:
    """Replay one reproducer spec (a ScenarioJob JSON) and report."""
    with open(path, "r", encoding="utf-8") as handle:
        job = ScenarioJob.from_json(json.load(handle))
    result = job.execute()
    detail = result.detail or {}
    print(render_report(detail), end="")
    reproduced = detail.get("outcome") == OUTCOME_INCONSISTENT
    print(
        f"reproduced={reproduced} outcome={detail.get('outcome')}",
        file=sys.stderr,
    )
    return 0 if reproduced else 1


def _list_plans() -> int:
    for kind in sorted(PLAN_KINDS):
        cls = PLAN_KINDS[kind]
        default = cls()
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{kind:14s} expect={default.expect:12s} {doc}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="Sweep fault plans across apps x models x placements "
        "and classify every post-crash state through the recovery oracles.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bounded CI preset: gpkvs x 3 models, power cuts + safe "
        "tears + seeded-bug teeth checks + the litmus trio",
    )
    parser.add_argument(
        "--apps", nargs="*", default=None, choices=sorted(APP_PARAMS)
    )
    parser.add_argument(
        "--models",
        nargs="*",
        default=None,
        choices=[m.value for m in ModelName],
    )
    parser.add_argument(
        "--placements",
        nargs="*",
        default=None,
        choices=[p.value for p in PMPlacement],
    )
    parser.add_argument(
        "--plans",
        nargs="*",
        default=None,
        choices=sorted(named_plans()),
        help="restrict the full sweep to these named plans",
    )
    parser.add_argument("--workers", type=int, default=1)
    add_pool_args(parser)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache (off by default)",
    )
    parser.add_argument(
        "--max-crash-points",
        type=int,
        default=None,
        help=f"crash-point cap per cell (default {DEFAULT_MAX_CRASH_POINTS}, "
        f"smoke {SMOKE_MAX_CRASH_POINTS})",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--repro", default=None, help="replay a reproducer spec and exit"
    )
    parser.add_argument("--list-plans", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.list_plans:
        return _list_plans()
    if args.repro is not None:
        return _repro(args.repro)

    models = tuple(
        m for m in ALL_MODELS if args.models is None or m.value in args.models
    )
    placements = tuple(
        p
        for p in ALL_PLACEMENTS
        if args.placements is None or p.value in args.placements
    )
    if args.smoke:
        preset = "smoke"
        cells = smoke_cells(models)
        if args.max_crash_points is not None:
            cells = [
                Cell(
                    app=c.app,
                    app_params=c.app_params,
                    model=c.model,
                    placement=c.placement,
                    plan=c.plan,
                    max_crash_points=args.max_crash_points,
                )
                for c in cells
            ]
    else:
        preset = "full"
        plans = named_plans()
        if args.plans is not None:
            plans = {name: plans[name] for name in args.plans}
        cells = full_cells(
            apps=args.apps or sorted(APP_PARAMS),
            models=models,
            placements=placements,
            plans=plans,
            max_points=args.max_crash_points or DEFAULT_MAX_CRASH_POINTS,
        )

    executor = Executor(
        workers=args.workers,
        cache=args.cache_dir,
        progress=None if args.quiet else _progress,
        **pool_kwargs(args),
    )
    results = executor.submit([cell.job() for cell in cells], allow_failures=True)
    for failure in executor.failures:
        print(f"--- {failure.job.label} ---\n{failure}", file=sys.stderr)

    litmus = [litmus_row(case) for case in litmus_cases(models, args.smoke)]
    report = build_report(preset, cells, results, litmus)
    text = render_report(report)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="")

    print(executor.footer(), file=sys.stderr)
    summary = report["summary"]
    print(
        f"{preset}: {summary['scenarios']} scenarios + "
        f"{summary['litmus_cases']} litmus cases; "
        f"{summary['clean_consistent']} clean-consistent, "
        f"{summary['seeded_flagged']} seeded bugs flagged, "
        f"{summary['litmus_unreachable_detected']} unreachable detected, "
        f"{len(summary['unexpected'])} unexpected",
        file=sys.stderr,
    )
    if summary["unexpected"]:
        for name in summary["unexpected"]:
            print(f"UNEXPECTED: {name}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

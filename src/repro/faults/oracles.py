"""Recovery oracles: classify every post-crash outcome **by type**.

Two oracle families cross-check each injected run:

* the **application oracle** boots a fresh machine from the crash image,
  runs the app's recovery kernel, and checks the app's own consistency
  invariants (:meth:`repro.apps.base.App.oracle_check`) — the paper's
  *recoverability* criterion (Section 2.2: after any crash, recovery
  must restore a consistent state);
* the **formal oracle** replays a litmus program on the (possibly
  faulted) timing simulator and checks every observed durable image
  against the axiomatic model's reachable crash states
  (:func:`repro.formal.bridge.validate_against_model`) — the paper's
  *strict persistency* ordering criterion.

Classification never inspects exception text: each outcome is decided
by exception type alone, so a reworded message can never silently change
a campaign verdict.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.common.config import ModelName, SystemConfig
from repro.common.errors import (
    FaultInjectionError,
    LivelockError,
    OracleViolation,
    PersistencyError,
    ReproError,
    SimulationError,
)
from repro.system import CrashImage, GPUSystem

# ----------------------------------------------------------------------
# outcome classifications
# ----------------------------------------------------------------------
#: Recovery succeeded and the app's invariants hold.
CONSISTENT = "consistent"
#: Recovery ran but the app oracle rejected the resulting state.
APP_VIOLATION = "app_violation"
#: The simulator produced a durable image the axiomatic model forbids.
UNREACHABLE_STATE = "unreachable_state"
#: The recovery machinery itself raised (recovery kernel crashed).
RECOVERY_RAISED = "recovery_raised"
#: The injected run wedged: livelock, deadlock, or cycle-budget blowout.
HUNG = "hung"
#: The injection escalated to a typed FaultInjectionError.
FAULT_RAISED = "fault_raised"
#: A persistency-model invariant tripped during the injected run.
MODEL_ERROR = "model_error"
#: The worker process running the job died (crash isolation caught it).
JOB_FAILED = "job_failed"
#: The injected run finished; crash points decide the outcome.
RUN_COMPLETED = "completed"

CLASSIFICATIONS = (
    CONSISTENT,
    APP_VIOLATION,
    UNREACHABLE_STATE,
    RECOVERY_RAISED,
    HUNG,
    FAULT_RAISED,
    MODEL_ERROR,
    JOB_FAILED,
)

#: Classifications that count as *inconsistent* for campaign verdicts.
INCONSISTENT_CLASSES = frozenset(
    {APP_VIOLATION, UNREACHABLE_STATE, RECOVERY_RAISED}
)


def describe(exc: BaseException) -> str:
    """Stable one-line description: type name + message."""
    return f"{type(exc).__name__}: {exc}"


def classify_run_exception(exc: ReproError) -> str:
    """Classify an exception raised by the *injected run* itself.

    Order matters: :class:`LivelockError` subclasses
    :class:`SimulationError`, :class:`TornPersistError` subclasses
    :class:`FaultInjectionError`.
    """
    if isinstance(exc, LivelockError):
        return HUNG
    if isinstance(exc, FaultInjectionError):
        return FAULT_RAISED
    if isinstance(exc, PersistencyError):
        return MODEL_ERROR
    if isinstance(exc, SimulationError):
        return HUNG
    return MODEL_ERROR


# ----------------------------------------------------------------------
# application oracle
# ----------------------------------------------------------------------
def recover_and_classify(
    app_name: str,
    app_params: Dict[str, Any],
    config: SystemConfig,
    image: CrashImage,
) -> Tuple[str, Optional[str]]:
    """Boot a clean machine from *image*, recover, check invariants.

    Returns ``(classification, error)``:

    * any :class:`ReproError` while rebooting / recovering / draining
      classifies as :data:`RECOVERY_RAISED` — the recovery path must
      *itself* be crash-safe;
    * an :class:`OracleViolation` from the app's invariant checker
      classifies as :data:`APP_VIOLATION`;
    * otherwise the state is :data:`CONSISTENT`.
    """
    from repro.apps import build_app

    app = build_app(app_name, **app_params)
    try:
        rebooted = GPUSystem(config, pm_image=image)
        app.reopen(rebooted)
        app.recover(rebooted)
        rebooted.sync()
    except ReproError as exc:
        return RECOVERY_RAISED, describe(exc)
    try:
        app.oracle_check(rebooted, complete=False)
    except OracleViolation as exc:
        return APP_VIOLATION, describe(exc)
    return CONSISTENT, None


# ----------------------------------------------------------------------
# formal oracle
# ----------------------------------------------------------------------
def run_litmus_oracle(
    test_name: str,
    model: ModelName,
    plan: Optional[Any] = None,
) -> Dict[str, Any]:
    """Cross-validate simulator crash images against the formal model.

    Runs *test_name* on the timing simulator (optionally under the fault
    *plan*) and reports every observed durable image the axiomatic model
    says is unreachable, plus any statically detectable scoped-
    persistency misuse in the program itself.
    """
    from repro.faults.injector import build_injector
    from repro.formal.bug_detector import find_scope_bugs
    from repro.formal.bridge import validate_against_model
    from repro.formal.litmus import LITMUS_TESTS

    test = LITMUS_TESTS[test_name]
    unreachable = validate_against_model(
        test, model, faults=build_injector(plan)
    )
    scope_bugs = find_scope_bugs(test.build().validate())
    classification = UNREACHABLE_STATE if unreachable else CONSISTENT
    return {
        "test": test_name,
        "model": model.value,
        "plan": plan.to_json() if plan is not None else None,
        "classification": classification,
        "unreachable_images": [
            dict(sorted(img.items())) for img in unreachable
        ],
        "scope_bugs": sorted(str(bug) for bug in scope_bugs),
    }

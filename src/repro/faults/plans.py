"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of
*one* way to abuse the persistence path.  Plans carry no behavior — the
:class:`~repro.faults.injector.FaultInjector` interprets them — so they
can ride inside a :class:`~repro.exec.jobs.ScenarioJob` spec, hash
stably, and cross process boundaries.

Every plan declares what a *correct* implementation is expected to do
under it (``expect``):

* ``consistent`` — every sampled crash point must recover cleanly.
  Clean power cuts and safe tears (the last in-flight line) model
  behavior the paper's ADR assumptions still permit.
* ``inconsistent`` — at least one crash point must be flagged.  Used for
  seeded application bugs: a plan that *fails* to flag one means the
  oracle has no teeth.
* ``hung`` — the run must wedge and be diagnosed (livelock / deadlock /
  drain stall), not spin forever.  Losing every ack is the canonical
  case.
* ``fault_raised`` — the injection itself must escalate to a typed
  :class:`~repro.common.errors.FaultInjectionError` (retry exhaustion).
* ``any`` — adversarial plans that break the hardware contract
  (reordered or dropped drains, wide tears): any classification is
  acceptable, the campaign only records what happened.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Type

from repro.common.errors import ConfigError
from repro.common.retry import SCHEDULE_LINEAR, RetryPolicy

EXPECT_CONSISTENT = "consistent"
EXPECT_INCONSISTENT = "inconsistent"
EXPECT_HUNG = "hung"
EXPECT_FAULT_RAISED = "fault_raised"
EXPECT_ANY = "any"

EXPECTATIONS = (
    EXPECT_CONSISTENT,
    EXPECT_INCONSISTENT,
    EXPECT_HUNG,
    EXPECT_FAULT_RAISED,
    EXPECT_ANY,
)

#: kind -> plan class; populated by :func:`register_plan`.
PLAN_KINDS: Dict[str, Type["FaultPlan"]] = {}


def register_plan(cls: Type["FaultPlan"]) -> Type["FaultPlan"]:
    if not cls.kind:
        raise ConfigError(f"{cls.__name__} must define a non-empty kind")
    if cls.kind in PLAN_KINDS:
        raise ConfigError(f"duplicate fault-plan kind {cls.kind!r}")
    PLAN_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class FaultPlan:
    """Base class: a serializable description of one injected fault."""

    kind: ClassVar[str] = ""

    #: What a correct implementation must do under this plan.
    expect: str = EXPECT_CONSISTENT

    def __post_init__(self) -> None:
        if self.expect not in EXPECTATIONS:
            raise ConfigError(
                f"unknown expectation {self.expect!r}; have {EXPECTATIONS}"
            )
        self.validate()

    def validate(self) -> None:
        """Subclass hook: raise :class:`ConfigError` on bad parameters."""

    @property
    def label(self) -> str:
        """Short human-readable name for job labels and report rows."""
        return self.kind

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, **asdict(self)}

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "FaultPlan":
        payload = dict(data)
        kind = payload.pop("kind", None)
        cls = PLAN_KINDS.get(kind)
        if cls is None and kind == "timeline":
            # The chronic-fault timeline plan lives in the chaos package;
            # importing it registers the kind (lazy to avoid a cycle).
            from repro.chaos import timeline as _timeline  # noqa: F401

            cls = PLAN_KINDS.get(kind)
        if cls is None:
            raise ConfigError(
                f"unknown fault-plan kind {kind!r}; have {sorted(PLAN_KINDS)}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"fault plan {kind!r} got unknown fields {sorted(unknown)}"
            )
        return cls(**payload)


@register_plan
@dataclass(frozen=True)
class PowerCutPlan(FaultPlan):
    """Clean power failure: the durable image is exactly what the ADR
    domain accepted.  The baseline plan — crash points come from the
    persist log's acceptance boundaries, not from the plan itself."""

    kind: ClassVar[str] = "power_cut"


@register_plan
@dataclass(frozen=True)
class TornPersistPlan(FaultPlan):
    """Partial cache-line persists at the crash instant.

    ``mode="last"`` tears only the most recently accepted record, and
    only when the crash lands within *span_cycles* of its acceptance —
    the line caught mid-drain.  Ordering enforced by the models (fence
    successors flush only after the predecessor's ack) makes every such
    image formally reachable, so correct apps must still recover:
    ``expect`` defaults to ``consistent``.

    ``mode="window"`` tears *every* record accepted within the window —
    an ADR failure (the capacitor only partially drained the WPQ).  That
    breaks the acceptance-is-durability contract the protocols are built
    on, so pair it with ``expect="any"``.
    """

    kind: ClassVar[str] = "torn_persist"

    mode: str = "last"
    #: How long an accepted line stays tearable (the WPQ residency).
    span_cycles: float = 200.0
    #: Seeds the per-record choice of surviving words.
    seed: int = 1

    def validate(self) -> None:
        if self.mode not in ("last", "window"):
            raise ConfigError(f"torn_persist mode must be last|window, got {self.mode!r}")
        if self.span_cycles <= 0:
            raise ConfigError("torn_persist span_cycles must be positive")

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.mode}"


@register_plan
@dataclass(frozen=True)
class DrainReorderPlan(FaultPlan):
    """A buggy memory controller: every *shift_every*-th accepted persist
    actually reaches the media *shift_cycles* later than the WPQ
    acknowledged, reordering durability against later persists.  The
    hardware contract is broken, so the default expectation is ``any``.
    """

    kind: ClassVar[str] = "drain_reorder"

    expect: str = EXPECT_ANY
    shift_every: int = 3
    shift_cycles: float = 500.0

    def validate(self) -> None:
        if self.shift_every < 1:
            raise ConfigError("drain_reorder shift_every must be >= 1")
        if self.shift_cycles <= 0:
            raise ConfigError("drain_reorder shift_cycles must be positive")


@register_plan
@dataclass(frozen=True)
class DrainDropPlan(FaultPlan):
    """A persist-buffer drain bug: every *drop_every*-th flushed line is
    acknowledged but never becomes durable (visible in the volatile
    image, absent from every crash image)."""

    kind: ClassVar[str] = "drain_drop"

    expect: str = EXPECT_ANY
    drop_every: int = 2
    #: First flush (0-based) eligible to drop; lets plans spare setup.
    drop_offset: int = 0
    #: Cap on total drops; 0 = unlimited.
    max_drops: int = 0

    def validate(self) -> None:
        if self.drop_every < 1:
            raise ConfigError("drain_drop drop_every must be >= 1")
        if self.drop_offset < 0 or self.max_drops < 0:
            raise ConfigError("drain_drop offsets/caps must be non-negative")


@register_plan
@dataclass(frozen=True)
class AckDelayPlan(FaultPlan):
    """ACTR stress: every *every*-th persist's acknowledgement is delayed
    by *delay_cycles*.  Durability is unaffected — only the SM learns
    late — so a correct implementation stays consistent (and merely
    slower)."""

    kind: ClassVar[str] = "ack_delay"

    delay_cycles: float = 2000.0
    every: int = 2

    def validate(self) -> None:
        if self.delay_cycles <= 0:
            raise ConfigError("ack_delay delay_cycles must be positive")
        if self.every < 1:
            raise ConfigError("ack_delay every must be >= 1")


@register_plan
@dataclass(frozen=True)
class AckLossPlan(FaultPlan):
    """ACTR starvation: after the first *lose_after* persists, every
    *lose_every*-th acknowledgement is lost entirely.  The ACTR never
    reaches zero again, so the machine must wedge **diagnosably**
    (deadlock, drain stall, or the engine watchdog) — the expectation is
    ``hung``, and an undetected infinite spin is the failure mode this
    plan exists to catch."""

    kind: ClassVar[str] = "ack_loss"

    expect: str = EXPECT_HUNG
    lose_after: int = 4
    lose_every: int = 1

    def validate(self) -> None:
        if self.lose_after < 0:
            raise ConfigError("ack_loss lose_after must be non-negative")
        if self.lose_every < 1:
            raise ConfigError("ack_loss lose_every must be >= 1")


@register_plan
@dataclass(frozen=True)
class NVMTransientPlan(FaultPlan):
    """Transient NVM write failures: every *fail_every*-th persist fails
    *fails* times before succeeding, each retry backing off linearly by
    *backoff_cycles*.  Within the retry budget this only adds latency
    (``expect="consistent"``); with ``fails > max_retries`` the write
    escalates to :class:`~repro.common.errors.FaultInjectionError`
    (``expect="fault_raised"``)."""

    kind: ClassVar[str] = "nvm_transient"

    fail_every: int = 5
    fails: int = 2
    max_retries: int = 5
    backoff_cycles: float = 400.0

    def validate(self) -> None:
        if self.fail_every < 1:
            raise ConfigError("nvm_transient fail_every must be >= 1")
        if self.fails < 0 or self.max_retries < 0:
            raise ConfigError("nvm_transient fails/max_retries must be >= 0")
        if self.backoff_cycles <= 0:
            raise ConfigError("nvm_transient backoff_cycles must be positive")

    @property
    def label(self) -> str:
        if self.fails > self.max_retries:
            return f"{self.kind}:exhausted"
        return self.kind

    @property
    def retry_policy(self) -> RetryPolicy:
        """The device-level linear backoff schedule as a policy object."""
        return RetryPolicy(
            max_retries=self.max_retries,
            base_cycles=self.backoff_cycles,
            schedule=SCHEDULE_LINEAR,
        )

    @property
    def retry_delay(self) -> float:
        """Added acceptance latency when the retries succeed."""
        return self.retry_policy.total_delay(self.fails)

"""Systematic fault injection with recovery oracles.

The persistence path can fail in more ways than a clean power cut; this
subpackage models those ways and checks that every protocol survives
them — or fails *diagnosably*:

* :mod:`~repro.faults.plans` — declarative, JSON-round-trippable
  :class:`FaultPlan` descriptions (torn persists, reordered / dropped
  drains, delayed / lost acks, transient NVM write failures), each
  declaring what a correct implementation must do under it;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, the
  deterministic plan interpreter the memory subsystem and persistency
  models consult;
* :mod:`~repro.faults.oracles` — typed post-crash classification: the
  application oracle (recover on a clean machine, check app invariants)
  and the formal oracle (validate observed crash images against the
  axiomatic model's reachable states);
* :mod:`~repro.faults.runner` — one scenario end to end: injected run,
  crash at every persist boundary, classify, minimize a reproducer;
* :mod:`~repro.faults.campaign` — ``python -m repro.faults.campaign``,
  the sweep driver (apps x models x placements x plans) with a
  deterministic JSON report.
"""

from repro.faults.injector import FaultInjector, build_injector
from repro.faults.oracles import (
    APP_VIOLATION,
    CLASSIFICATIONS,
    CONSISTENT,
    FAULT_RAISED,
    HUNG,
    INCONSISTENT_CLASSES,
    JOB_FAILED,
    MODEL_ERROR,
    RECOVERY_RAISED,
    UNREACHABLE_STATE,
    recover_and_classify,
    run_litmus_oracle,
)
from repro.faults.plans import (
    EXPECT_ANY,
    EXPECT_CONSISTENT,
    EXPECT_FAULT_RAISED,
    EXPECT_HUNG,
    EXPECT_INCONSISTENT,
    EXPECTATIONS,
    PLAN_KINDS,
    AckDelayPlan,
    AckLossPlan,
    DrainDropPlan,
    DrainReorderPlan,
    FaultPlan,
    NVMTransientPlan,
    PowerCutPlan,
    TornPersistPlan,
)
from repro.faults.runner import (
    DEFAULT_MAX_CRASH_POINTS,
    OUTCOME_INCONSISTENT,
    run_fault_scenario,
)

__all__ = [
    "APP_VIOLATION",
    "AckDelayPlan",
    "AckLossPlan",
    "CLASSIFICATIONS",
    "CONSISTENT",
    "DEFAULT_MAX_CRASH_POINTS",
    "DrainDropPlan",
    "DrainReorderPlan",
    "EXPECTATIONS",
    "EXPECT_ANY",
    "EXPECT_CONSISTENT",
    "EXPECT_FAULT_RAISED",
    "EXPECT_HUNG",
    "EXPECT_INCONSISTENT",
    "FAULT_RAISED",
    "FaultInjector",
    "FaultPlan",
    "HUNG",
    "INCONSISTENT_CLASSES",
    "JOB_FAILED",
    "MODEL_ERROR",
    "NVMTransientPlan",
    "OUTCOME_INCONSISTENT",
    "PLAN_KINDS",
    "PowerCutPlan",
    "RECOVERY_RAISED",
    "TornPersistPlan",
    "UNREACHABLE_STATE",
    "build_injector",
    "recover_and_classify",
    "run_fault_scenario",
    "run_litmus_oracle",
]

"""Serializable scenario jobs with stable content hashes.

A :class:`ScenarioJob` is everything needed to reproduce one simulator
measurement — app name, app constructor params, the full
:class:`~repro.common.config.SystemConfig`, and the measurement mode —
in a form that round-trips through JSON (so jobs can cross process
boundaries) and hashes stably (so results can be content-addressed).

Two hashes matter:

* :attr:`ScenarioJob.spec_hash` covers only the scenario specification.
  It names trace artifacts and is stable across code changes.
* :attr:`ScenarioJob.key` additionally mixes in a fingerprint of the
  ``repro`` package's source, so cached results are invalidated the
  moment any simulator code changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.common.config import SystemConfig, stable_hash
from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.runner import ScenarioResult

#: Measurement modes a job can run in.
MODE_SCENARIO = "scenario"
#: Figure 11: worst-case crash + recovery-kernel runtime instead of a
#: crash-free end-to-end run.
MODE_RECOVERY = "recovery"
#: Fault campaign: run the app under an injected fault plan, crash at
#: every persist boundary, classify each recovery through the oracles.
MODE_FAULTS = "faults"
#: Conformance batch: run litmus programs through the operational
#: simulator and diff every observed image against the axiomatic model.
MODE_CHECK = "check"
#: Serving SLO measurement: run a planned request stream through the
#: transaction layer and report throughput, latency percentiles, and
#: worst-case recovery time (see :mod:`repro.serve.runner`).
MODE_SERVE = "serve"
#: Chaos soak: drive a serving stream through a chronic fault timeline
#: with crash→recover→crash chains, the recovery oracle at every
#: reboot, and a zero-data-loss audit (see :mod:`repro.chaos.runner`).
MODE_SOAK = "soak"

_MODES = (
    MODE_SCENARIO,
    MODE_RECOVERY,
    MODE_FAULTS,
    MODE_CHECK,
    MODE_SERVE,
    MODE_SOAK,
)

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Computed once per process.  Any change to simulator code changes the
    fingerprint, which changes every job's cache key — a warm cache can
    never serve results produced by different code.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


@dataclass(frozen=True)
class ScenarioJob:
    """One independent simulator measurement, ready to serialize."""

    app: str
    config: SystemConfig
    app_params: Mapping[str, Any] = field(default_factory=dict)
    verify: bool = True
    mode: str = MODE_SCENARIO
    #: Tracing turns the job non-cacheable: trace files and profiles are
    #: side effects a cache hit could not reproduce.
    trace: bool = False
    trace_dir: Optional[str] = None
    trace_tag: Optional[str] = None
    #: Serialized fault plan (``FaultPlan.to_json()``) plus optional
    #: runner knobs (``max_crash_points``, ``crash_times``); required
    #: for — and only valid in — :data:`MODE_FAULTS`.
    fault: Optional[Mapping[str, Any]] = None
    #: Conformance batch payload (serialized programs + variants +
    #: target model / mutant, see :mod:`repro.check.runner`); required
    #: for — and only valid in — :data:`MODE_CHECK`.
    check: Optional[Mapping[str, Any]] = None
    #: Soak payload (``timeline`` = serialized TimelinePlan, plus
    #: ``crash_every_batches`` / ``crash_fraction``); required for —
    #: and only valid in — :data:`MODE_SOAK`.
    soak: Optional[Mapping[str, Any]] = None
    #: Run the scenario with the live metrics registry enabled and
    #: attach the unified snapshot to the result.  Metrics runs are
    #: cycle-identical to plain runs, but the flag still feeds the spec
    #: (only when set, preserving pre-existing hashes) because the
    #: result payload differs.
    metrics: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(f"unknown job mode {self.mode!r}; have {_MODES}")
        if (self.mode == MODE_FAULTS) != (self.fault is not None):
            raise ConfigError(
                "a fault plan is required for (and only valid in) "
                f"mode={MODE_FAULTS!r}"
            )
        if (self.mode == MODE_CHECK) != (self.check is not None):
            raise ConfigError(
                "a check payload is required for (and only valid in) "
                f"mode={MODE_CHECK!r}"
            )
        if (self.mode == MODE_SOAK) != (self.soak is not None):
            raise ConfigError(
                "a soak payload is required for (and only valid in) "
                f"mode={MODE_SOAK!r}"
            )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def spec(self) -> Dict[str, Any]:
        """The hash-relevant scenario specification (no trace options).

        The ``fault`` key appears only when set, so pre-existing job
        specs keep their hashes.
        """
        spec = {
            "app": self.app,
            "app_params": dict(self.app_params),
            "config": self.config.to_dict(),
            "verify": self.verify,
            "mode": self.mode,
        }
        if self.fault is not None:
            spec["fault"] = dict(self.fault)
        if self.check is not None:
            spec["check"] = dict(self.check)
        if self.soak is not None:
            spec["soak"] = dict(self.soak)
        if self.metrics:
            spec["metrics"] = True
        return spec

    @property
    def spec_hash(self) -> str:
        """Content hash of the scenario spec (code-version independent)."""
        return stable_hash(self.spec)

    @property
    def key(self) -> str:
        """Cache key: scenario spec + current code fingerprint."""
        return stable_hash({"spec": self.spec, "code": code_fingerprint()})

    @property
    def cacheable(self) -> bool:
        return not (self.trace or self.trace_dir is not None)

    @property
    def label(self) -> str:
        """Human-readable name for progress output and errors."""
        name = f"{self.app}@{self.config.label}"
        if self.mode != MODE_SCENARIO:
            name += f"[{self.mode}]"
        if self.fault is not None and self.fault.get("kind"):
            name += f"[{self.fault['kind']}]"
        if self.check is not None and self.check.get("mutant"):
            name += f"[{self.check['mutant']}]"
        if self.soak is not None:
            timeline = self.soak.get("timeline") or {}
            kinds = sorted({w["kind"] for w in timeline.get("windows", ())})
            if kinds:
                name += f"[{'+'.join(kinds)}]"
        if self.trace_tag:
            name += f"[{self.trace_tag}]"
        return name

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "app_params": dict(self.app_params),
            "config": self.config.to_dict(),
            "verify": self.verify,
            "mode": self.mode,
            "trace": self.trace,
            "trace_dir": self.trace_dir,
            "trace_tag": self.trace_tag,
            "fault": dict(self.fault) if self.fault is not None else None,
            "check": dict(self.check) if self.check is not None else None,
            "soak": dict(self.soak) if self.soak is not None else None,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "ScenarioJob":
        return ScenarioJob(
            app=data["app"],
            app_params=dict(data["app_params"]),
            config=SystemConfig.from_dict(data["config"]),
            verify=data.get("verify", True),
            mode=data.get("mode", MODE_SCENARIO),
            trace=data.get("trace", False),
            trace_dir=data.get("trace_dir"),
            trace_tag=data.get("trace_tag"),
            fault=data.get("fault"),
            check=data.get("check"),
            soak=data.get("soak"),
            metrics=data.get("metrics", False),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self) -> "ScenarioResult":
        """Run the measurement in this process and return its result."""
        # bench.runner is imported lazily: repro.bench's figure drivers
        # depend on this subpackage, so the top-level import would cycle.
        from repro.bench.runner import run_scenario

        if self.mode == MODE_RECOVERY:
            return self._execute_recovery()
        if self.mode == MODE_FAULTS:
            return self._execute_faults()
        if self.mode == MODE_CHECK:
            from repro.check.runner import run_check_batch

            assert self.check is not None  # enforced by __post_init__
            return run_check_batch(dict(self.check))
        if self.mode == MODE_SERVE:
            from repro.serve.runner import run_serve_scenario

            return run_serve_scenario(
                self.app, self.config, dict(self.app_params)
            )
        if self.mode == MODE_SOAK:
            from repro.chaos.runner import run_soak_scenario

            assert self.soak is not None  # enforced by __post_init__
            return run_soak_scenario(
                self.app, self.config, dict(self.app_params), dict(self.soak)
            )
        return run_scenario(
            self.app,
            self.config,
            dict(self.app_params),
            verify=self.verify,
            trace=self.trace,
            trace_dir=self.trace_dir,
            trace_tag=self.trace_tag,
            metrics=self.metrics,
        )

    def _execute_recovery(self) -> "ScenarioResult":
        from repro.apps import build_app
        from repro.bench.runner import ScenarioResult
        from repro.crash import CrashHarness

        harness = CrashHarness(
            lambda: build_app(self.app, **dict(self.app_params)), self.config
        )
        cycles = harness.recovery_cycles_at_worst_case()
        return ScenarioResult(
            app=self.app,
            label=self.config.label,
            cycles=cycles,
            stats={"recovery.cycles": cycles},
        )

    def _execute_faults(self) -> "ScenarioResult":
        from repro.faults.runner import run_fault_scenario

        assert self.fault is not None  # enforced by __post_init__
        return run_fault_scenario(
            self.app, self.config, dict(self.app_params), dict(self.fault)
        )

"""Scenario-execution subsystem: jobs, result cache, worker pool.

The paper's evaluation is hundreds of independent simulator runs; this
subpackage turns them into schedulable work:

* :mod:`~repro.exec.jobs` — :class:`ScenarioJob`, a serializable spec of
  one measurement with a stable content hash (config + app params +
  code-version fingerprint);
* :mod:`~repro.exec.cache` — :class:`ResultCache`, a content-addressed
  on-disk store so any scenario ever simulated is never re-simulated
  (``python -m repro.exec.cache`` to inspect/prune/clear);
* :mod:`~repro.exec.pool` — :class:`WorkerPool`, process-per-job
  parallelism with per-job timeout, bounded retry with backoff, and
  crash isolation;
* :mod:`~repro.exec.executor` — :class:`Executor`, the shared front end
  (memo + cache + pool, serial fallback at ``workers=1``) the figure
  drivers submit through;
* :mod:`~repro.exec.sweep` — ``python -m repro.exec.sweep`` runs the
  full paper evaluation end-to-end.
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.exec.executor import (
    ExecStats,
    Executor,
    JobFailedError,
    execute_job_payload,
)
from repro.exec.jobs import (
    MODE_CHECK,
    MODE_FAULTS,
    MODE_RECOVERY,
    MODE_SCENARIO,
    MODE_SERVE,
    ScenarioJob,
    code_fingerprint,
)
from repro.exec.pool import JobOutcome, PoolEvent, WorkerPool

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecStats",
    "Executor",
    "JobFailedError",
    "JobOutcome",
    "MODE_CHECK",
    "MODE_FAULTS",
    "MODE_RECOVERY",
    "MODE_SCENARIO",
    "MODE_SERVE",
    "PoolEvent",
    "ResultCache",
    "ScenarioJob",
    "WorkerPool",
    "code_fingerprint",
    "default_cache_dir",
    "execute_job_payload",
]

"""Crash-isolated multiprocessing worker pool.

Each job runs in its **own** worker process (process-per-job, bounded by
``workers`` concurrent processes).  That costs a fork per job — noise
next to a multi-second simulation — and buys the three properties a
sweep scheduler needs:

* **crash isolation**: a worker segfaulting or being OOM-killed
  mid-simulation fails only its job; the sweep keeps going (unlike
  ``concurrent.futures.ProcessPoolExecutor``, whose pool breaks);
* **per-job timeout**: a hung simulation is terminated without
  poisoning a shared worker;
* **bounded retry with exponential backoff** for crashes and timeouts
  (clean exceptions are deterministic here and not retried by default).

Results come back in submission order regardless of completion order.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.metrics.registry import NULL_METRICS, MetricsRegistry

#: Poll interval of the scheduler loop (seconds).
_POLL_S = 0.02

#: Outcome statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"  # runner raised; error holds the traceback
STATUS_TIMEOUT = "timeout"  # exceeded the per-job timeout
STATUS_CRASHED = "crashed"  # worker died without reporting a result

Runner = Callable[[Any], Any]
Progress = Callable[["PoolEvent"], None]


@dataclass(frozen=True)
class PoolEvent:
    """One progress notification from the pool."""

    kind: str  # "start" | "done" | "retry"
    index: int
    label: str
    status: Optional[str] = None  # set for "done"
    attempt: int = 1
    done: int = 0
    total: int = 0


@dataclass
class JobOutcome:
    """Terminal state of one submitted payload."""

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class _Pending:
    index: int
    attempt: int = 1
    ready_at: float = 0.0


@dataclass
class _Active:
    index: int
    attempt: int
    process: Any
    conn: Any
    started: float


def _worker_entry(runner: Runner, payload: Any, conn) -> None:
    """Worker-side wrapper: report a value or the original traceback."""
    try:
        value = runner(payload)
    except BaseException:
        conn.send((STATUS_ERROR, traceback.format_exc()))
    else:
        conn.send((STATUS_OK, value))
    finally:
        conn.close()


class WorkerPool:
    """Runs payloads through a runner callable in isolated processes."""

    def __init__(
        self,
        workers: int = 2,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.5,
        retry_errors: bool = False,
        progress: Optional[Progress] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retry_errors = retry_errors
        self.progress = progress
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # fork keeps arbitrary runner callables usable and is the fast
        # path on Linux; elsewhere fall back to spawn (runner must then
        # be an importable top-level function).
        try:
            self._ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = get_context("spawn")

    # ------------------------------------------------------------------
    def run(
        self,
        payloads: Sequence[Any],
        runner: Runner,
        labels: Optional[Sequence[str]] = None,
    ) -> List[JobOutcome]:
        """Execute every payload; outcomes align with *payloads*."""
        total = len(payloads)
        names = list(labels) if labels is not None else [
            f"job{i}" for i in range(total)
        ]
        outcomes: List[Optional[JobOutcome]] = [None] * total
        pending: List[_Pending] = [_Pending(i) for i in range(total)]
        active: Dict[Any, _Active] = {}  # conn -> state
        done = 0

        def emit(kind: str, state_index: int, attempt: int, status=None):
            if self.progress is not None:
                self.progress(
                    PoolEvent(
                        kind=kind,
                        index=state_index,
                        label=names[state_index],
                        status=status,
                        attempt=attempt,
                        done=done,
                        total=total,
                    )
                )

        def finish(state: _Active, status: str, value=None, error=None):
            nonlocal done
            duration = time.monotonic() - state.started
            retryable = status in (STATUS_CRASHED, STATUS_TIMEOUT) or (
                status == STATUS_ERROR and self.retry_errors
            )
            if retryable and state.attempt <= self.retries:
                delay = self.backoff * (2 ** (state.attempt - 1))
                pending.append(
                    _Pending(
                        state.index,
                        attempt=state.attempt + 1,
                        ready_at=time.monotonic() + delay,
                    )
                )
                # Pool-only metrics cover abnormal events exclusively:
                # clean runs emit none, so serial and pooled snapshots
                # stay byte-identical.
                if self.metrics.enabled:
                    self.metrics.inc("exec.pool.retry")
                    self.metrics.inc(f"exec.pool.retry_status.{status}")
                emit("retry", state.index, state.attempt, status)
                return
            outcomes[state.index] = JobOutcome(
                index=state.index,
                status=status,
                value=value,
                error=error,
                attempts=state.attempt,
                duration=duration,
            )
            done += 1
            emit("done", state.index, state.attempt, status)

        while pending or active:
            now = time.monotonic()

            # Launch ready pending jobs up to the concurrency cap, in
            # index order so scheduling stays deterministic.
            pending.sort(key=lambda p: (p.ready_at > now, p.index))
            while pending and len(active) < self.workers:
                item = pending[0]
                if item.ready_at > now:
                    break
                pending.pop(0)
                parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                process = self._ctx.Process(
                    target=_worker_entry,
                    args=(runner, payloads[item.index], child_conn),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                active[parent_conn] = _Active(
                    index=item.index,
                    attempt=item.attempt,
                    process=process,
                    conn=parent_conn,
                    started=time.monotonic(),
                )
                emit("start", item.index, item.attempt)

            if not active:
                # Everything pending is backing off; sleep until the
                # earliest retry becomes ready.
                if pending:
                    time.sleep(
                        max(
                            _POLL_S,
                            min(p.ready_at for p in pending) - now,
                        )
                    )
                continue

            ready = conn_wait(list(active), timeout=_POLL_S)
            for conn in ready:
                state = active.pop(conn)
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    status, value = STATUS_CRASHED, None
                finally:
                    conn.close()
                state.process.join(timeout=5.0)
                if status == STATUS_OK:
                    finish(state, STATUS_OK, value=value)
                elif status == STATUS_ERROR:
                    finish(state, STATUS_ERROR, error=value)
                else:
                    finish(
                        state,
                        STATUS_CRASHED,
                        error=(
                            f"worker exited without a result "
                            f"(exitcode={state.process.exitcode})"
                        ),
                    )

            now = time.monotonic()
            for conn in list(active):
                state = active[conn]
                # conn.poll() guards the race where the worker finished
                # between conn_wait and this liveness check.
                if conn.poll():
                    continue
                if not state.process.is_alive():
                    active.pop(conn)
                    conn.close()
                    state.process.join(timeout=5.0)
                    finish(
                        state,
                        STATUS_CRASHED,
                        error=(
                            f"worker died mid-run "
                            f"(exitcode={state.process.exitcode})"
                        ),
                    )
                elif (
                    self.timeout is not None
                    and now - state.started > self.timeout
                ):
                    active.pop(conn)
                    state.process.terminate()
                    state.process.join(timeout=5.0)
                    if state.process.is_alive():  # pragma: no cover
                        state.process.kill()
                        state.process.join(timeout=5.0)
                    conn.close()
                    finish(
                        state,
                        STATUS_TIMEOUT,
                        error=(
                            f"job exceeded timeout of {self.timeout:.1f}s"
                        ),
                    )

        missing = [i for i, o in enumerate(outcomes) if o is None]
        if missing:  # pragma: no cover - scheduler invariant
            raise RuntimeError(f"pool lost track of jobs {missing}")
        return outcomes  # type: ignore[return-value]

"""The Executor: cached, deduplicated, optionally parallel job running.

One :class:`Executor` is shared across figure drivers so that scenarios
appearing in several figures (the Epoch-far / Epoch-near baselines show
up in nearly every one) simulate **exactly once** per process — and,
with a cache directory, exactly once *ever* per code version.

Submission semantics:

* results come back aligned with the submitted job list;
* duplicate jobs (same content hash) within or across ``submit`` calls
  are executed once (in-memory memo), cache lookups happen per unique
  job, and only genuine misses reach the worker pool;
* ``workers=1`` is a pure serial fallback — jobs run in-process with no
  multiprocessing involved, which is also the byte-identical reference
  path for the parallel scheduler.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.exec.cache import ResultCache
from repro.exec.jobs import ScenarioJob
from repro.exec.pool import (
    STATUS_ERROR,
    STATUS_OK,
    JobOutcome,
    PoolEvent,
    WorkerPool,
)
from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.trace.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.runner import ScenarioResult


class JobFailedError(RuntimeError):
    """A submitted job failed; carries the worker's original traceback."""

    def __init__(self, job: ScenarioJob, outcome: JobOutcome) -> None:
        self.job = job
        self.outcome = outcome
        detail = outcome.error or "no error detail"
        super().__init__(
            f"job {job.label} failed ({outcome.status} after "
            f"{outcome.attempts} attempt(s)):\n{detail}"
        )


def execute_job_payload(payload: dict) -> dict:
    """Worker-side runner: JSON job in, JSON result out.

    Module-level so it stays importable under every multiprocessing
    start method.
    """
    return ScenarioJob.from_json(payload).execute().to_json()


def error_class(outcome: JobOutcome) -> Optional[str]:
    """Original exception class name from a failed outcome's traceback.

    Worker tracebacks end in ``"pkg.mod.SomeError: detail"``; the bare
    class name is what belongs in a metric key.  Non-error statuses
    (timeout, crashed) carry prose, not tracebacks — they return None.
    """
    if outcome.status != STATUS_ERROR or not outcome.error:
        return None
    for line in reversed(outcome.error.strip().splitlines()):
        line = line.strip()
        if not line or line.startswith(("File ", "Traceback")):
            continue
        qualified = line.split(":", 1)[0].strip()
        if not qualified or " " in qualified:
            continue
        return qualified.rpartition(".")[2]
    return None


def add_pool_args(parser: argparse.ArgumentParser) -> None:
    """Install the worker-pool retry knobs shared by the CLI drivers."""
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout in seconds (parallel mode only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retry budget for crashed/timed-out jobs (default: 1)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base retry backoff in seconds, doubling per attempt "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--retry-errors",
        action="store_true",
        help="also retry jobs that failed with a clean exception "
        "(deterministic here, so off by default)",
    )


def pool_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """Executor keyword arguments from :func:`add_pool_args` options."""
    return dict(
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        retry_errors=args.retry_errors,
    )


@dataclass
class ExecStats:
    """Counters for one Executor's lifetime."""

    submitted: int = 0
    unique: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    retries: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of submissions served without a simulation."""
        if self.submitted == 0:
            return 0.0
        return 1.0 - self.executed / self.submitted

    def summary(self) -> str:
        line = (
            f"{self.submitted} submitted, {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.memo_hits} memo hits, "
            f"{self.failed} failed ({100 * self.hit_rate:.0f}% served "
            "without simulation)"
        )
        if self.retries:
            line += f", {self.retries} retried"
        return line


class Executor:
    """Runs :class:`ScenarioJob` sets through cache + memo + pool."""

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, str, None] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.5,
        retry_errors: bool = False,
        progress: Optional[Callable[[PoolEvent], None]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.cache = ResultCache(cache) if isinstance(cache, str) else cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retry_errors = retry_errors
        self.progress = progress
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = ExecStats()
        self.failures: List[JobFailedError] = []
        self._memo: Dict[str, "ScenarioResult"] = {}
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # progress plumbing
    # ------------------------------------------------------------------
    def _emit(self, event: PoolEvent) -> None:
        """Fan a pool event out to the callback and the tracer.

        With a tracer attached, executor progress lands on an ``exec``
        counter track (jobs done / in flight over wall-clock seconds),
        viewable alongside simulation traces in Perfetto.
        """
        if self.progress is not None:
            self.progress(event)
        if self.tracer is not None and self.tracer.enabled:
            ts = time.monotonic() - self._t0
            self.tracer.counter("exec", "jobs_done", ts, event.done)
            if event.kind == "done":
                self.tracer.instant(
                    "exec", f"{event.label}:{event.status}", ts
                )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        jobs: Sequence[ScenarioJob],
        allow_failures: bool = False,
    ) -> List[Optional["ScenarioResult"]]:
        """Run *jobs*, returning results in submission order.

        A failed job raises :class:`JobFailedError` (the first failure,
        with the worker's original traceback) unless *allow_failures* is
        true, in which case its slot holds ``None`` and the error is
        appended to :attr:`failures`.
        """
        from repro.bench.runner import ScenarioResult

        jobs = list(jobs)
        self.stats.submitted += len(jobs)
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("exec.submitted", len(jobs))
        keys = [job.key for job in jobs]

        # Resolve memo and cache hits; collect unique misses in order.
        misses: List[int] = []  # index of first occurrence per unique key
        seen_this_call: Dict[str, int] = {}
        metered = metrics.enabled
        for i, (job, key) in enumerate(zip(jobs, keys)):
            if key in self._memo or key in seen_this_call:
                self.stats.memo_hits += 1
                if metered:
                    metrics.inc("exec.memo_hits")
                continue
            if self.cache is not None and job.cacheable:
                cached = self.cache.get(job)
                if cached is not None:
                    self._memo[key] = cached
                    self.stats.cache_hits += 1
                    if metered:
                        metrics.inc("exec.cache_hits")
                    continue
            seen_this_call[key] = i
            misses.append(i)
        self.stats.unique += len(misses)
        if metered:
            metrics.inc("exec.unique", len(misses))

        # Execute the misses.
        outcomes: Dict[int, JobOutcome] = {}
        if misses:
            if self.workers == 1:
                outcomes = self._run_serial([jobs[i] for i in misses], misses)
            else:
                outcomes = self._run_pool([jobs[i] for i in misses], misses)

        for i, outcome in outcomes.items():
            job = jobs[i]
            if outcome.attempts > 1:
                self.stats.retries += outcome.attempts - 1
            if metered:
                # Derived from the JobOutcome, which both backends
                # produce identically for clean runs — snapshots stay
                # byte-identical across worker counts.  Retries only
                # happen on crash/timeout, so exec.retries stays absent
                # from healthy snapshots too.
                metrics.inc(f"exec.outcome.{outcome.status}")
                if outcome.attempts > 1:
                    metrics.inc("exec.retries", outcome.attempts - 1)
                cls = error_class(outcome)
                if cls is not None:
                    metrics.inc(f"exec.error.{cls}")
            if outcome.ok:
                result = ScenarioResult.from_json(outcome.value)
                self._memo[keys[i]] = result
                self.stats.executed += 1
                if metered:
                    metrics.inc("exec.executed")
                if self.cache is not None and job.cacheable:
                    self.cache.put(job, result)
            else:
                self.stats.failed += 1
                if metered:
                    metrics.inc("exec.failed")
                failure = JobFailedError(job, outcome)
                self.failures.append(failure)
                if not allow_failures:
                    raise failure

        return [self._memo.get(key) for key in keys]

    def run(self, job: ScenarioJob) -> "ScenarioResult":
        """Convenience wrapper: submit one job, return its result."""
        result = self.submit([job])[0]
        assert result is not None
        return result

    def footer(self) -> str:
        """One-line end-of-run summary for CLI drivers."""
        wall = time.monotonic() - self._t0
        return f"[exec] {self.stats.summary()} in {wall:.1f}s wall"

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _run_serial(
        self, jobs: List[ScenarioJob], indices: List[int]
    ) -> Dict[int, JobOutcome]:
        outcomes: Dict[int, JobOutcome] = {}
        total = len(jobs)
        for n, (job, index) in enumerate(zip(jobs, indices)):
            self._emit(
                PoolEvent(
                    kind="start", index=index, label=job.label,
                    done=n, total=total,
                )
            )
            start = time.monotonic()
            try:
                value = execute_job_payload(job.to_json())
            except Exception:
                import traceback

                outcome = JobOutcome(
                    index=index,
                    status="error",
                    error=traceback.format_exc(),
                    duration=time.monotonic() - start,
                )
            else:
                outcome = JobOutcome(
                    index=index,
                    status=STATUS_OK,
                    value=value,
                    duration=time.monotonic() - start,
                )
            outcomes[index] = outcome
            self._emit(
                PoolEvent(
                    kind="done", index=index, label=job.label,
                    status=outcome.status, done=n + 1, total=total,
                )
            )
        return outcomes

    def _run_pool(
        self, jobs: List[ScenarioJob], indices: List[int]
    ) -> Dict[int, JobOutcome]:
        pool = WorkerPool(
            workers=self.workers,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            retry_errors=self.retry_errors,
            progress=self._emit,
            metrics=self.metrics,
        )
        pool_outcomes = pool.run(
            [job.to_json() for job in jobs],
            execute_job_payload,
            labels=[job.label for job in jobs],
        )
        return {
            index: outcome
            for index, outcome in zip(indices, pool_outcomes)
        }

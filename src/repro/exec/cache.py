"""Content-addressed on-disk result cache.

Layout (under the cache root)::

    ab/abcdef01....json      # one JSON payload per job key, sharded by
                             # the key's first two hex chars

Each payload stores the job spec, the serialized
:class:`~repro.bench.runner.ScenarioResult`, and the code fingerprint
the result was produced under.  Keys already include the fingerprint
(see :meth:`ScenarioJob.key`), so stale entries are never *served* after
a code change — ``prune`` exists to reclaim their disk space.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
and interrupted runs can never leave a half-written payload that a later
run would trust; unreadable payloads are treated as misses.

CLI::

    python -m repro.exec.cache info            # entry count, size, dir
    python -m repro.exec.cache ls              # one line per entry
    python -m repro.exec.cache prune           # drop stale-code entries
    python -m repro.exec.cache clear           # drop everything
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.exec.jobs import ScenarioJob, code_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.runner import ScenarioResult

#: Override with the ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = os.path.join(
    os.path.expanduser("~"), ".cache", "repro-sbrp"
)


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """Maps job keys to persisted :class:`ScenarioResult` payloads."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = Path(root if root is not None else default_cache_dir())

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def load_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw payload for *key*, or None on miss/corruption."""
        try:
            with self.path(key).open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            return None
        return payload

    def get(self, job: ScenarioJob) -> Optional["ScenarioResult"]:
        from repro.bench.runner import ScenarioResult

        payload = self.load_payload(job.key)
        if payload is None:
            return None
        try:
            return ScenarioResult.from_json(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def __contains__(self, job: ScenarioJob) -> bool:
        return self.path(job.key).exists()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def put(self, job: ScenarioJob, result: "ScenarioResult") -> Path:
        """Atomically persist *result* under *job*'s key."""
        target = self.path(job.key)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": job.key,
            "spec_hash": job.spec_hash,
            "code": code_fingerprint(),
            "job": job.to_json(),
            "result": result.to_json(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=f".{job.key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return target

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.json"))

    def keys(self) -> List[str]:
        return [p.stem for p in self._entry_paths()]

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Yield every readable payload (corrupt files are skipped)."""
        for path in self._entry_paths():
            payload = self.load_payload(path.stem)
            if payload is not None:
                yield payload

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entry_paths())

    def prune(self) -> int:
        """Remove entries from other code versions (and corrupt files)."""
        current = code_fingerprint()
        removed = 0
        for path in list(self._entry_paths()):
            payload = self.load_payload(path.stem)
            if payload is None or payload.get("code") != current:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.cache",
        description="Inspect and maintain the scenario-result cache.",
    )
    # --cache-dir is valid both before and after the subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS,  # don't clobber a pre-subcommand value
        help=f"cache root (default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cache-dir", default=None, help=argparse.SUPPRESS
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", parents=[common], help="entry count and total size")
    sub.add_parser("ls", parents=[common], help="one line per cached result")
    sub.add_parser(
        "prune", parents=[common], help="drop entries from other code versions"
    )
    sub.add_parser("clear", parents=[common], help="drop every entry")
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir)
    if args.command == "info":
        print(f"cache dir : {cache.root}")
        print(f"entries   : {len(cache)}")
        print(f"size      : {cache.size_bytes()} bytes")
        current = code_fingerprint()
        stale = sum(1 for e in cache.entries() if e.get("code") != current)
        print(f"stale     : {stale} (other code versions; `prune` reclaims)")
    elif args.command == "ls":
        for entry in cache.entries():
            job = entry.get("job", {})
            result = entry.get("result", {})
            print(
                f"{entry.get('key', '?')[:12]}  "
                f"{job.get('app', '?'):10s}  "
                f"{result.get('label', '?'):12s}  "
                f"mode={job.get('mode', '?'):8s}  "
                f"cycles={result.get('cycles', float('nan')):.0f}"
            )
    elif args.command == "prune":
        print(f"pruned {cache.prune()} entries from {cache.root}")
    elif args.command == "clear":
        print(f"cleared {cache.clear()} entries from {cache.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

"""Run the full paper evaluation end-to-end through one Executor.

Usage::

    python -m repro.exec.sweep --workers 4                  # everything
    python -m repro.exec.sweep --figures 6 8 --apps gpkvs   # a subset
    python -m repro.exec.sweep --preset paper --workers 8   # full sizes

All selected figure drivers and ablations share one
:class:`~repro.exec.Executor`, so the Epoch-far/Epoch-near baselines
that recur across figures simulate once, and a warm ``--cache-dir``
makes a repeat invocation perform **zero** simulations
(``--assert-all-cached`` turns that into an exit-code check for CI).
``--out`` writes only the tables, so two invocations that agree on the
data produce byte-identical files regardless of workers or cache state.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench.ablations import ablation_coalescing, ablation_drain_policy
from repro.bench.figures import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10a,
    figure10b,
    figure10c,
    figure11,
)
from repro.bench.workloads import APP_ORDER, SCOPED_APPS, WORKLOADS
from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.executor import Executor, add_pool_args, pool_kwargs
from repro.exec.pool import PoolEvent

#: Driver registry in presentation order.  Figure 7 only covers the
#: apps with inter-thread scoped PMO.
FIGURES: Dict[str, Callable] = {
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10a": figure10a,
    "10b": figure10b,
    "10c": figure10c,
    "11": figure11,
    "drain": ablation_drain_policy,
    "coalescing": ablation_coalescing,
}

_SCOPED_ONLY = {"7"}
_NO_TRACE_DIR = {"11", "drain", "coalescing"}


def _progress_printer(stream) -> Callable[[PoolEvent], None]:
    def emit(event: PoolEvent) -> None:
        if event.kind == "done":
            print(
                f"  [{event.done}/{event.total}] {event.label}: {event.status}",
                file=stream,
            )
        elif event.kind == "retry":
            print(
                f"  retrying {event.label} (attempt {event.attempt} "
                f"ended in {event.status})",
                file=stream,
            )

    return emit


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.sweep",
        description="Regenerate the paper's evaluation through the "
        "parallel scenario executor.",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=sorted(WORKLOADS),
        help="workload preset (default: quick)",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=list(FIGURES),
        choices=list(FIGURES),
        metavar="FIG",
        help=f"which drivers to run (default: all of {', '.join(FIGURES)})",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        default=None,
        choices=APP_ORDER,
        metavar="APP",
        help="restrict every figure to these apps (default: all)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process fallback)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-sbrp)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="write per-scenario traces here (disables caching of the "
        "traced jobs)",
    )
    add_pool_args(parser)
    parser.add_argument(
        "--out",
        default=None,
        help="also write the tables (and nothing else) to this file",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress"
    )
    parser.add_argument(
        "--assert-all-cached",
        action="store_true",
        help="exit non-zero if any job had to be simulated (CI check "
        "that a warm cache serves the whole sweep)",
    )
    args = parser.parse_args(argv)

    cache = None
    if not args.no_cache:
        cache = ResultCache(
            args.cache_dir if args.cache_dir is not None else default_cache_dir()
        )
    executor = Executor(
        workers=args.workers,
        cache=cache,
        progress=None if args.quiet else _progress_printer(sys.stderr),
        **pool_kwargs(args),
    )

    started = time.monotonic()
    tables = []
    for name in args.figures:
        driver = FIGURES[name]
        apps = args.apps
        if name in _SCOPED_ONLY:
            pool = apps if apps is not None else APP_ORDER
            apps = [a for a in pool if a in SCOPED_APPS]
            if not apps:
                print(
                    f"-- skipping figure {name}: no scoped apps selected",
                    file=sys.stderr,
                )
                continue
        kwargs = dict(preset=args.preset, apps=apps, executor=executor)
        if args.trace_dir is not None and name not in _NO_TRACE_DIR:
            kwargs["trace_dir"] = args.trace_dir
        print(f"-- running {driver.__name__} --", file=sys.stderr)
        tables.append(driver(**kwargs))

    elapsed = time.monotonic() - started
    body = "\n\n".join(table.to_ascii() for table in tables) + "\n"
    print(body)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(body)

    stats = executor.stats
    print(f"sweep finished in {elapsed:.1f}s", file=sys.stderr)
    print(executor.footer(), file=sys.stderr)
    if cache is not None:
        print(
            f"cache: {len(cache)} entries at {cache.root}", file=sys.stderr
        )
    if args.assert_all_cached and stats.executed > 0:
        print(
            f"--assert-all-cached: FAILED ({stats.executed} jobs were "
            "simulated; expected a fully warm cache)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

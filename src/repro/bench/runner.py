"""Scenario runner: one (app, model, system) measurement."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from repro.apps import build_app
from repro.common.config import (
    ModelName,
    PMPlacement,
    SBRPConfig,
    SystemConfig,
    paper_system,
)
from repro.system import GPUSystem


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run."""

    app: str
    label: str
    cycles: float
    stats: Mapping[str, float]

    def stat(self, name: str, default: float = 0.0) -> float:
        return self.stats.get(name, default)


def scenario_config(
    model: ModelName,
    placement: PMPlacement,
    eadr: bool = False,
    nvm_bw_scale: float = 1.0,
    pb_coverage: float = 0.5,
    window: int = 6,
    demote_block_scope: bool = False,
) -> SystemConfig:
    """A Table 1 system with the given figure-specific knobs."""
    config = paper_system(
        model, placement, eadr=eadr, nvm_bw_scale=nvm_bw_scale
    )
    return replace(
        config,
        sbrp=SBRPConfig(
            pb_coverage=pb_coverage,
            window=window,
            demote_block_scope=demote_block_scope,
        ),
    ).validate()


def run_scenario(
    app_name: str,
    config: SystemConfig,
    app_params: Optional[dict] = None,
    verify: bool = True,
) -> ScenarioResult:
    """Run one app to completion under *config* and collect metrics."""
    system = GPUSystem(config)
    app = build_app(app_name, **(app_params or {}))
    app.setup(system)
    outcome = app.run(system)
    if verify:
        system.sync()
        app.check(system, complete=True)
    return ScenarioResult(
        app=app_name,
        label=config.label,
        cycles=outcome.cycles,
        stats=system.stats.snapshot(),
    )

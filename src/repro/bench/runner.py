"""Scenario runner: one (app, model, system) measurement."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.apps import build_app
from repro.common.config import (
    ModelName,
    PMPlacement,
    SBRPConfig,
    SystemConfig,
    paper_system,
    stable_hash,
)
from repro.system import GPUSystem


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run."""

    app: str
    label: str
    cycles: float
    stats: Mapping[str, float]
    #: ASCII profile (stall attribution + persist lifecycle) when the
    #: scenario ran with tracing enabled; None otherwise.
    profile: Optional[str] = field(default=None, compare=False)
    #: Mode-specific structured payload (the fault campaign stores its
    #: per-crash-point classification here).  Must be plain JSON.
    detail: Optional[Dict[str, Any]] = None
    #: Unified metrics snapshot (``GPUSystem.metrics_snapshot()``) when
    #: the scenario ran with live metrics enabled; None otherwise.
    metrics: Optional[Dict[str, Any]] = None

    def stat(self, name: str, default: float = 0.0) -> float:
        return self.stats.get(name, default)

    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON form; :meth:`from_json` reverses it exactly."""
        return {
            "app": self.app,
            "label": self.label,
            "cycles": self.cycles,
            "stats": dict(self.stats),
            "profile": self.profile,
            "detail": self.detail,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "ScenarioResult":
        return ScenarioResult(
            app=data["app"],
            label=data["label"],
            cycles=float(data["cycles"]),
            stats={k: float(v) for k, v in data["stats"].items()},
            profile=data.get("profile"),
            detail=data.get("detail"),
            metrics=data.get("metrics"),
        )


def scenario_config(
    model: ModelName,
    placement: PMPlacement,
    eadr: bool = False,
    nvm_bw_scale: float = 1.0,
    pb_coverage: float = 0.5,
    window: int = 6,
    demote_block_scope: bool = False,
) -> SystemConfig:
    """A Table 1 system with the given figure-specific knobs."""
    config = paper_system(
        model, placement, eadr=eadr, nvm_bw_scale=nvm_bw_scale
    )
    return replace(
        config,
        sbrp=SBRPConfig(
            pb_coverage=pb_coverage,
            window=window,
            demote_block_scope=demote_block_scope,
        ),
    ).validate()


def scenario_stem(
    app_name: str,
    config: SystemConfig,
    app_params: Optional[dict] = None,
    trace_tag: Optional[str] = None,
) -> str:
    """Filename stem for a scenario's trace artifacts.

    The stem ends in a short hash of (app, config, app_params) so sweep
    points that share a config label but differ in any parameter —
    including app params alone — never collide on disk.
    """
    digest = stable_hash(
        {
            "app": app_name,
            "config": config.to_dict(),
            "app_params": dict(app_params or {}),
        }
    )
    name = f"{app_name}-{config.label}"
    if trace_tag:
        name += f"-{trace_tag}"
    return f"{name}-{digest[:8]}"


def run_scenario(
    app_name: str,
    config: SystemConfig,
    app_params: Optional[dict] = None,
    verify: bool = True,
    trace: bool = False,
    trace_dir: Optional[str] = None,
    trace_tag: Optional[str] = None,
    metrics: bool = False,
) -> ScenarioResult:
    """Run one app to completion under *config* and collect metrics.

    With ``trace=True`` (implied by ``trace_dir``) the run is traced and
    the result carries an ASCII profile.  ``trace_dir`` additionally
    writes ``{stem}.trace.json`` (Chrome/Perfetto) and
    ``{stem}.counters.csv`` into that directory, with the stem from
    :func:`scenario_stem`; *trace_tag* adds a human-readable marker for
    sweep points that share a config label.  ``metrics=True`` enables
    the live :class:`~repro.metrics.registry.MetricsRegistry` and
    attaches its unified snapshot to the result.
    """
    traced = trace or trace_dir is not None
    system = GPUSystem(config, trace=traced, metrics=metrics)
    app = build_app(app_name, **(app_params or {}))
    app.setup(system)
    outcome = app.run(system)
    if verify:
        system.sync()
        app.check(system, complete=True)
    profile: Optional[str] = None
    if traced:
        profile = system.trace_report()
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            stem = os.path.join(
                trace_dir,
                scenario_stem(app_name, config, app_params, trace_tag),
            )
            system.write_trace(stem + ".trace.json")
            system.write_trace_csv(stem + ".counters.csv")
    return ScenarioResult(
        app=app_name,
        label=config.label,
        cycles=outcome.cycles,
        stats=system.stats.snapshot(),
        profile=profile,
        metrics=system.metrics_snapshot() if metrics else None,
    )

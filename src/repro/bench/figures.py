"""One driver per figure of the paper's evaluation (Section 7).

Every driver returns a :class:`~repro.bench.report.FigureTable` whose
rows/series mirror the paper's plot, so ``print(table.to_ascii())``
reproduces the figure as a table.  All speedups are "higher is better"
and use the paper's baselines (epoch-far for Figure 6; epoch-near for
the sensitivity studies; epoch for recovery).
"""

from __future__ import annotations

from statistics import geometric_mean
from typing import Dict, List, Optional

from repro.apps import build_app
from repro.bench.report import FigureTable
from repro.bench.runner import run_scenario, scenario_config
from repro.bench.workloads import APP_ORDER, SCOPED_APPS, workload
from repro.common.config import ModelName, PMPlacement
from repro.crash import CrashHarness

_FAR = PMPlacement.FAR
_NEAR = PMPlacement.NEAR


def _apps(apps: Optional[List[str]]) -> List[str]:
    return apps if apps is not None else list(APP_ORDER)


def _tag(label: str) -> str:
    """Sweep label -> filesystem-friendly trace tag."""
    return label.replace("%", "pct").replace(" ", "_")


def _with_mean(table: FigureTable, keys: List[str]) -> None:
    means = {
        series: geometric_mean(
            [row[series] for row in table.rows if row[table.row_key] in keys]
        )
        for series in table.series
    }
    table.add_row("gmean", means)


def figure6(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
) -> FigureTable:
    """Figure 6: speedup over epoch-far of GPM / SBRP-far / epoch-near /
    SBRP-near for every application."""
    names = _apps(apps)
    series = ["GPM", "Epoch-far", "SBRP-far", "Epoch-near", "SBRP-near"]
    table = FigureTable("Figure 6: speedup over epoch-far", "app", series)
    scenarios = {
        "GPM": scenario_config(ModelName.GPM, _FAR),
        "Epoch-far": scenario_config(ModelName.EPOCH, _FAR),
        "SBRP-far": scenario_config(ModelName.SBRP, _FAR),
        "Epoch-near": scenario_config(ModelName.EPOCH, _NEAR),
        "SBRP-near": scenario_config(ModelName.SBRP, _NEAR),
    }
    for app in names:
        params = workload(app, preset)
        cycles = {
            label: run_scenario(app, cfg, params, trace_dir=trace_dir).cycles
            for label, cfg in scenarios.items()
        }
        base = cycles["Epoch-far"]
        table.add_row(app, {label: base / c for label, c in cycles.items()})
    _with_mean(table, names)
    return table


def figure7(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
) -> FigureTable:
    """Figure 7: contribution of buffers vs scopes to SBRP's speedup.

    Demoting every block-scope pAcq/pRel to device scope leaves only the
    buffering benefit; the remainder of the full-SBRP speedup is
    attributed to scopes (the paper's methodology).
    """
    names = apps if apps is not None else list(SCOPED_APPS)
    series = [
        "SBRP-far buffers",
        "SBRP-far scopes",
        "SBRP-near buffers",
        "SBRP-near scopes",
    ]
    table = FigureTable("Figure 7: speedup breakdown (fraction)", "app", series)
    for app in names:
        params = workload(app, preset)
        values: Dict[str, float] = {}
        for placement, tag in ((_FAR, "far"), (_NEAR, "near")):
            epoch = run_scenario(
                app,
                scenario_config(ModelName.EPOCH, placement),
                params,
                trace_dir=trace_dir,
            ).cycles
            full = run_scenario(
                app,
                scenario_config(ModelName.SBRP, placement),
                params,
                trace_dir=trace_dir,
            ).cycles
            demoted = run_scenario(
                app,
                scenario_config(
                    ModelName.SBRP, placement, demote_block_scope=True
                ),
                params,
                trace_dir=trace_dir,
                trace_tag="demoted",
            ).cycles
            total_gain = max(1e-9, epoch / full - 1.0)
            buffer_gain = max(0.0, epoch / demoted - 1.0)
            buffers = min(1.0, buffer_gain / total_gain)
            values[f"SBRP-{tag} buffers"] = buffers
            values[f"SBRP-{tag} scopes"] = 1.0 - buffers
        table.add_row(app, values)
    return table


def figure8(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
) -> FigureTable:
    """Figure 8: L1 read misses for NVM data, normalized to epoch-far
    (lower is better)."""
    names = _apps(apps)
    series = ["Epoch-far", "SBRP-far", "Epoch-near", "SBRP-near"]
    table = FigureTable(
        "Figure 8: normalized L1 read misses (NVM data)", "app", series
    )
    scenarios = {
        "Epoch-far": scenario_config(ModelName.EPOCH, _FAR),
        "SBRP-far": scenario_config(ModelName.SBRP, _FAR),
        "Epoch-near": scenario_config(ModelName.EPOCH, _NEAR),
        "SBRP-near": scenario_config(ModelName.SBRP, _NEAR),
    }
    for app in names:
        params = workload(app, preset)
        misses = {
            label: run_scenario(app, cfg, params, trace_dir=trace_dir).stat(
                "l1.read_miss_pm"
            )
            for label, cfg in scenarios.items()
        }
        base = max(1.0, misses["Epoch-far"])
        table.add_row(app, {label: m / base for label, m in misses.items()})
    return table


def figure9(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
) -> FigureTable:
    """Figure 9: SBRP-far speedup over epoch-far when the PM-far host is
    eADR-equipped (persists durable at the host LLC)."""
    names = _apps(apps)
    table = FigureTable("Figure 9: SBRP-far speedup with eADR", "app", ["SBRP-far"])
    for app in names:
        params = workload(app, preset)
        epoch = run_scenario(
            app,
            scenario_config(ModelName.EPOCH, _FAR, eadr=True),
            params,
            trace_dir=trace_dir,
            trace_tag="eadr",
        ).cycles
        sbrp = run_scenario(
            app,
            scenario_config(ModelName.SBRP, _FAR, eadr=True),
            params,
            trace_dir=trace_dir,
            trace_tag="eadr",
        ).cycles
        table.add_row(app, {"SBRP-far": epoch / sbrp})
    _with_mean(table, names)
    return table


def _sensitivity(
    name: str,
    knob: str,
    values: List,
    labels: List[str],
    preset: str,
    apps: Optional[List[str]],
    trace_dir: Optional[str] = None,
) -> FigureTable:
    """Common shape of Figures 10a-c: SBRP-near speedup over epoch-near
    as one SBRP knob sweeps."""
    names = _apps(apps)
    table = FigureTable(name, "app", labels)
    epoch_cfg = scenario_config(ModelName.EPOCH, _NEAR)
    for app in names:
        params = workload(app, preset)
        epoch = run_scenario(app, epoch_cfg, params, trace_dir=trace_dir).cycles
        row = {}
        for value, label in zip(values, labels):
            cfg = scenario_config(ModelName.SBRP, _NEAR, **{knob: value})
            row[label] = (
                epoch
                / run_scenario(
                    app,
                    cfg,
                    params,
                    trace_dir=trace_dir,
                    trace_tag=f"{knob}_{_tag(label)}",
                ).cycles
            )
        table.add_row(app, row)
    _with_mean(table, names)
    return table


def figure10a(preset: str = "quick", apps=None, trace_dir=None) -> FigureTable:
    """Figure 10a: SBRP-near speedup vs persist-buffer size (fraction of
    L1 lines covered)."""
    return _sensitivity(
        "Figure 10a: PB size sweep (SBRP-near speedup over epoch-near)",
        "pb_coverage",
        [0.125, 0.25, 0.5, 1.0],
        ["12.5%", "25%", "50%", "100%"],
        preset,
        apps,
        trace_dir,
    )


def figure10b(preset: str = "quick", apps=None, trace_dir=None) -> FigureTable:
    """Figure 10b: SBRP-near speedup vs NVM bandwidth scaling."""
    names = _apps(apps)
    labels = ["50%", "100%", "200%"]
    table = FigureTable(
        "Figure 10b: NVM bandwidth sweep (SBRP-near speedup over epoch-near)",
        "app",
        labels,
    )
    for app in names:
        params = workload(app, preset)
        row = {}
        for scale, label in zip([0.5, 1.0, 2.0], labels):
            tag = f"bw_{_tag(label)}"
            epoch = run_scenario(
                app,
                scenario_config(ModelName.EPOCH, _NEAR, nvm_bw_scale=scale),
                params,
                trace_dir=trace_dir,
                trace_tag=tag,
            ).cycles
            sbrp = run_scenario(
                app,
                scenario_config(ModelName.SBRP, _NEAR, nvm_bw_scale=scale),
                params,
                trace_dir=trace_dir,
                trace_tag=tag,
            ).cycles
            row[label] = epoch / sbrp
        table.add_row(app, row)
    _with_mean(table, names)
    return table


def figure10c(preset: str = "quick", apps=None, trace_dir=None) -> FigureTable:
    """Figure 10c: SBRP-near speedup vs drain window size."""
    return _sensitivity(
        "Figure 10c: window-size sweep (SBRP-near speedup over epoch-near)",
        "window",
        [2, 4, 6, 8, 10],
        ["2", "4", "6", "8", "10"],
        preset,
        apps,
        trace_dir,
    )


def figure11(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
) -> FigureTable:
    """Figure 11: recovery-kernel runtime under epoch-near and SBRP-near
    after a worst-case crash, normalized to epoch-near (lower is
    better).

    *trace_dir* is accepted for a uniform driver signature but unused:
    the CrashHarness replays partial executions on throwaway systems, so
    its recovery runs are not traced.
    """
    names = _apps(apps)
    series = ["Epoch", "SBRP"]
    table = FigureTable(
        "Figure 11: normalized recovery runtime (PM-near)", "app", series
    )
    for app in names:
        params = workload(app, preset)
        cycles = {}
        for label, model in (("Epoch", ModelName.EPOCH), ("SBRP", ModelName.SBRP)):
            harness = CrashHarness(
                lambda a=app, p=params: build_app(a, **p),
                scenario_config(model, _NEAR),
            )
            cycles[label] = harness.recovery_cycles_at_worst_case()
        base = max(1.0, cycles["Epoch"])
        table.add_row(app, {label: c / base for label, c in cycles.items()})
    _with_mean(table, names)
    return table

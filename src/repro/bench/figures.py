"""One driver per figure of the paper's evaluation (Section 7).

Every driver returns a :class:`~repro.bench.report.FigureTable` whose
rows/series mirror the paper's plot, so ``print(table.to_ascii())``
reproduces the figure as a table.  All speedups are "higher is better"
and use the paper's baselines (epoch-far for Figure 6; epoch-near for
the sensitivity studies; epoch for recovery).

Drivers declare their scenario sets as :class:`~repro.exec.ScenarioJob`
lists and submit them through an :class:`~repro.exec.Executor` in one
batch — so a shared executor deduplicates the baselines that recur
across figures, a result cache skips anything ever simulated, and
``workers > 1`` fans the batch out across processes.  Passing no
executor gives a plain serial, uncached run (the byte-identical
reference path).
"""

from __future__ import annotations

from statistics import geometric_mean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.report import FigureTable
from repro.bench.runner import ScenarioResult, scenario_config
from repro.bench.workloads import APP_ORDER, SCOPED_APPS, workload
from repro.common.config import ModelName, PMPlacement
from repro.exec.executor import Executor
from repro.exec.jobs import MODE_RECOVERY, ScenarioJob

_FAR = PMPlacement.FAR
_NEAR = PMPlacement.NEAR


def _apps(apps: Optional[List[str]]) -> List[str]:
    return apps if apps is not None else list(APP_ORDER)


def _tag(label: str) -> str:
    """Sweep label -> filesystem-friendly trace tag."""
    return label.replace("%", "pct").replace(" ", "_")


def _executor(executor: Optional[Executor]) -> Executor:
    """The given executor, or a fresh serial uncached one."""
    return executor if executor is not None else Executor(workers=1)


def _submit(
    executor: Optional[Executor],
    jobs: Sequence[Tuple[object, ScenarioJob]],
) -> Dict[object, ScenarioResult]:
    """Submit ``(slot, job)`` pairs in order; map slots to results."""
    results = _executor(executor).submit([job for _, job in jobs])
    return {slot: result for (slot, _), result in zip(jobs, results)}


def _with_mean(table: FigureTable, keys: List[str]) -> None:
    means = {
        series: geometric_mean(
            [row[series] for row in table.rows if row[table.row_key] in keys]
        )
        for series in table.series
    }
    table.add_row("gmean", means)


def figure6(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Figure 6: speedup over epoch-far of GPM / SBRP-far / epoch-near /
    SBRP-near for every application."""
    names = _apps(apps)
    series = ["GPM", "Epoch-far", "SBRP-far", "Epoch-near", "SBRP-near"]
    table = FigureTable("Figure 6: speedup over epoch-far", "app", series)
    scenarios = {
        "GPM": scenario_config(ModelName.GPM, _FAR),
        "Epoch-far": scenario_config(ModelName.EPOCH, _FAR),
        "SBRP-far": scenario_config(ModelName.SBRP, _FAR),
        "Epoch-near": scenario_config(ModelName.EPOCH, _NEAR),
        "SBRP-near": scenario_config(ModelName.SBRP, _NEAR),
    }
    jobs = [
        (
            (app, label),
            ScenarioJob(
                app=app,
                config=cfg,
                app_params=workload(app, preset),
                trace_dir=trace_dir,
            ),
        )
        for app in names
        for label, cfg in scenarios.items()
    ]
    results = _submit(executor, jobs)
    for app in names:
        cycles = {label: results[(app, label)].cycles for label in scenarios}
        base = cycles["Epoch-far"]
        table.add_row(app, {label: base / c for label, c in cycles.items()})
    _with_mean(table, names)
    return table


def figure7(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Figure 7: contribution of buffers vs scopes to SBRP's speedup.

    Demoting every block-scope pAcq/pRel to device scope leaves only the
    buffering benefit; the remainder of the full-SBRP speedup is
    attributed to scopes (the paper's methodology).
    """
    names = apps if apps is not None else list(SCOPED_APPS)
    series = [
        "SBRP-far buffers",
        "SBRP-far scopes",
        "SBRP-near buffers",
        "SBRP-near scopes",
    ]
    table = FigureTable("Figure 7: speedup breakdown (fraction)", "app", series)
    jobs = []
    for app in names:
        params = workload(app, preset)
        for placement, tag in ((_FAR, "far"), (_NEAR, "near")):
            variants = {
                "epoch": (scenario_config(ModelName.EPOCH, placement), None),
                "full": (scenario_config(ModelName.SBRP, placement), None),
                "demoted": (
                    scenario_config(
                        ModelName.SBRP, placement, demote_block_scope=True
                    ),
                    "demoted",
                ),
            }
            for variant, (cfg, trace_tag) in variants.items():
                jobs.append(
                    (
                        (app, tag, variant),
                        ScenarioJob(
                            app=app,
                            config=cfg,
                            app_params=params,
                            trace_dir=trace_dir,
                            trace_tag=trace_tag,
                        ),
                    )
                )
    results = _submit(executor, jobs)
    for app in names:
        values: Dict[str, float] = {}
        for tag in ("far", "near"):
            epoch = results[(app, tag, "epoch")].cycles
            full = results[(app, tag, "full")].cycles
            demoted = results[(app, tag, "demoted")].cycles
            total_gain = max(1e-9, epoch / full - 1.0)
            buffer_gain = max(0.0, epoch / demoted - 1.0)
            buffers = min(1.0, buffer_gain / total_gain)
            values[f"SBRP-{tag} buffers"] = buffers
            values[f"SBRP-{tag} scopes"] = 1.0 - buffers
        table.add_row(app, values)
    return table


def figure8(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Figure 8: L1 read misses for NVM data, normalized to epoch-far
    (lower is better)."""
    names = _apps(apps)
    series = ["Epoch-far", "SBRP-far", "Epoch-near", "SBRP-near"]
    table = FigureTable(
        "Figure 8: normalized L1 read misses (NVM data)", "app", series
    )
    scenarios = {
        "Epoch-far": scenario_config(ModelName.EPOCH, _FAR),
        "SBRP-far": scenario_config(ModelName.SBRP, _FAR),
        "Epoch-near": scenario_config(ModelName.EPOCH, _NEAR),
        "SBRP-near": scenario_config(ModelName.SBRP, _NEAR),
    }
    jobs = [
        (
            (app, label),
            ScenarioJob(
                app=app,
                config=cfg,
                app_params=workload(app, preset),
                trace_dir=trace_dir,
            ),
        )
        for app in names
        for label, cfg in scenarios.items()
    ]
    results = _submit(executor, jobs)
    for app in names:
        misses = {
            label: results[(app, label)].stat("l1.read_miss_pm")
            for label in scenarios
        }
        base = max(1.0, misses["Epoch-far"])
        table.add_row(app, {label: m / base for label, m in misses.items()})
    return table


def figure9(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Figure 9: SBRP-far speedup over epoch-far when the PM-far host is
    eADR-equipped (persists durable at the host LLC)."""
    names = _apps(apps)
    table = FigureTable("Figure 9: SBRP-far speedup with eADR", "app", ["SBRP-far"])
    scenarios = {
        "epoch": scenario_config(ModelName.EPOCH, _FAR, eadr=True),
        "sbrp": scenario_config(ModelName.SBRP, _FAR, eadr=True),
    }
    jobs = [
        (
            (app, variant),
            ScenarioJob(
                app=app,
                config=cfg,
                app_params=workload(app, preset),
                trace_dir=trace_dir,
                trace_tag="eadr",
            ),
        )
        for app in names
        for variant, cfg in scenarios.items()
    ]
    results = _submit(executor, jobs)
    for app in names:
        epoch = results[(app, "epoch")].cycles
        sbrp = results[(app, "sbrp")].cycles
        table.add_row(app, {"SBRP-far": epoch / sbrp})
    _with_mean(table, names)
    return table


def _sensitivity(
    name: str,
    knob: str,
    values: List,
    labels: List[str],
    preset: str,
    apps: Optional[List[str]],
    trace_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Common shape of Figures 10a-c: SBRP-near speedup over epoch-near
    as one SBRP knob sweeps."""
    names = _apps(apps)
    table = FigureTable(name, "app", labels)
    epoch_cfg = scenario_config(ModelName.EPOCH, _NEAR)
    jobs = []
    for app in names:
        params = workload(app, preset)
        jobs.append(
            (
                (app, "epoch"),
                ScenarioJob(
                    app=app,
                    config=epoch_cfg,
                    app_params=params,
                    trace_dir=trace_dir,
                ),
            )
        )
        for value, label in zip(values, labels):
            cfg = scenario_config(ModelName.SBRP, _NEAR, **{knob: value})
            jobs.append(
                (
                    (app, label),
                    ScenarioJob(
                        app=app,
                        config=cfg,
                        app_params=params,
                        trace_dir=trace_dir,
                        trace_tag=f"{knob}_{_tag(label)}",
                    ),
                )
            )
    results = _submit(executor, jobs)
    for app in names:
        epoch = results[(app, "epoch")].cycles
        table.add_row(
            app,
            {label: epoch / results[(app, label)].cycles for label in labels},
        )
    _with_mean(table, names)
    return table


def figure10a(
    preset: str = "quick", apps=None, trace_dir=None, executor=None
) -> FigureTable:
    """Figure 10a: SBRP-near speedup vs persist-buffer size (fraction of
    L1 lines covered)."""
    return _sensitivity(
        "Figure 10a: PB size sweep (SBRP-near speedup over epoch-near)",
        "pb_coverage",
        [0.125, 0.25, 0.5, 1.0],
        ["12.5%", "25%", "50%", "100%"],
        preset,
        apps,
        trace_dir,
        executor,
    )


def figure10b(
    preset: str = "quick", apps=None, trace_dir=None, executor=None
) -> FigureTable:
    """Figure 10b: SBRP-near speedup vs NVM bandwidth scaling."""
    names = _apps(apps)
    labels = ["50%", "100%", "200%"]
    table = FigureTable(
        "Figure 10b: NVM bandwidth sweep (SBRP-near speedup over epoch-near)",
        "app",
        labels,
    )
    jobs = []
    for app in names:
        params = workload(app, preset)
        for scale, label in zip([0.5, 1.0, 2.0], labels):
            tag = f"bw_{_tag(label)}"
            for variant, model in (("epoch", ModelName.EPOCH), ("sbrp", ModelName.SBRP)):
                jobs.append(
                    (
                        (app, label, variant),
                        ScenarioJob(
                            app=app,
                            config=scenario_config(
                                model, _NEAR, nvm_bw_scale=scale
                            ),
                            app_params=params,
                            trace_dir=trace_dir,
                            trace_tag=tag,
                        ),
                    )
                )
    results = _submit(executor, jobs)
    for app in names:
        row = {}
        for label in labels:
            epoch = results[(app, label, "epoch")].cycles
            sbrp = results[(app, label, "sbrp")].cycles
            row[label] = epoch / sbrp
        table.add_row(app, row)
    _with_mean(table, names)
    return table


def figure10c(
    preset: str = "quick", apps=None, trace_dir=None, executor=None
) -> FigureTable:
    """Figure 10c: SBRP-near speedup vs drain window size."""
    return _sensitivity(
        "Figure 10c: window-size sweep (SBRP-near speedup over epoch-near)",
        "window",
        [2, 4, 6, 8, 10],
        ["2", "4", "6", "8", "10"],
        preset,
        apps,
        trace_dir,
        executor,
    )


def figure11(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Figure 11: recovery-kernel runtime under epoch-near and SBRP-near
    after a worst-case crash, normalized to epoch-near (lower is
    better).

    *trace_dir* is accepted for a uniform driver signature but unused:
    the CrashHarness replays partial executions on throwaway systems, so
    its recovery runs are not traced.
    """
    del trace_dir  # uniform signature; recovery replays are untraced
    names = _apps(apps)
    series = ["Epoch", "SBRP"]
    table = FigureTable(
        "Figure 11: normalized recovery runtime (PM-near)", "app", series
    )
    jobs = [
        (
            (app, label),
            ScenarioJob(
                app=app,
                config=scenario_config(model, _NEAR),
                app_params=workload(app, preset),
                mode=MODE_RECOVERY,
            ),
        )
        for app in names
        for label, model in (("Epoch", ModelName.EPOCH), ("SBRP", ModelName.SBRP))
    ]
    results = _submit(executor, jobs)
    for app in names:
        cycles = {label: results[(app, label)].cycles for label in series}
        base = max(1.0, cycles["Epoch"])
        table.add_row(app, {label: c / base for label, c in cycles.items()})
    _with_mean(table, names)
    return table

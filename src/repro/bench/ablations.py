"""Ablation studies beyond the paper's figures (DESIGN.md Section 6).

* :func:`ablation_drain_policy` — eager vs lazy vs window drain
  (Section 6.2 compares these qualitatively; this quantifies them).
* :func:`ablation_tracking_granularity` — per-warp Warp BM vs
  "no FSM" (every ordering point charged to all warps), quantifying the
  false ordering the paper's three masks exist to avoid.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.bench.report import FigureTable
from repro.bench.runner import run_scenario, scenario_config
from repro.bench.workloads import APP_ORDER, workload
from repro.common.config import DrainPolicy, ModelName, PMPlacement


def ablation_drain_policy(
    preset: str = "quick", apps: Optional[List[str]] = None
) -> FigureTable:
    """Speedup of each drain policy over epoch-near (SBRP-near)."""
    names = apps if apps is not None else list(APP_ORDER)
    labels = [p.value for p in DrainPolicy]
    table = FigureTable(
        "Ablation: drain policy (SBRP-near speedup over epoch-near)",
        "app",
        labels,
    )
    epoch_cfg = scenario_config(ModelName.EPOCH, PMPlacement.NEAR)
    for app in names:
        params = workload(app, preset)
        epoch = run_scenario(app, epoch_cfg, params).cycles
        row = {}
        for policy in DrainPolicy:
            cfg = scenario_config(ModelName.SBRP, PMPlacement.NEAR)
            cfg = replace(
                cfg, sbrp=replace(cfg.sbrp, drain_policy=policy)
            ).validate()
            row[policy.value] = epoch / run_scenario(app, cfg, params).cycles
        table.add_row(app, row)
    return table


def ablation_coalescing(
    preset: str = "quick", apps: Optional[List[str]] = None
) -> FigureTable:
    """How much write coalescing the persist buffer achieves: persists
    issued vs lines actually drained (higher ratio = more coalescing)."""
    names = apps if apps is not None else list(APP_ORDER)
    table = FigureTable(
        "Ablation: PB write coalescing (stores per drained line)",
        "app",
        ["stores", "lines", "coalescing"],
    )
    for app in names:
        params = workload(app, preset)
        result = run_scenario(
            app, scenario_config(ModelName.SBRP, PMPlacement.NEAR), params
        )
        stores = result.stat("store.pm_lines")
        lines = max(1.0, result.stat("persist.lines"))
        table.add_row(
            app, {"stores": stores, "lines": lines, "coalescing": stores / lines}
        )
    return table

"""Ablation studies beyond the paper's figures (DESIGN.md Section 6).

* :func:`ablation_drain_policy` — eager vs lazy vs window drain
  (Section 6.2 compares these qualitatively; this quantifies them).
* :func:`ablation_coalescing` — how much write coalescing the persist
  buffer achieves.

Like the figure drivers, ablations declare jobs and submit them through
a shared :class:`~repro.exec.Executor`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.bench.report import FigureTable
from repro.bench.runner import scenario_config
from repro.bench.workloads import APP_ORDER, workload
from repro.common.config import DrainPolicy, ModelName, PMPlacement
from repro.exec.executor import Executor
from repro.exec.jobs import ScenarioJob

from repro.bench.figures import _submit


def ablation_drain_policy(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """Speedup of each drain policy over epoch-near (SBRP-near)."""
    names = apps if apps is not None else list(APP_ORDER)
    labels = [p.value for p in DrainPolicy]
    table = FigureTable(
        "Ablation: drain policy (SBRP-near speedup over epoch-near)",
        "app",
        labels,
    )
    epoch_cfg = scenario_config(ModelName.EPOCH, PMPlacement.NEAR)
    jobs = []
    for app in names:
        params = workload(app, preset)
        jobs.append(
            ((app, "epoch"), ScenarioJob(app=app, config=epoch_cfg, app_params=params))
        )
        for policy in DrainPolicy:
            cfg = scenario_config(ModelName.SBRP, PMPlacement.NEAR)
            cfg = replace(
                cfg, sbrp=replace(cfg.sbrp, drain_policy=policy)
            ).validate()
            jobs.append(
                ((app, policy.value), ScenarioJob(app=app, config=cfg, app_params=params))
            )
    results = _submit(executor, jobs)
    for app in names:
        epoch = results[(app, "epoch")].cycles
        table.add_row(
            app,
            {
                policy.value: epoch / results[(app, policy.value)].cycles
                for policy in DrainPolicy
            },
        )
    return table


def ablation_coalescing(
    preset: str = "quick",
    apps: Optional[List[str]] = None,
    executor: Optional[Executor] = None,
) -> FigureTable:
    """How much write coalescing the persist buffer achieves: persists
    issued vs lines actually drained (higher ratio = more coalescing)."""
    names = apps if apps is not None else list(APP_ORDER)
    table = FigureTable(
        "Ablation: PB write coalescing (stores per drained line)",
        "app",
        ["stores", "lines", "coalescing"],
    )
    jobs = [
        (
            app,
            ScenarioJob(
                app=app,
                config=scenario_config(ModelName.SBRP, PMPlacement.NEAR),
                app_params=workload(app, preset),
            ),
        )
        for app in names
    ]
    results = _submit(executor, jobs)
    for app in names:
        result = results[app]
        stores = result.stat("store.pm_lines")
        lines = max(1.0, result.stat("persist.lines"))
        table.add_row(
            app, {"stores": stores, "lines": lines, "coalescing": stores / lines}
        )
    return table

"""Diff two ``BENCH_<n>.json`` files and flag throughput regressions.

A case regresses when its new rate drops more than ``--tolerance``
(default 25%) below the baseline.  Only cases present in both files are
compared, so a ``--smoke`` run diffs cleanly against a full baseline;
non-common cases are listed as ``added`` / ``removed`` lines, and
``--require-common`` turns any such drift into a failure (for CI runs
where the two suites must match exactly).

``--trajectory`` switches to the multi-baseline view: it discovers
every checked-in ``BENCH_<n>.json`` and prints the speedup chain —
per-link median ratios between consecutive baselines and the running
cumulative — so the whole optimisation trajectory reads as one line
per hop instead of N pairwise invocations.

Command line::

    python -m repro.bench.compare BENCH_1.json BENCH_2.json
    python -m repro.bench.compare old.json new.json --tolerance 0.10
    python -m repro.bench.compare old.json new.json --require-common
    python -m repro.bench.compare --trajectory          # BENCH_* in .
    python -m repro.bench.compare --trajectory --dir results/
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Default allowed fractional drop of cycles/sec before failing.
DEFAULT_TOLERANCE = 0.25


def compare_benchmarks(
    base: Mapping[str, Any],
    new: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    metric: str = "cycles_per_sec",
) -> Dict[str, Any]:
    """Compare two bench documents; pure function for tests and CI."""
    base_cases = base.get("cases", {})
    new_cases = new.get("cases", {})
    common = sorted(set(base_cases) & set(new_cases))
    rows: List[Dict[str, Any]] = []
    regressions = 0
    for name in common:
        old_rate = float(base_cases[name].get(metric, 0.0))
        new_rate = float(new_cases[name].get(metric, 0.0))
        if old_rate > 0:
            delta = new_rate / old_rate - 1.0
        else:
            delta = 0.0
        regressed = old_rate > 0 and new_rate < old_rate * (1.0 - tolerance)
        regressions += regressed
        rows.append(
            {
                "case": name,
                "base": old_rate,
                "new": new_rate,
                "delta": delta,
                "regressed": regressed,
            }
        )
    return {
        "metric": metric,
        "tolerance": tolerance,
        "rows": rows,
        "regressions": regressions,
        "only_base": sorted(set(base_cases) - set(new_cases)),
        "only_new": sorted(set(new_cases) - set(base_cases)),
    }


def check_speedup(
    result: Mapping[str, Any],
    min_speedup: float,
    prefix: str = "sim.",
) -> Dict[str, Any]:
    """The fast-path improvement gate: median new/base ratio over the
    cases matching *prefix* must reach *min_speedup*.

    Used by CI to hold the committed ``BENCH_2.json`` (fast timing
    core) against ``BENCH_1.json`` (pre-fastcore seed) — a future
    commit that erodes the cold-sim speedup fails the gate even while
    staying inside the ordinary regression tolerance.
    """
    ratios = {
        row["case"]: row["new"] / row["base"]
        for row in result["rows"]
        if row["case"].startswith(prefix) and row["base"] > 0
    }
    median = statistics.median(ratios.values()) if ratios else 0.0
    return {
        "prefix": prefix,
        "min_speedup": min_speedup,
        "cases": dict(sorted(ratios.items())),
        "median": median,
        "passed": bool(ratios) and median >= min_speedup,
    }


def discover_benchmarks(directory: Path) -> List[Tuple[int, Path]]:
    """Every ``BENCH_<n>.json`` under *directory*, ordered by ``n``."""
    found: List[Tuple[int, Path]] = []
    for path in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def trajectory(
    benches: List[Tuple[str, Mapping[str, Any]]],
    prefix: str = "sim.",
    metric: str = "cycles_per_sec",
) -> Dict[str, Any]:
    """The cumulative speedup chain across an ordered baseline list.

    Each link is the median new/base ratio (over *prefix* cases) of two
    consecutive baselines; ``cumulative`` is the running product, and
    ``direct`` is the first-vs-last median computed in one hop — the
    two agree exactly when every case moved uniformly, and comparing
    them shows how much case-mix drift the chain accumulated.
    """
    links: List[Dict[str, Any]] = []
    cumulative = 1.0
    for (old_name, old_doc), (new_name, new_doc) in zip(benches, benches[1:]):
        result = compare_benchmarks(old_doc, new_doc, metric=metric)
        speedup = check_speedup(result, 0.0, prefix=prefix)
        cumulative *= speedup["median"]
        links.append(
            {
                "base": old_name,
                "new": new_name,
                "median": speedup["median"],
                "cases": len(speedup["cases"]),
                "cumulative": cumulative,
            }
        )
    direct = 0.0
    if len(benches) > 1:
        first_doc, last_doc = benches[0][1], benches[-1][1]
        result = compare_benchmarks(first_doc, last_doc, metric=metric)
        direct = check_speedup(result, 0.0, prefix=prefix)["median"]
    return {
        "prefix": prefix,
        "metric": metric,
        "baselines": [name for name, _ in benches],
        "links": links,
        "cumulative": cumulative if links else 0.0,
        "direct": direct,
    }


def render_trajectory(result: Mapping[str, Any]) -> str:
    names = result["baselines"]
    if len(names) < 2:
        return "need at least two BENCH_<n>.json baselines for a trajectory\n"
    lines = [
        f"speedup trajectory [{result['prefix']}*, {result['metric']}] "
        f"over {len(names)} baselines"
    ]
    for link in result["links"]:
        lines.append(
            f"  {link['base']:14s} -> {link['new']:14s} "
            f"median x{link['median']:.2f}   cumulative x{link['cumulative']:.2f}"
        )
    lines.append(
        f"  {names[0]} -> {names[-1]} direct median x{result['direct']:.2f} "
        f"(chained x{result['cumulative']:.2f})"
    )
    return "\n".join(lines) + "\n"


def render_comparison(result: Mapping[str, Any]) -> str:
    lines = [
        f"{'case':22s} {'base':>14s} {'new':>14s} {'delta':>8s}",
    ]
    for row in result["rows"]:
        mark = "  REGRESSION" if row["regressed"] else ""
        lines.append(
            f"{row['case']:22s} {row['base']:>14.0f} {row['new']:>14.0f} "
            f"{100 * row['delta']:>+7.1f}%{mark}"
        )
    for name in result["only_base"]:
        lines.append(f"removed  {name} (only in baseline)")
    for name in result["only_new"]:
        lines.append(f"added    {name} (only in new run)")
    lines.append(
        f"{result['regressions']} regression(s) on {result['metric']} at "
        f"{100 * result['tolerance']:.0f}% tolerance over "
        f"{len(result['rows'])} common case(s)"
    )
    return "\n".join(lines) + "\n"


def load_bench(path: str) -> Dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Flag throughput regressions between two BENCH files.",
    )
    parser.add_argument(
        "base", nargs="?", default=None, help="baseline BENCH_<n>.json"
    )
    parser.add_argument(
        "new", nargs="?", default=None, help="new BENCH_<n>.json to judge"
    )
    parser.add_argument(
        "--trajectory",
        action="store_true",
        help="print the cumulative speedup chain across every "
        "BENCH_<n>.json baseline instead of diffing one pair",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path("."),
        metavar="DIR",
        help="directory searched for BENCH_<n>.json (--trajectory; "
        "default: .)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional rate drop (default: 0.25)",
    )
    parser.add_argument(
        "--metric",
        default="cycles_per_sec",
        choices=["cycles_per_sec", "events_per_sec"],
        help="rate to compare (default: cycles_per_sec)",
    )
    parser.add_argument(
        "--require-common",
        action="store_true",
        help="fail when either file has cases the other lacks",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="additionally require the median new/base ratio over the "
        "--speedup-cases cases to reach RATIO (the fast-core gate)",
    )
    parser.add_argument(
        "--speedup-cases",
        default="sim.",
        metavar="PREFIX",
        help="case-name prefix the --min-speedup gate covers "
        "(default: sim., the cold single-scenario simulations)",
    )
    args = parser.parse_args(argv)
    if args.trajectory:
        if args.base is not None or args.new is not None:
            parser.error("--trajectory discovers baselines; omit base/new")
        found = discover_benchmarks(args.dir)
        if len(found) < 2:
            parser.error(
                f"--trajectory needs at least two BENCH_<n>.json in "
                f"{args.dir} (found {len(found)})"
            )
        try:
            benches = [
                (path.name, load_bench(str(path))) for _, path in found
            ]
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load bench file: {exc}")
        result = trajectory(
            benches, prefix=args.speedup_cases, metric=args.metric
        )
        print(render_trajectory(result), end="")
        if args.min_speedup is not None and result["cumulative"] < args.min_speedup:
            print(
                f"trajectory gate: cumulative x{result['cumulative']:.2f} "
                f"below required x{args.min_speedup:.2f} (FAIL)",
                flush=True,
            )
            return 1
        return 0
    if args.base is None or args.new is None:
        parser.error("base and new bench files are required (or --trajectory)")
    try:
        base = load_bench(args.base)
        new = load_bench(args.new)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot load bench file: {exc}")
    result = compare_benchmarks(
        base, new, tolerance=args.tolerance, metric=args.metric
    )
    print(render_comparison(result), end="")
    if not result["rows"]:
        print("no common cases to compare", flush=True)
    failed = bool(result["regressions"])
    if args.min_speedup is not None:
        speedup = check_speedup(
            result, args.min_speedup, prefix=args.speedup_cases
        )
        verdict = "ok" if speedup["passed"] else "FAIL"
        print(
            f"speedup gate [{args.speedup_cases}*]: median "
            f"{speedup['median']:.2f}x vs required "
            f"{args.min_speedup:.2f}x ({verdict}, "
            f"{len(speedup['cases'])} case(s))",
            flush=True,
        )
        failed = failed or not speedup["passed"]
    drift = result["only_base"] or result["only_new"]
    if args.require_common and drift:
        print(
            f"case drift: {len(result['only_base'])} removed, "
            f"{len(result['only_new'])} added (--require-common)",
            flush=True,
        )
        return 1
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

"""Pinned microbenchmark suite: simulator throughput over time.

The suite measures *host* performance of the simulator itself — how many
simulated cycles and engine events per wall-clock second each pinned
case sustains — so that optimisation work (and regressions) show up as a
number, not a feeling.  Results land in ``BENCH_<n>.json`` (auto-
incremented, sorted keys) and are diffed with
:mod:`repro.bench.compare`.

Cases are pinned: a fixed set of cold single-scenario simulations (one
per persistency model x app on the ``small_system`` machine), one
serving-subsystem measurement (stream planning + durable transactions +
recovery-under-load; events/sec = requests served per second), one
litmus-enumeration batch, and one cache-warm case that measures how fast
the content-addressed result cache serves hits.

Command line::

    python -m repro.bench.perf                 # full suite -> BENCH_<n>.json
    python -m repro.bench.perf --smoke         # CI subset, 1 repeat, no warmup
    python -m repro.bench.perf --profile       # cProfile hotspots (one case)
    python -m repro.bench.compare OLD NEW      # regression diff
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.apps import build_app
from repro.common.config import ModelName, PMPlacement, small_system
from repro.system import GPUSystem

#: App constructor kwargs per perf case.  Module-level so tests can
#: shrink them; sized so each case runs in roughly a second.
PERF_PARAMS: Dict[str, dict] = {
    "gpkvs": dict(n_pairs=2048, capacity=4096, rounds=2),
    "reduction": dict(blocks=24, per_thread=8),
    "scan": dict(blocks=32),
}

#: Apps of the sim cases, in suite order.
PERF_APPS = ("gpkvs", "reduction", "scan")

#: Models of the sim cases, in suite order.
PERF_MODELS = (ModelName.GPM, ModelName.EPOCH, ModelName.SBRP)

#: Serve case: one SLO measurement of the serving subsystem (stream
#: planning + durable transactions + recovery-under-load).  Sized like
#: the serve smoke suite; events = requests served.
SERVE_PARAMS: Dict[str, Any] = dict(
    n_requests=96, n_keys=96, capacity=256, batch_requests=48
)

#: Litmus-enumeration case: how many corpus programs and crash points.
LITMUS_PROGRAMS = 4
LITMUS_CRASH_POINTS = 12

#: Cache-warm case: how many hits one measurement serves.
WARM_HITS = 20


@dataclass(frozen=True)
class PerfCase:
    """One pinned measurement of the suite."""

    name: str
    kind: str  # "sim" | "serve" | "soak" | "litmus" | "cache"
    model: Optional[ModelName] = None
    app: Optional[str] = None


def suite_cases(smoke: bool = False) -> List[PerfCase]:
    """The pinned case list.  ``--smoke`` keeps a representative subset
    with identical case specs, so smoke rates compare against full-suite
    baselines case-by-case."""
    cases: List[PerfCase] = []
    for model in PERF_MODELS:
        for app in PERF_APPS:
            if smoke and app != "gpkvs" and model is not ModelName.SBRP:
                continue
            cases.append(
                PerfCase(
                    name=f"sim.{model.value}.{app}",
                    kind="sim",
                    model=model,
                    app=app,
                )
            )
    cases.append(
        PerfCase(name="serve.sbrp.kvs", kind="serve", model=ModelName.SBRP)
    )
    cases.append(
        PerfCase(name="soak.sbrp.kvs", kind="soak", model=ModelName.SBRP)
    )
    cases.append(PerfCase(name="litmus.enum", kind="litmus"))
    cases.append(PerfCase(name="cache.warm", kind="cache"))
    return cases


# ----------------------------------------------------------------------
# case runners: each returns (simulated cycles, engine events)
# ----------------------------------------------------------------------
def _run_sim(case: PerfCase) -> Tuple[float, float]:
    assert case.model is not None and case.app is not None
    config = small_system(case.model, PMPlacement.FAR)
    system = GPUSystem(config)
    app = build_app(case.app, **PERF_PARAMS[case.app])
    app.setup(system)
    app.run(system)
    return system.now, float(system.gpu.engine.events_processed)


def _run_serve(case: PerfCase) -> Tuple[float, float]:
    from repro.serve.runner import run_serve_scenario

    assert case.model is not None
    result = run_serve_scenario(
        "serve_kvs", small_system(case.model), SERVE_PARAMS
    )
    return result.cycles, result.stats["serve.requests"]


def _run_soak(case: PerfCase) -> Tuple[float, float]:
    """The chaos chain as a perf case: a resilient SBRP serve stream
    through the pinned brownout+burst schedule with crash→recover→crash
    legs and the recovery oracle at every reboot — the heaviest
    composite path the simulator has (serve kernels + chronic injector
    + crash imaging + oracle recovery).  events = committed requests."""
    from dataclasses import replace

    from repro.chaos.runner import run_soak_scenario
    from repro.chaos.soak import SOAK_PARAMS, brownout_burst
    from repro.common.config import ResilienceConfig

    assert case.model is not None
    config = replace(
        small_system(case.model), resilience=ResilienceConfig(enabled=True)
    )
    result = run_soak_scenario(
        "serve_kvs",
        config,
        dict(SOAK_PARAMS),
        {
            "timeline": brownout_burst().to_json(),
            "crash_every_batches": 2,
            "crash_fraction": 0.6,
        },
    )
    return result.cycles, result.stats["soak.committed_requests"]


def _litmus_spec() -> Dict[str, Any]:
    from repro.check.corpus import corpus_programs
    from repro.check.enumerator import SMOKE_VARIANTS

    programs = corpus_programs()[:LITMUS_PROGRAMS]
    return {
        "programs": [p.to_json() for p in programs],
        "model": ModelName.SBRP.value,
        "variants": [v.to_json() for v in SMOKE_VARIANTS],
        "crash_points": LITMUS_CRASH_POINTS,
    }


def _run_litmus(case: PerfCase) -> Tuple[float, float]:
    from repro.check.runner import run_check_batch

    result = run_check_batch(_litmus_spec())
    # Engine event counts never leave check_program; the rate that
    # matters here is enumerated-simulation cycles per second.
    return result.cycles, 0.0


def _warm_job():
    from repro.exec.jobs import ScenarioJob

    return ScenarioJob(
        app="gpkvs",
        config=small_system(ModelName.SBRP, PMPlacement.FAR),
        app_params=PERF_PARAMS["gpkvs"],
        verify=False,
    )


def _prime_cache(cache_root: str) -> None:
    from repro.exec.executor import Executor

    Executor(workers=1, cache=cache_root).run(_warm_job())


def _run_cache(case: PerfCase, cache_root: str) -> Tuple[float, float]:
    """Serve WARM_HITS cache hits through fresh Executors.

    cycles = simulated cycles delivered from the cache; events = jobs
    served — so cycles/sec is cache-serving bandwidth and events/sec is
    hit throughput.
    """
    from repro.exec.executor import Executor

    job = _warm_job()
    cycles = 0.0
    for _ in range(WARM_HITS):
        result = Executor(workers=1, cache=cache_root).run(job)
        cycles += result.cycles
    return cycles, float(WARM_HITS)


def run_case_once(case: PerfCase, cache_root: Optional[str] = None) -> Dict[str, float]:
    """One timed measurement of *case*."""
    start = time.perf_counter()
    if case.kind == "sim":
        cycles, events = _run_sim(case)
    elif case.kind == "serve":
        cycles, events = _run_serve(case)
    elif case.kind == "soak":
        cycles, events = _run_soak(case)
    elif case.kind == "litmus":
        cycles, events = _run_litmus(case)
    elif case.kind == "cache":
        assert cache_root is not None
        cycles, events = _run_cache(case, cache_root)
    else:  # pragma: no cover - suite_cases only emits the above
        raise ValueError(f"unknown case kind {case.kind!r}")
    wall = time.perf_counter() - start
    return {"cycles": cycles, "events": events, "wall_s": wall}


def measure_case(
    case: PerfCase,
    repeats: int = 3,
    warmup: int = 1,
    cache_root: Optional[str] = None,
) -> Dict[str, Any]:
    """warmup + repeats measurements; rates from the median wall time."""
    if case.kind == "cache" and cache_root is not None:
        _prime_cache(cache_root)  # priming is setup, not measurement
    for _ in range(warmup):
        run_case_once(case, cache_root)
    runs = [run_case_once(case, cache_root) for _ in range(max(1, repeats))]
    wall = statistics.median(run["wall_s"] for run in runs)
    cycles = runs[-1]["cycles"]  # deterministic across repeats
    events = runs[-1]["events"]
    return {
        "kind": case.kind,
        "cycles": cycles,
        "events": events,
        "wall_s": wall,
        "wall_all": [run["wall_s"] for run in runs],
        "cycles_per_sec": cycles / wall if wall > 0 else 0.0,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------
_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def latest_bench_path(directory: str) -> Optional[Path]:
    """The highest-numbered ``BENCH_<n>.json`` in *directory*."""
    best: Optional[Tuple[int, Path]] = None
    for path in Path(directory).glob("BENCH_*.json"):
        match = _BENCH_RE.match(path.name)
        if match and (best is None or int(match.group(1)) > best[0]):
            best = (int(match.group(1)), path)
    return best[1] if best else None


def next_bench_path(directory: str) -> Path:
    """The next free ``BENCH_<n>.json`` slot in *directory*."""
    latest = latest_bench_path(directory)
    n = 1
    if latest is not None:
        match = _BENCH_RE.match(latest.name)
        assert match is not None
        n = int(match.group(1)) + 1
    return Path(directory) / f"BENCH_{n}.json"


def render_bench(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _profile_case(case: PerfCase, cache_root: Optional[str], top: int) -> str:
    """Run *case* once under cProfile; sim cases also run traced so the
    host hotspots land next to the simulation's own profile.

    The header names the engine path (``reference``/``fast``) so saved
    hotspot tables stay attributable once both timing cores exist."""
    import cProfile

    from repro.trace.report import render_host_hotspots

    profile = cProfile.Profile()
    if case.kind == "sim":
        assert case.model is not None and case.app is not None
        config = small_system(case.model, PMPlacement.FAR)
        header = f"# profile {case.name} [engine={config.engine}]"
        system = GPUSystem(config, trace=True)
        app = build_app(case.app, **PERF_PARAMS[case.app])
        app.setup(system)
        profile.enable()
        app.run(system)
        profile.disable()
        return (
            header
            + "\n"
            + system.trace_report()
            + "\n"
            + render_host_hotspots(profile, top=top)
        )
    # Non-sim cases build their configs internally off the same default.
    engine = small_system(ModelName.SBRP).engine
    header = f"# profile {case.name} [engine={engine}]"
    profile.enable()
    run_case_once(case, cache_root)
    profile.disable()
    return header + "\n" + render_host_hotspots(profile, top=top)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Measure simulator throughput over the pinned "
        "microbenchmark suite.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="representative subset, 1 repeat (CI gate)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="measurements per case (default: 3, smoke: 1)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="discarded warmup runs per case (default: 1; the warmup "
        "also absorbs cold-import costs, keeping rates comparable "
        "between smoke and full runs)",
    )
    parser.add_argument(
        "--dir", default=".",
        help="directory for auto-numbered BENCH_<n>.json (default: .)",
    )
    parser.add_argument(
        "--out", default=None,
        help="exact output path (overrides --dir auto-numbering)",
    )
    parser.add_argument(
        "--cases", nargs="+", default=None, metavar="CASE",
        help="restrict to these case names",
    )
    parser.add_argument(
        "--profile", nargs="?", const="sim.sbrp.gpkvs", default=None,
        metavar="CASE",
        help="print cProfile host hotspots for one case (default: "
        "sim.sbrp.gpkvs) instead of running the suite",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="rows of the --profile hotspot table (default: 20)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress"
    )
    args = parser.parse_args(argv)

    import tempfile

    cases = suite_cases(smoke=args.smoke)
    if args.cases is not None:
        known = {case.name: case for case in suite_cases(smoke=False)}
        missing = [name for name in args.cases if name not in known]
        if missing:
            parser.error(f"unknown cases {missing}; have {sorted(known)}")
        cases = [known[name] for name in args.cases]

    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as tmp:
        if args.profile is not None:
            known = {case.name: case for case in suite_cases(smoke=False)}
            if args.profile not in known:
                parser.error(
                    f"unknown case {args.profile!r}; have {sorted(known)}"
                )
            print(_profile_case(known[args.profile], tmp, args.top))
            return 0

        repeats = args.repeats if args.repeats is not None else (
            1 if args.smoke else 3
        )
        warmup = args.warmup if args.warmup is not None else 1
        results: Dict[str, Any] = {}
        for case in cases:
            result = measure_case(
                case, repeats=repeats, warmup=warmup, cache_root=tmp
            )
            results[case.name] = result
            if not args.quiet:
                print(
                    f"  {case.name:20s} {result['cycles_per_sec']:>14.0f} "
                    f"cyc/s {result['events_per_sec']:>12.0f} ev/s "
                    f"({result['wall_s']:.3f}s)",
                    file=sys.stderr,
                )

    doc = {
        "schema": 1,
        "suite": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "warmup": warmup,
        "cases": results,
    }
    out = Path(args.out) if args.out is not None else next_bench_path(args.dir)
    out.write_text(render_bench(doc), encoding="utf-8")
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

"""Workload presets for the benchmark harness.

``paper`` approximates Table 2's sizes on the Table 1 machine (scaled to
what the Python substrate sustains while filling all 30 SMs for multiple
waves); ``quick`` shrinks every app so the whole figure suite finishes
in minutes, keeping every PMO structure intact.
"""

from __future__ import annotations

from typing import Dict

#: Per-app constructor kwargs for each preset.
WORKLOADS: Dict[str, Dict[str, dict]] = {
    "quick": {
        "gpkvs": dict(n_pairs=8192, capacity=16384, rounds=2),
        "hashmap": dict(n_inserts=8192, capacity=16384, rounds=2),
        "srad": dict(side=64),
        "reduction": dict(blocks=8, per_thread=2),
        "multiqueue": dict(batches=2, blocks=8),
        "scan": dict(blocks=8),
    },
    "paper": {
        "gpkvs": dict(n_pairs=61440, capacity=131072, rounds=4),
        "hashmap": dict(n_inserts=61440, capacity=131072, rounds=4),
        "srad": dict(side=176),
        "reduction": dict(blocks=30, per_thread=4),
        "multiqueue": dict(batches=4, blocks=30),
        "scan": dict(blocks=30),
    },
}

#: Figure 6's x-axis order.
APP_ORDER = ["gpkvs", "hashmap", "srad", "reduction", "multiqueue", "scan"]

#: The apps with inter-threadblock / intra-threadblock scoped PMO
#: (Figure 7 excludes the intra-thread-only apps).
SCOPED_APPS = ["reduction", "multiqueue", "scan"]


def workload(app: str, preset: str = "quick") -> dict:
    """Constructor kwargs for *app* under *preset*."""
    try:
        return dict(WORKLOADS[preset][app])
    except KeyError:
        raise KeyError(f"no preset {preset!r} for app {app!r}") from None

"""Tabular output for the figure drivers."""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.runner import ScenarioResult


class FigureTable:
    """A figure's data: rows of series values keyed by app/config."""

    def __init__(
        self,
        name: str,
        row_key: str,
        series: Sequence[str],
    ) -> None:
        self.name = name
        self.row_key = row_key
        self.series = list(series)
        self.rows: List[Dict[str, object]] = []

    def add_row(self, key: str, values: Mapping[str, float]) -> None:
        row: Dict[str, object] = {self.row_key: key}
        for column in self.series:
            row[column] = values.get(column, float("nan"))
        self.rows.append(row)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_ascii(self, precision: int = 3) -> str:
        headers = [self.row_key] + self.series
        body = [
            [str(row[self.row_key])]
            + [f"{row[col]:.{precision}f}" for col in self.series]
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.name} ==",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=[self.row_key] + self.series)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return out.getvalue()

    def column(self, series: str) -> List[float]:
        return [float(row[series]) for row in self.rows]

    def cell(self, key: str, series: str) -> float:
        for row in self.rows:
            if row[self.row_key] == key:
                return float(row[series])
        raise KeyError(f"no row {key!r} in {self.name}")


def profile_appendix(results: Sequence["ScenarioResult"]) -> str:
    """Concatenate the profiles of traced scenario results into one
    report appendix.  Results without a profile (untraced runs) are
    skipped; an empty string means nothing was traced."""
    sections = []
    for result in results:
        if result.profile is None:
            continue
        header = f"-- {result.app} @ {result.label} --"
        sections.append(f"{header}\n{result.profile}")
    return "\n\n".join(sections)

"""Benchmark harness: regenerates every figure of the paper's Section 7.

* :mod:`~repro.bench.workloads` — workload presets (``quick`` for CI,
  ``paper`` for full-fidelity runs) per application.
* :mod:`~repro.bench.runner` — runs (app x model x system) scenarios and
  extracts the metrics each figure needs.
* :mod:`~repro.bench.figures` — one driver per figure/table: Figure 6
  (model speedups), Figure 7 (buffers-vs-scopes breakdown), Figure 8 (L1
  read misses), Figure 9 (eADR), Figures 10a-c (PB size / NVM bandwidth /
  window sweeps), Figure 11 (recovery runtime).
* :mod:`~repro.bench.report` — ASCII tables and CSV output.
"""

from repro.bench.figures import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10a,
    figure10b,
    figure10c,
    figure11,
)
from repro.bench.runner import (
    ScenarioResult,
    run_scenario,
    scenario_config,
    scenario_stem,
)
from repro.bench.workloads import WORKLOADS, workload

__all__ = [
    "WORKLOADS",
    "ScenarioResult",
    "figure10a",
    "figure10b",
    "figure10c",
    "figure11",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "run_scenario",
    "scenario_config",
    "scenario_stem",
    "workload",
]

"""Chrome/Perfetto ``trace.json`` export.

Produces the legacy Chrome trace-event JSON that ``ui.perfetto.dev``
(and ``chrome://tracing``) load directly:

* one thread track per SM warp slot (``sm0.w03``), per SM summary track,
  and per memory device (``nvm0``, ``gddr1``, ``pcie``);
* ``X`` (complete) events for warp residency intervals, kernel launches
  and device transfers;
* ``C`` (counter) tracks for PB occupancy / ACTR / WPQ depth;
* ``b``/``e`` async pairs for persist lifecycles (store → durable), so
  overlapping persists render without violating thread-track nesting.

Output is **deterministic**: keys are sorted, events are sorted by a
total order, and the file embeds the :class:`SystemConfig` snapshot
instead of any wall-clock data — two runs of the same scenario produce
byte-identical files (a test pins this, enabling diff-based regression
checks).
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import Tracer

#: pid of the GPU-side process group (SMs, warps, kernels).
GPU_PID = 1
#: pid of the memory-system process group (NVM / GDDR / PCIe).
MEM_PID = 2

_DEVICE_PREFIXES = ("nvm", "gddr", "pcie")


def jsonable(obj: object) -> object:
    """Recursively convert dataclasses / enums / tuples to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    return obj


def _pid_for(track: str) -> int:
    return MEM_PID if track.startswith(_DEVICE_PREFIXES) else GPU_PID


def _track_ids(tracer: Tracer) -> Dict[str, Tuple[int, int]]:
    """Deterministic (pid, tid) per track name: tids are assigned in
    sorted track order within each pid."""
    tracks = {track for (track, *_rest) in tracer.spans}
    tracks.update(track for (track, *_rest) in tracer.instants)
    tracks.update(track for (track, *_rest) in tracer.counters)
    tracks.update(f"sm{rec.sm_id}.persist" for rec in tracer.persists)
    ids: Dict[str, Tuple[int, int]] = {}
    next_tid = {GPU_PID: 1, MEM_PID: 1}
    for track in sorted(tracks):
        pid = _pid_for(track)
        ids[track] = (pid, next_tid[pid])
        next_tid[pid] += 1
    return ids


def chrome_trace(
    tracer: Tracer,
    config: Optional[object] = None,
    cycles: Optional[float] = None,
) -> dict:
    """Build the Chrome trace-event dict for *tracer*.

    *config* (a :class:`SystemConfig`) and *cycles* (the run's final
    simulated time) are stamped into ``otherData`` together with the
    exact stall/lifecycle aggregates the report consumes.
    """
    ids = _track_ids(tracer)
    events: List[dict] = []
    # Metadata: process and thread names.
    for pid, name in ((GPU_PID, "gpu"), (MEM_PID, "memory")):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for track in sorted(ids):
        pid, tid = ids[track]
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    timeline: List[dict] = []
    for track, name, start, end, args in tracer.spans:
        pid, tid = ids[track]
        event = {
            "ph": "X",
            "name": name,
            "cat": "span",
            "pid": pid,
            "tid": tid,
            "ts": start,
            "dur": end - start,
        }
        if args:
            event["args"] = jsonable(args)
        timeline.append(event)
    for track, name, ts, args in tracer.instants:
        pid, tid = ids[track]
        event = {
            "ph": "i",
            "name": name,
            "cat": "instant",
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "s": "t",
        }
        if args:
            event["args"] = jsonable(args)
        timeline.append(event)
    for track, name, ts, value in tracer.counters:
        pid, _tid = ids[track]
        timeline.append(
            {
                "ph": "C",
                "name": f"{track}.{name}",
                "cat": "counter",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "args": {"value": value},
            }
        )
    for rec in tracer.persists:
        track = f"sm{rec.sm_id}.persist"
        pid, tid = ids[track]
        end_ts = rec.t_accept if rec.t_accept >= 0 else rec.t_store
        common = {
            "cat": "persist",
            "id": str(rec.pid),
            "name": "persist",
            "pid": pid,
            "tid": tid,
        }
        timeline.append(
            {
                "ph": "b",
                "ts": rec.t_store,
                "args": {
                    "line_addr": rec.line_addr,
                    "stores": rec.stores,
                    "delays": dict(sorted(rec.delays.items())),
                    "t_drain": rec.t_drain,
                    "t_accept": rec.t_accept,
                    "t_ack": rec.t_ack,
                },
                **common,
            }
        )
        timeline.append({"ph": "e", "ts": end_ts, **common})
    # Total order: by timestamp, then a stable shape-based key, so the
    # output is independent of Python dict/deque iteration quirks.
    timeline.sort(
        key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"], e.get("id", ""))
    )
    events.extend(timeline)
    other: Dict[str, object] = {
        "tool": "repro.trace",
        "stalls": {
            track: dict(sorted(cats.items()))
            for track, cats in sorted(tracer.stall_totals.items())
        },
        "warp_active": dict(sorted(tracer.warp_active.items())),
        "warp_span": dict(sorted(tracer.warp_span.items())),
        "warp_launches": dict(sorted(tracer.warp_launches.items())),
        "span_totals": {
            f"{track}/{name}": {"count": count, "cycles": total}
            for (track, name), (count, total) in sorted(tracer.span_totals.items())
        },
        "lifecycle": {
            "persists": tracer.persist_count,
            "coalesced_stores": tracer.coalesced_stores,
            "delays": dict(sorted(tracer.delay_counts.items())),
            "phases": {
                phase: hist.to_dict() for phase, hist in tracer.phase_hist.items()
            },
        },
    }
    if config is not None:
        other["config"] = jsonable(config)
    if cycles is not None:
        other["cycles"] = cycles
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def dumps(trace: dict) -> str:
    """Deterministic serialization (sorted keys, compact separators)."""
    return json.dumps(trace, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(
    tracer: Tracer,
    path: str | Path,
    config: Optional[object] = None,
    cycles: Optional[float] = None,
) -> Path:
    """Export *tracer* to *path* as deterministic Chrome trace JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dumps(chrome_trace(tracer, config, cycles)) + "\n")
    return target

"""ASCII profile report over a trace.

Renders, from either a live :class:`~repro.trace.tracer.Tracer` or an
exported ``trace.json`` file:

* the **per-warp stall-attribution table** — every cycle of every warp
  slot's residency attributed to one category (compute / ld / st /
  atomic / ofence / dfence / pacq / prel / threadfence / barrier /
  sched), with a reconciliation column against the slot's measured
  residency (always ~100%: intervals are contiguous by construction);
* the **persist-lifecycle profile** — persist counts, store coalescing,
  per-phase latency histogram summaries (L1→drain, drain→durable,
  durable→ack) and drain delay-reason counts (fsm / window / lazy /
  edm / actr);
* **device utilisation** — busy cycles per NVM / GDDR / PCIe channel.

Command line::

    python -m repro.trace.report trace.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.trace.events import STALL_CATEGORIES, Histogram
from repro.trace.perfetto import chrome_trace
from repro.trace.tracer import Tracer


def load_trace(path: str | Path) -> dict:
    """Load an exported Chrome trace JSON file."""
    return json.loads(Path(path).read_text())


def _aggregates(trace: Mapping) -> dict:
    """The exact aggregates: embedded otherData when present, else
    reconstructed from the timeline's X events (foreign traces)."""
    other = trace.get("otherData") or {}
    if "stalls" in other:
        return dict(other)
    stalls: Dict[str, Dict[str, float]] = {}
    active: Dict[str, float] = {}
    span: Dict[str, List[float]] = {}
    names = {}
    for event in trace.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(event["pid"], event["tid"])] = event["args"]["name"]
    for event in trace.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        track = names.get((event.get("pid"), event.get("tid")), "?")
        name, ts, dur = event["name"], event["ts"], event.get("dur", 0.0)
        if name == "warp":
            active[track] = active.get(track, 0.0) + dur
            bounds = span.setdefault(track, [ts, ts + dur])
            bounds[0] = min(bounds[0], ts)
            bounds[1] = max(bounds[1], ts + dur)
        elif name in STALL_CATEGORIES:
            stalls.setdefault(track, {})
            stalls[track][name] = stalls[track].get(name, 0.0) + dur
    out = dict(other)
    out.setdefault("stalls", stalls)
    out.setdefault("warp_active", active)
    out.setdefault("warp_span", span)
    return out


def reconcile(trace: Mapping) -> dict:
    """Reconciliation figures for the stall table.

    Returns a dict with, per warp track, the attributed total and the
    measured residency, plus the overall attribution ratio and the
    trace-span vs end-to-end-cycles ratio.
    """
    agg = _aggregates(trace)
    stalls: Mapping[str, Mapping[str, float]] = agg.get("stalls", {})
    active: Mapping[str, float] = agg.get("warp_active", {})
    per_track = {
        track: {
            "attributed": sum(cats.values()),
            "active": float(active.get(track, 0.0)),
        }
        for track, cats in stalls.items()
    }
    attributed = sum(row["attributed"] for row in per_track.values())
    residency = sum(row["active"] for row in per_track.values())
    spans = [bounds for bounds in agg.get("warp_span", {}).values()]
    span = (
        max(b[1] for b in spans) - min(b[0] for b in spans) if spans else 0.0
    )
    cycles = float(agg.get("cycles", 0.0) or 0.0)
    return {
        "per_track": per_track,
        "attributed": attributed,
        "residency": residency,
        "ratio": attributed / residency if residency else 1.0,
        "trace_span": span,
        "cycles": cycles,
        "span_ratio": span / cycles if cycles else 1.0,
    }


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _stall_section(agg: dict, recon: dict) -> List[str]:
    stalls: Mapping[str, Mapping[str, float]] = agg.get("stalls", {})
    if not stalls:
        return ["(no warp activity traced)"]
    present = {cat for cats in stalls.values() for cat in cats}
    columns = [c for c in STALL_CATEGORIES if c in present]
    headers = ["warp"] + columns + ["total", "active", "recon%"]
    rows: List[List[str]] = []
    totals = {c: 0.0 for c in columns}
    for track in sorted(stalls):
        cats = stalls[track]
        entry = recon["per_track"][track]
        row = [track]
        for col in columns:
            value = float(cats.get(col, 0.0))
            totals[col] += value
            row.append(f"{value:.0f}")
        ratio = (
            100.0 * entry["attributed"] / entry["active"]
            if entry["active"]
            else 100.0
        )
        row += [f"{entry['attributed']:.0f}", f"{entry['active']:.0f}", f"{ratio:.1f}"]
        rows.append(row)
    total_row = ["TOTAL"] + [f"{totals[c]:.0f}" for c in columns]
    total_row += [
        f"{recon['attributed']:.0f}",
        f"{recon['residency']:.0f}",
        f"{100.0 * recon['ratio']:.1f}",
    ]
    rows.append(total_row)
    lines = ["per-warp stall attribution (cycles)", _format_table(headers, rows)]
    if recon["cycles"]:
        lines.append(
            f"trace span {recon['trace_span']:.0f} cycles over "
            f"end-to-end {recon['cycles']:.0f} cycles "
            f"({100.0 * recon['span_ratio']:.1f}%)"
        )
    return lines


def _lifecycle_section(agg: dict) -> List[str]:
    lifecycle = agg.get("lifecycle")
    if not lifecycle:
        return []
    lines = [
        "",
        "persist lifecycle",
        f"  persists: {lifecycle.get('persists', 0)}  "
        f"coalesced stores: {lifecycle.get('coalesced_stores', 0)}",
    ]
    phases = lifecycle.get("phases", {})
    labels = {
        "buffer": "store->drain  (L1/PB residency)",
        "drain": "drain->accept (flush to durability)",
        "ack": "accept->ack   (return trip)",
    }
    for phase in ("buffer", "drain", "ack"):
        data = phases.get(phase)
        if not data:
            continue
        hist = Histogram.from_dict(data)
        if not hist.count:
            continue
        lines.append(
            f"  {labels[phase]}: n={hist.count} "
            f"mean={hist.mean:.1f} max={hist.max:.0f} cycles"
        )
    delays = lifecycle.get("delays", {})
    if delays:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(delays.items()))
        lines.append(f"  drain delays (pass-skips by reason): {parts}")
    return lines


def _device_section(agg: dict) -> List[str]:
    span_totals: Mapping[str, Mapping[str, float]] = agg.get("span_totals", {})
    cycles = float(agg.get("cycles", 0.0) or 0.0)
    rows = []
    for key in sorted(span_totals):
        track, _slash, name = key.partition("/")
        if not track.startswith(("nvm", "gddr", "pcie")):
            continue
        busy = float(span_totals[key]["cycles"])
        count = int(span_totals[key]["count"])
        util = f" ({100.0 * busy / cycles:.1f}%)" if cycles else ""
        rows.append(f"  {track}.{name}: {count} transfers, {busy:.0f} busy cycles{util}")
    return ["", "device utilisation"] + rows if rows else []


def render_report(trace: Mapping) -> str:
    """The full ASCII profile of one exported trace dict."""
    agg = _aggregates(trace)
    recon = reconcile(trace)
    config = agg.get("config") or {}
    label = config.get("model", "?") if isinstance(config, dict) else "?"
    placement = ""
    if isinstance(config, dict):
        memory = config.get("memory") or {}
        placement = f"-{memory.get('placement')}" if memory.get("placement") else ""
    header = f"== trace profile: model={label}{placement}"
    if recon["cycles"]:
        header += f", {recon['cycles']:.0f} cycles"
    header += " =="
    sections = [header, ""]
    sections += _stall_section(agg, recon)
    sections += _lifecycle_section(agg)
    sections += _device_section(agg)
    return "\n".join(sections)


def profile_tracer(
    tracer: Tracer,
    config: Optional[object] = None,
    cycles: Optional[float] = None,
) -> str:
    """Render the report directly from a live tracer."""
    return render_report(chrome_trace(tracer, config, cycles))


def render_host_hotspots(profile, top: int = 20) -> str:
    """ASCII table of the hottest host-side functions of a cProfile run.

    Complements the simulation-side profile above: the stall tables say
    where *simulated* time goes, this says where *wall-clock* time goes.
    Formatting is done by hand (not ``pstats.print_stats``) so the
    section composes with the rest of the report and stays stable
    across Python versions.
    """
    import pstats

    stats = pstats.Stats(profile)
    entries = []
    for (path, line, func), (cc, nc, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        if path == "~":  # builtins: show just the descriptor
            where = func
        else:
            name = Path(path).name
            where = f"{name}:{line}:{func}"
        entries.append((tottime, cumtime, nc, where))
    entries.sort(key=lambda e: (-e[0], e[3]))
    total = sum(e[0] for e in entries)
    rows = [
        [
            where,
            f"{nc}",
            f"{tottime:.3f}",
            f"{cumtime:.3f}",
            f"{100.0 * tottime / total:.1f}" if total else "0.0",
        ]
        for tottime, cumtime, nc, where in entries[:top]
    ]
    lines = [
        f"== host hotspots (cProfile, {total:.2f}s total) ==",
        "",
        _format_table(
            ["function", "calls", "tottime", "cumtime", "self%"], rows
        ),
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.report",
        description="Print the stall-attribution / persist-lifecycle "
        "profile of an exported trace.json",
    )
    parser.add_argument("trace", help="path to a trace.json written by repro.trace")
    args = parser.parse_args(argv)
    try:
        trace = load_trace(args.trace)
    except OSError as exc:
        parser.error(f"cannot read {args.trace}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        parser.error(f"{args.trace} is not valid JSON: {exc}")
    print(render_report(trace))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

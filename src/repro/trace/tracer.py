"""The low-overhead structured tracer.

One :class:`Tracer` instance is shared by every component of a
:class:`~repro.system.GPUSystem`.  It is a pure *observer*: no method
touches the event queue, the stats registry, or any timing state, so a
traced run is cycle-identical to an untraced one (a test pins this).

Disabled tracing is the default and costs one attribute load per call
site (``if tracer.enabled:`` guards every emission); the module-level
:data:`NULL_TRACER` is the shared disabled instance.

Three families of data are collected:

* **timeline events** — spans / instants / counters in bounded ring
  buffers (see :mod:`repro.trace.events` for tuple shapes);
* **per-warp residency accounting** — every cycle of a warp's life is
  attributed to exactly one category (compute/ld/st/fences/barrier/
  sched), accumulated exactly (never ring-dropped) so the stall report
  reconciles with end-to-end cycle counts;
* **persist lifecycle** — one record per buffered PM line from first
  store to durability ack, with per-phase latency histograms and drain
  delay reasons.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.trace.events import LIFECYCLE_PHASES, Histogram, PersistTrace


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of one tracing session."""

    #: Master switch; a disabled tracer is a no-op at every call site.
    enabled: bool = True
    #: Ring-buffer capacity of each timeline family (spans / instants /
    #: counters / lifecycle records).  Aggregates are never bounded.
    capacity: int = 1_000_000

    def validate(self) -> "TraceConfig":
        if self.capacity < 1:
            raise ValueError("trace capacity must be at least 1")
        return self


class Tracer:
    """Structured event collector for one simulated system."""

    __slots__ = (
        "enabled",
        "capacity",
        "spans",
        "instants",
        "counters",
        "span_totals",
        "_open_warp",
        "_warp_begin",
        "stall_totals",
        "warp_active",
        "warp_span",
        "warp_launches",
        "_persist_ids",
        "_open_persists",
        "persists",
        "persist_count",
        "coalesced_stores",
        "delay_counts",
        "phase_hist",
    )

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        cfg = (config or TraceConfig()).validate()
        self.enabled = cfg.enabled
        self.capacity = cfg.capacity
        # timeline ring buffers
        self.spans: Deque[Tuple] = deque(maxlen=cfg.capacity)
        self.instants: Deque[Tuple] = deque(maxlen=cfg.capacity)
        self.counters: Deque[Tuple] = deque(maxlen=cfg.capacity)
        #: Exact (count, busy-cycles) per (track, name) span aggregate —
        #: device utilisation survives ring-buffer drops.
        self.span_totals: Dict[Tuple[str, str], List[float]] = {}
        # warp residency accounting
        self._open_warp: Dict[str, Tuple[str, float]] = {}
        self._warp_begin: Dict[str, float] = {}
        self.stall_totals: Dict[str, Dict[str, float]] = {}
        self.warp_active: Dict[str, float] = {}
        self.warp_span: Dict[str, List[float]] = {}
        self.warp_launches: Dict[str, int] = {}
        # persist lifecycle
        self._persist_ids = itertools.count(1)
        self._open_persists: Dict[Tuple[int, int], PersistTrace] = {}
        self.persists: Deque[PersistTrace] = deque(maxlen=cfg.capacity)
        self.persist_count = 0
        self.coalesced_stores = 0
        self.delay_counts: Dict[str, int] = {}
        self.phase_hist: Dict[str, Histogram] = {
            phase: Histogram() for phase in LIFECYCLE_PHASES
        }

    # ------------------------------------------------------------------
    # timeline events
    # ------------------------------------------------------------------
    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        args: Optional[dict] = None,
    ) -> None:
        if not self.enabled:
            return
        self.spans.append((track, name, start, end, args))
        total = self.span_totals.get((track, name))
        if total is None:
            self.span_totals[(track, name)] = [1, end - start]
        else:
            total[0] += 1
            total[1] += end - start

    def instant(
        self, track: str, name: str, ts: float, args: Optional[dict] = None
    ) -> None:
        if not self.enabled:
            return
        self.instants.append((track, name, ts, args))

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        if not self.enabled:
            return
        self.counters.append((track, name, ts, value))

    # ------------------------------------------------------------------
    # per-warp residency accounting
    # ------------------------------------------------------------------
    def warp_begin(self, track: str, ts: float) -> None:
        """A warp was dispatched onto *track* (an SM warp slot)."""
        if not self.enabled:
            return
        self._warp_begin[track] = ts
        self._open_warp[track] = ("sched", ts)
        self.warp_launches[track] = self.warp_launches.get(track, 0) + 1
        span = self.warp_span.get(track)
        if span is None:
            self.warp_span[track] = [ts, ts]
        elif ts < span[0]:
            span[0] = ts

    def warp_phase(self, track: str, category: str, ts: float) -> None:
        """Close the open interval of *track* at *ts* and open *category*.

        Intervals are contiguous by construction, which is what makes
        the attribution table reconcile exactly with warp residency.
        """
        if not self.enabled:
            return
        open_interval = self._open_warp.get(track)
        if open_interval is not None:
            cat, start = open_interval
            if ts > start:
                per_track = self.stall_totals.setdefault(track, {})
                per_track[cat] = per_track.get(cat, 0.0) + (ts - start)
                self.spans.append((track, cat, start, ts, None))
        self._open_warp[track] = (category, ts)

    def warp_end(self, track: str, ts: float) -> None:
        """The warp on *track* retired at *ts*."""
        if not self.enabled:
            return
        self.warp_phase(track, "sched", ts)
        self._open_warp.pop(track, None)
        begin = self._warp_begin.pop(track, ts)
        self.warp_active[track] = self.warp_active.get(track, 0.0) + (ts - begin)
        span = self.warp_span[track]
        if ts > span[1]:
            span[1] = ts
        self.spans.append((track, "warp", begin, ts, None))

    # ------------------------------------------------------------------
    # persist lifecycle
    # ------------------------------------------------------------------
    def persist_store(self, sm_id: int, line_addr: int, ts: float) -> None:
        """A PM store dirtied *line_addr* in *sm_id*'s L1 (or coalesced
        into its live buffered persist)."""
        if not self.enabled:
            return
        key = (sm_id, line_addr)
        record = self._open_persists.get(key)
        if record is not None:
            record.stores += 1
            self.coalesced_stores += 1
            return
        self._open_persists[key] = PersistTrace(
            pid=next(self._persist_ids),
            sm_id=sm_id,
            line_addr=line_addr,
            t_store=ts,
        )
        self.persist_count += 1

    def persist_delay(self, sm_id: int, line_addr: int, reason: str) -> None:
        """A drain pass skipped the line's persist for *reason* (one of
        fsm / window / lazy / edm / actr).  Counted per pass."""
        if not self.enabled:
            return
        self.delay_counts[reason] = self.delay_counts.get(reason, 0) + 1
        record = self._open_persists.get((sm_id, line_addr))
        if record is not None:
            record.delays[reason] = record.delays.get(reason, 0) + 1

    def persist_flush(
        self,
        sm_id: int,
        line_addr: int,
        t_drain: float,
        t_accept: float,
        t_ack: float,
    ) -> None:
        """The line's persist was flushed to the persistence domain."""
        if not self.enabled:
            return
        record = self._open_persists.pop((sm_id, line_addr), None)
        if record is None:
            # A flush of a line whose store predates tracing: still
            # record the memory-side phases.
            record = PersistTrace(
                pid=next(self._persist_ids),
                sm_id=sm_id,
                line_addr=line_addr,
                t_store=t_drain,
            )
            self.persist_count += 1
        record.t_drain = t_drain
        record.t_accept = t_accept
        record.t_ack = t_ack
        for phase, latency in record.phase_latencies().items():
            self.phase_hist[phase].add(latency)
        self.persists.append(record)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def persist_boundaries(self) -> List[float]:
        """Distinct durability (acceptance) instants of every completed
        persist, sorted.  The fault campaign uses these as crash points:
        the durable image can only change at a boundary."""
        times = {
            record.t_accept
            for record in self.persists
            if record.t_accept is not None
        }
        return sorted(times)

    def event_count(self) -> int:
        """Total timeline events currently buffered."""
        return (
            len(self.spans)
            + len(self.instants)
            + len(self.counters)
            + len(self.persists)
        )

    def stall_table(self) -> Dict[str, Dict[str, float]]:
        """Exact per-warp-track category totals (copy)."""
        return {track: dict(cats) for track, cats in self.stall_totals.items()}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, {self.event_count()} events)"


#: Shared disabled tracer: the default for every untraced system.  It is
#: never mutated (every emitting method bails on ``enabled``), so one
#: instance can safely serve all systems.
NULL_TRACER = Tracer(TraceConfig(enabled=False, capacity=1))

"""Typed trace records and the fixed-bucket latency histogram.

The hot path of the tracer appends plain tuples into bounded deques (a
ring buffer: old events fall off the back of a long run instead of
growing memory without bound).  The tuple shapes are:

* span      — ``(track, name, start, end, args_or_None)``
* instant   — ``(track, name, ts, args_or_None)``
* counter   — ``(track, name, ts, value)``

Aggregates that must stay *complete* regardless of ring-buffer drops
(stall totals, lifecycle histograms, device busy time) are accumulated
online in plain dicts; only the per-event timeline is bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


class Histogram:
    """Power-of-two bucketed latency histogram with exact moments.

    Buckets are keyed by their floor: a value ``v`` lands in bucket
    ``2^floor(log2(v))`` (0 for sub-cycle values).  Count / total / max
    are exact, so means never suffer bucketing error.
    """

    __slots__ = ("count", "total", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets: Dict[int, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        floor = 0 if value < 1 else 1 << (int(value).bit_length() - 1)
        self.buckets[floor] = self.buckets.get(floor, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (bucket keys stringified and sorted)."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        hist.max = float(data.get("max", 0.0))
        hist.buckets = {
            int(k): int(v) for k, v in dict(data.get("buckets", {})).items()
        }
        return hist


#: Persist-lifecycle phases, in order (names used by report + exporter).
LIFECYCLE_PHASES = ("buffer", "drain", "ack")


@dataclass
class PersistTrace:
    """Lifecycle of one PM line from L1 write to durability.

    ``t_store``   — first PM store that dirtied the line (L1 write /
                    PB-entry creation under SBRP).
    ``t_drain``   — the drain pump (or barrier/eviction) issued the flush.
    ``t_accept``  — the memory controller accepted it (ADR durability).
    ``t_ack``     — the acknowledgement arrived back at the SM.
    ``delays``    — per-reason counts of drain passes that skipped this
                    persist (fsm / window / lazy / edm / actr).
    ``stores``    — stores coalesced into the line while buffered.
    """

    pid: int
    sm_id: int
    line_addr: int
    t_store: float
    t_drain: float = -1.0
    t_accept: float = -1.0
    t_ack: float = -1.0
    stores: int = 1
    delays: Dict[str, int] = field(default_factory=dict)

    def phase_latencies(self) -> Dict[str, float]:
        """Per-phase latencies; negative phases (untraced) are omitted."""
        out: Dict[str, float] = {}
        if self.t_drain >= 0:
            out["buffer"] = self.t_drain - self.t_store
        if self.t_accept >= 0 and self.t_drain >= 0:
            out["drain"] = self.t_accept - self.t_drain
        if self.t_ack >= 0 and self.t_accept >= 0:
            out["ack"] = self.t_ack - self.t_accept
        return out


#: Stall-attribution categories in report column order.  Every cycle of
#: a warp's residency lands in exactly one of these.
STALL_CATEGORIES: List[str] = [
    "compute",
    "ld",
    "st",
    "atomic",
    "ofence",
    "dfence",
    "pacq",
    "prel",
    "threadfence",
    "barrier",
    "sched",
]

#: Categories that are pure waiting on the persistency model (the
#: "stall" half of the table, vs. useful work + scheduler residency).
FENCE_CATEGORIES = ("ofence", "dfence", "pacq", "prel", "threadfence")

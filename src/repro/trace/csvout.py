"""CSV time-series sampling of counter tracks.

Counter events (PB occupancy, ACTR, WPQ depth, ...) are change-driven;
plotting tools want a regular grid.  :func:`counter_timeseries` resamples
every counter onto a fixed cycle interval with last-value-holds
semantics and renders one CSV with a column per counter.

Output is deterministic: columns are sorted, the grid is derived from
the trace contents, and values are plain ``repr`` floats.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Dict, List, Optional

from repro.trace.tracer import Tracer


def counter_timeseries(tracer: Tracer, interval: Optional[float] = None) -> str:
    """Resample all counter tracks onto a regular grid as CSV text.

    *interval* defaults to roughly 1/200th of the trace span (at least
    one cycle), giving ~200 rows regardless of run length.
    """
    events = sorted(
        ((ts, f"{track}.{name}", value) for track, name, ts, value in tracer.counters),
        key=lambda e: (e[0], e[1]),
    )
    columns = sorted({name for _ts, name, _v in events})
    if not events:
        out = io.StringIO()
        csv.writer(out).writerow(["cycle"] + columns)
        return out.getvalue()
    end = events[-1][0]
    if interval is None:
        interval = max(1.0, end / 200.0)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["cycle"] + columns)
    current: Dict[str, float] = {name: 0.0 for name in columns}
    index = 0
    steps = int(math.ceil(end / interval)) if end > 0 else 0
    for step in range(steps + 1):
        cycle = step * interval
        while index < len(events) and events[index][0] <= cycle:
            _ts, name, value = events[index]
            current[name] = value
            index += 1
        writer.writerow([cycle] + [current[name] for name in columns])
    return out.getvalue()


def write_counter_csv(
    tracer: Tracer, path: str | Path, interval: Optional[float] = None
) -> Path:
    """Write :func:`counter_timeseries` output to *path*."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(counter_timeseries(tracer, interval))
    return target

"""Structured tracing & profiling for the simulator.

The subsystem has three layers:

* :mod:`repro.trace.tracer` — the low-overhead :class:`Tracer` every
  component emits into (no-op when disabled, ring-buffer backed);
* :mod:`repro.trace.events` — typed records: warp stall categories,
  persist-lifecycle traces, latency histograms;
* exporters — :mod:`repro.trace.perfetto` (Chrome/Perfetto
  ``trace.json``), :mod:`repro.trace.csvout` (counter time series) and
  :mod:`repro.trace.report` (ASCII profile, also a ``__main__``).

Enable tracing per system::

    from repro import GPUSystem, ModelName, small_system
    from repro.trace import TraceConfig

    system = GPUSystem(small_system(ModelName.SBRP), trace=TraceConfig())
    ...  # run kernels
    system.write_trace("trace.json")     # load in ui.perfetto.dev
    print(system.trace_report())         # stall attribution table
"""

from repro.trace.events import (
    FENCE_CATEGORIES,
    Histogram,
    PersistTrace,
    STALL_CATEGORIES,
)
from repro.trace.csvout import counter_timeseries, write_counter_csv
from repro.trace.perfetto import chrome_trace, dumps, write_chrome_trace
from repro.trace.tracer import NULL_TRACER, TraceConfig, Tracer

_REPORT_EXPORTS = ("load_trace", "profile_tracer", "reconcile", "render_report")


def __getattr__(name: str):
    # Lazy: importing repro.trace.report here would shadow its execution
    # as ``python -m repro.trace.report`` (double-import RuntimeWarning).
    if name in _REPORT_EXPORTS:
        from repro.trace import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FENCE_CATEGORIES",
    "Histogram",
    "NULL_TRACER",
    "PersistTrace",
    "STALL_CATEGORIES",
    "TraceConfig",
    "Tracer",
    "chrome_trace",
    "counter_timeseries",
    "dumps",
    "load_trace",
    "profile_tracer",
    "reconcile",
    "render_report",
    "write_chrome_trace",
    "write_counter_csv",
]

"""Public facade: a GPU + NVM system you can allocate on, launch kernels
on, crash, and reboot.

Typical use::

    from repro import GPUSystem, small_system, ModelName

    sys = GPUSystem(small_system(ModelName.SBRP))
    data = sys.pm_create("my-data", 4096)
    result = sys.launch(my_kernel, grid_blocks=4, args=(data,))
    image = sys.crash()                    # power failure "now"
    sys2 = GPUSystem.reboot(sys, image)    # fresh machine, durable PM
    recovered = sys2.pm_open("my-data")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.memory.address_space import AddressSpace, Allocation
from repro.memory.namespace import NamespaceEntry, NamespaceTable
from repro.gpu.device import GPU, KernelResult
from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.trace.tracer import NULL_TRACER, TraceConfig, Tracer


@dataclass(frozen=True)
class CrashImage:
    """Everything that survives a power failure."""

    time: float
    pm: Dict[int, int]
    namespace: Dict[str, NamespaceEntry]


class GPUSystem:
    """One simulated machine: GPU, memory system, persistency model."""

    def __init__(
        self,
        config: SystemConfig,
        pm_image: Optional[CrashImage] = None,
        max_cycles: float = 2e9,
        trace: "Tracer | TraceConfig | bool | None" = None,
        faults: Optional[Any] = None,
        watchdog_events: Optional[int] = None,
        model_factory: Optional[Any] = None,
        metrics: "MetricsRegistry | bool | None" = None,
    ) -> None:
        self.config = config.validate()
        self.stats = StatsRegistry()
        self.space = AddressSpace(alignment=config.gpu.line_size)
        self.namespace = NamespaceTable(self.space)
        self.tracer = self._resolve_tracer(trace)
        self.metrics = self._resolve_metrics(metrics)
        #: Fault injector (``repro.faults``) threaded through to the
        #: memory subsystem and persistency models; None = clean run.
        self.faults = faults
        self.gpu = GPU(
            config,
            stats=self.stats,
            max_cycles=max_cycles,
            tracer=self.tracer,
            faults=faults,
            watchdog_events=watchdog_events,
            model_factory=model_factory,
            metrics=self.metrics,
        )
        self.kernel_results: List[KernelResult] = []
        if pm_image is not None:
            self.gpu.backing.load_pm_image(pm_image.pm)
            self.namespace.restore(pm_image.namespace, self.space)

    @staticmethod
    def _resolve_tracer(trace: "Tracer | TraceConfig | bool | None") -> Tracer:
        """Accept a Tracer, a TraceConfig, or a bool; default: disabled."""
        if trace is None or trace is False:
            return NULL_TRACER
        if trace is True:
            return Tracer(TraceConfig())
        if isinstance(trace, TraceConfig):
            return Tracer(trace)
        if isinstance(trace, Tracer):
            return trace
        raise SimulationError(f"unsupported trace argument: {trace!r}")

    @staticmethod
    def _resolve_metrics(
        metrics: "MetricsRegistry | bool | None",
    ) -> MetricsRegistry:
        """Accept a MetricsRegistry or a bool; default: disabled."""
        if metrics is None or metrics is False:
            return NULL_METRICS
        if metrics is True:
            return MetricsRegistry()
        if isinstance(metrics, MetricsRegistry):
            return metrics
        raise SimulationError(f"unsupported metrics argument: {metrics!r}")

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Allocation:
        """Allocate volatile (GDDR-backed) memory."""
        return self.space.alloc(size, persistent=False)

    def pm_create(self, name: str, size: int) -> Allocation:
        """Allocate a new named PM region."""
        return self.namespace.create(name, size)

    def pm_open(self, name: str) -> Allocation:
        """Re-open a named PM region (after a reboot)."""
        return self.namespace.open(name)

    def pm_exists(self, name: str) -> bool:
        return self.namespace.exists(name)

    # ------------------------------------------------------------------
    # host-side data movement (CPU writes are immediately durable for
    # PM: the host flushes its own stores before launching kernels)
    # ------------------------------------------------------------------
    def host_write(self, addr: int, value: int) -> None:
        from repro.memory.address_space import is_pm_addr

        self.gpu.backing.write(addr, value)
        if is_pm_addr(addr):
            self.gpu.backing.durable[addr] = int(value)

    def host_write_words(self, alloc: Allocation, values: Sequence[int]) -> None:
        """memcpy host->device of 4-byte words from region start."""
        if isinstance(values, np.ndarray):
            values = values.tolist()  # C-speed, yields Python ints
        elif any(type(v) is not int for v in values):
            values = [int(v) for v in values]
        if not values:
            return
        alloc.word(len(values) - 1)  # bounds check up front
        base = alloc.base
        words = dict(zip(range(base, base + 4 * len(values), 4), values))
        self.gpu.backing.visible.update(words)
        if alloc.persistent:
            self.gpu.backing.durable.update(words)

    def host_fill(self, alloc: Allocation, value: int) -> None:
        """memset of every word of the region."""
        self.host_write_words(alloc, [value] * (alloc.size // 4))

    def read_word(self, addr: int) -> int:
        """Read the (globally visible) value of one word."""
        return self.gpu.backing.read(addr)

    def read_words(self, alloc: Allocation, count: Optional[int] = None) -> np.ndarray:
        n = count if count is not None else alloc.size // 4
        return np.array(
            [self.gpu.backing.read(alloc.word(i)) for i in range(n)], dtype=np.int64
        )

    def durable_words(
        self, alloc: Allocation, count: Optional[int] = None
    ) -> np.ndarray:
        """Read the *durable* (crash-surviving) value of the region."""
        n = count if count is not None else alloc.size // 4
        image = self.gpu.subsystem.crash_image(self.now)
        return np.array([image.get(alloc.word(i), 0) for i in range(n)], dtype=np.int64)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel,
        grid_blocks: int,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: Optional[str] = None,
        drain: bool = False,
    ) -> KernelResult:
        result = self.gpu.launch(kernel, grid_blocks, args, kwargs, name, drain)
        self.kernel_results.append(result)
        return result

    def sync(self) -> float:
        """Drain all buffered persists (host synchronize-and-persist)."""
        return self.gpu.sync()

    @property
    def now(self) -> float:
        return self.gpu.engine.now

    def total_cycles(self) -> float:
        return sum(r.cycles for r in self.kernel_results)

    # ------------------------------------------------------------------
    # crash / reboot
    # ------------------------------------------------------------------
    def crash(self, at: Optional[float] = None) -> CrashImage:
        """Snapshot the durable PM image as of time *at* (default: now).

        Crashing at a past instant is allowed — the persist log records
        when every persist became durable, so any point of the finished
        execution can be examined.
        """
        time = self.now if at is None else at
        if time > self.now:
            raise SimulationError(
                f"cannot crash at t={time}: simulation only reached {self.now}"
            )
        return CrashImage(
            time=time,
            pm=self.gpu.subsystem.crash_image(time),
            namespace=self.namespace.export(),
        )

    @staticmethod
    def reboot(
        previous: "GPUSystem",
        image: CrashImage,
        config: Optional[SystemConfig] = None,
    ) -> "GPUSystem":
        """Boot a fresh machine with *image* as its PM contents."""
        return GPUSystem(config or previous.config, pm_image=image)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stat(self, name: str, default: float = 0.0) -> float:
        return self.stats.get(name, default)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One snapshot over both registries: StatsRegistry counters
        overlaid with live metrics (counters/gauges/histograms)."""
        from repro.metrics.export import build_snapshot

        return build_snapshot(self.metrics, self.stats)

    def write_trace(self, path: str) -> None:
        """Export the run's trace as Chrome/Perfetto ``trace.json``."""
        from repro.trace.perfetto import write_chrome_trace

        if not self.tracer.enabled:
            raise SimulationError(
                "tracing is disabled; construct with GPUSystem(cfg, trace=True)"
            )
        write_chrome_trace(self.tracer, path, config=self.config, cycles=self.now)

    def write_trace_csv(self, path: str, interval: Optional[float] = None) -> None:
        """Export counter tracks (PB occupancy, ACTR, WPQ depth) as CSV."""
        from repro.trace.csvout import write_counter_csv

        if not self.tracer.enabled:
            raise SimulationError(
                "tracing is disabled; construct with GPUSystem(cfg, trace=True)"
            )
        write_counter_csv(self.tracer, path, interval=interval)

    def trace_report(self) -> str:
        """ASCII profile: stall attribution, persist lifecycle, devices."""
        from repro.trace.report import profile_tracer

        if not self.tracer.enabled:
            raise SimulationError(
                "tracing is disabled; construct with GPUSystem(cfg, trace=True)"
            )
        return profile_tracer(self.tracer, config=self.config, cycles=self.now)

    def __repr__(self) -> str:
        return f"GPUSystem({self.config.label}, t={self.now:.0f})"

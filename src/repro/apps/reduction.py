"""Reduction: recoverable parallel sum (Figures 2 and 3 of the paper).

The input array lives in GDDR; partial sums and the output live on PM so
the computation can resume after a crash instead of restarting.  The
kernel is the paper's Figure 3 structure lifted to warp granularity:

* every warp sums its input segment and, when it retires from the
  reduction tree, persists its partial into ``pArr`` exactly once and
  releases a **block-scope** flag (``pRel_block``);
* surviving warps acquire their partner's flag (``pAcq_block``), read
  the partner's persisted partial, and fold it in — the intra-block
  inter-thread PMO;
* the first warp of each block persists the block sum and releases a
  **device-scope** flag; threadblock 0 acquires every block's flag
  (``pAcq_dev``) and persists the final sum — the inter-block PMO whose
  scope the paper's Section 5.3 bug discussion revolves around.

Native recovery: a warp whose ``pArr`` slot is non-EMPTY skips its
computation and immediately re-releases its flag (the flags are
volatile and do not survive the crash).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.common import spin_pacq
from repro.common.config import Scope
from repro.system import GPUSystem


@dataclass(frozen=True)
class ReductionParams(AppParams):
    #: Input elements per thread (the array is blocks*block_size*per_thread).
    per_thread: int = 4
    #: Threadblocks (paper sums ~4M ints; scale via blocks/per_thread).
    blocks: int = 4
    #: ALU cost of accumulating one element.
    add_cycles: int = 2
    #: If True, the final inter-block release uses BLOCK scope instead of
    #: DEVICE scope — the Section 5.3 *scoped persistency bug*, kept as a
    #: demonstrable option for tests and the bug-demo example.
    inject_scope_bug: bool = False


class Reduction(App):
    """Tree reduction with block- and device-scope release/acquire."""

    name = "reduction"
    scoped_pmo = "blk/dev-interthread"
    recovery_style = "native"

    def __init__(self, **overrides) -> None:
        self.params = ReductionParams(**overrides)

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def setup(self, system: GPUSystem) -> None:
        p = self.params
        gpu = system.config.gpu
        self.warps_per_block = gpu.warps_per_block
        self.n_warps = p.blocks * self.warps_per_block
        self.n_elems = p.blocks * gpu.threads_per_block * p.per_thread
        self.input = system.malloc(4 * self.n_elems)
        # One PM line per partial (as the paper's per-thread pArr gives
        # each warp its own line): padding avoids false same-line
        # conflicts between different warps' single persists.
        self.parr = system.pm_create("red.parr", 4 * 32 * self.n_warps)
        self.pblk = system.pm_create("red.pblk", 4 * 32 * p.blocks)
        self.out = system.pm_create("red.out", 4)
        self.wflags = system.malloc(4 * self.n_warps)
        self.bflags = system.malloc(4 * p.blocks)
        self._upload(system)

    def reopen(self, system: GPUSystem) -> None:
        p = self.params
        gpu = system.config.gpu
        self.warps_per_block = gpu.warps_per_block
        self.n_warps = p.blocks * self.warps_per_block
        self.n_elems = p.blocks * gpu.threads_per_block * p.per_thread
        self.input = system.malloc(4 * self.n_elems)
        self.parr = system.pm_open("red.parr")
        self.pblk = system.pm_open("red.pblk")
        self.out = system.pm_open("red.out")
        self.wflags = system.malloc(4 * self.n_warps)
        self.bflags = system.malloc(4 * p.blocks)
        self._upload(system)

    def _upload(self, system: GPUSystem) -> None:
        system.host_write_words(self.input, self.input_values())

    def input_values(self) -> np.ndarray:
        return (np.arange(self.n_elems) * 13) % 97 + 1

    # ------------------------------------------------------------------
    # kernel
    # ------------------------------------------------------------------
    def _kernel(self, w, p: ReductionParams):
        wpb = w.warps_per_block
        gwarp = w.block_id * wpb + w.warp_in_block
        my_flag = self.wflags.base + 4 * gwarp
        leader = w.lane == 0

        me = w.warp_in_block
        seg = self.parr.base + 4 * 32 * gwarp  # this warp's 32 pArr words
        # Warp-invariant lane vectors, hoisted (value-for-value identical
        # to recomputing them at each yield).
        lane4 = 4 * w.lane
        my_words = seg + lane4
        parr_base = self.parr.base
        add_op = w.compute(p.add_cycles)  # reused: the SM only reads it
        persisted = yield w.ld(my_words)
        already_done = int(persisted[0]) != 0
        lanes = np.asarray(persisted, dtype=np.int64)
        if already_done:
            # Native recovery (Figure 3, line 3): this warp's persisted
            # partials are final; just re-release for any consumers.
            yield w.prel(my_flag, 1, Scope.BLOCK)
            if me != 0:
                return
        else:
            # Each lane accumulates its per_thread input elements
            # (pArr is per-thread, as in Figure 2).
            lanes = np.zeros(w.warp_size, dtype=np.int64)
            in_base = self.input.base + 4 * p.per_thread * w.tid
            for j in range(p.per_thread):
                vals = yield w.ld(in_base + 4 * j)
                lanes += vals
                yield add_op

            # Reduction tree over the block's warps: the retiring warp
            # persists its 32 lane-partials (one PM line) once; the
            # survivor acquires and folds the partner's line in.  Under
            # the epoch model every round's barrier invalidates these
            # lines, forcing NVM re-reads — the Figure 6 reduction gap.
            active_warps = wpb
            while active_warps > 1:
                half = active_warps // 2
                if me >= half:
                    # Retire: persist once, release at block scope, exit.
                    yield w.st(my_words, lanes)
                    yield w.prel(my_flag, 1, Scope.BLOCK)
                    return
                partner = gwarp + half
                yield from spin_pacq(
                    w, self.wflags.base + 4 * partner, Scope.BLOCK
                )
                part = yield w.ld(parr_base + 4 * 32 * partner + lane4)
                lanes = lanes + np.asarray(part, dtype=np.int64)
                yield add_op
                active_warps = half

        my_sum = int(lanes.sum())
        yield w.compute(5 * p.add_cycles)  # final warp-shuffle reduce

        # Warp 0 reaches here with the block sum (computed or recovered).
        done = yield w.ld(self.pblk.base + 4 * 32 * w.block_id, mask=leader)
        if int(done[0]) == 0:
            if not already_done:
                yield w.st(my_words, lanes)
                yield w.prel(my_flag, 1, Scope.BLOCK)
            yield w.st(self.pblk.base + 4 * 32 * w.block_id, my_sum, mask=leader)
        elif not already_done:
            my_sum = int(done[0])
            yield w.prel(my_flag, 1, Scope.BLOCK)
        release_scope = Scope.BLOCK if p.inject_scope_bug else Scope.DEVICE
        yield w.prel(self.bflags.base + 4 * w.block_id, 1, release_scope)

        if w.block_id != 0:
            return
        # Threadblock 0 folds every block's sum into the final output.
        final = yield w.ld(self.out.base, mask=leader)
        if int(final[0]) != 0:
            return
        total = my_sum
        for blk in range(1, w.grid_blocks):
            yield from spin_pacq(w, self.bflags.base + 4 * blk, Scope.DEVICE)
            part = yield w.ld(self.pblk.base + 4 * 32 * blk, mask=leader)
            total += int(part[0])
            yield add_op
        yield w.st(self.out.base, total, mask=leader)
        yield w.dfence()

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._kernel, self.params.blocks, kwargs={"p": self.params}, name="red"
        )
        return RunOutcome([result])

    def recover(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._kernel,
            self.params.blocks,
            kwargs={"p": self.params},
            name="red.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def expected(self) -> int:
        return int(self.input_values().sum())

    def check(self, system: GPUSystem, complete: bool = True) -> None:
        p = self.params
        wpb = self.warps_per_block
        lane_partials = (
            self.input_values()
            .reshape(p.blocks, wpb, 32, p.per_thread)
            .sum(axis=3)
            .astype(np.int64)
        )
        # Every persisted pArr line must equal the lane vector its warp
        # held when it retired from the tree.
        parr = system.read_words(self.parr, 32 * self.n_warps).reshape(
            p.blocks, wpb, 32
        )
        pblk = system.read_words(self.pblk, 32 * p.blocks)[::32]
        for blk in range(p.blocks):
            subtree = self._subtree_vectors(lane_partials[blk])
            stored = parr[blk]
            written = stored[:, 0] != 0
            bad = written & ~(stored == subtree).all(axis=1)
            self.require(
                not bad.any(), f"reduction: wrong partial vector in block {blk}"
            )
            self.require(
                pblk[blk] in (0, int(lane_partials[blk].sum())),
                f"reduction: wrong block sum for block {blk}",
            )
        out = int(system.read_word(self.out.base))
        self.require(
            out in (0, self.expected()), f"reduction: wrong final sum {out}"
        )
        if complete:
            self.require(out == self.expected(), "reduction: final sum missing")

    def _subtree_vectors(self, lane_partials: np.ndarray) -> np.ndarray:
        """The lane vector each warp persists: its accumulated lanes at
        the moment it retires from the tree (warp 0: the final vector)."""
        wpb = lane_partials.shape[0]
        result = np.zeros_like(lane_partials)
        acc = lane_partials.copy()
        active = wpb
        while active > 1:
            half = active // 2
            for me in range(half, active):
                result[me] = acc[me]
            for me in range(half):
                acc[me] += acc[me + half]
            active = half
        result[0] = acc[0]
        return result

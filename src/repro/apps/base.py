"""Common protocol for the evaluation applications.

An :class:`App` owns a workload description and knows how to:

* ``setup(system)`` — allocate and initialize its PM/volatile data,
* ``run(system)`` — launch the crash-free kernels (the timed part),
* ``recover(system)`` — launch the recovery kernel against a rebooted
  system whose PM holds a crash image,
* ``check(system)`` — raise :class:`RecoveryError` unless the PM state
  satisfies the app's consistency invariants,
* ``expected()`` — the CPU reference answer for full-completion checks.

``scoped_pmo`` and ``recovery_style`` mirror Table 2 so tests can assert
the reproduction covers the same design space as the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import OracleViolation, RecoveryError
from repro.gpu.device import KernelResult
from repro.system import GPUSystem


@dataclass(frozen=True)
class AppParams:
    """Base class for per-app workload parameters."""


@dataclass
class RunOutcome:
    """What a crash-free run produced."""

    kernels: List[KernelResult]

    @property
    def cycles(self) -> float:
        return sum(k.cycles for k in self.kernels)


class App(abc.ABC):
    """One PM-aware GPU application."""

    #: Registry name ("gpkvs", "srad", ...).
    name: str = ""
    #: Table 2's "Scoped PMO" column.
    scoped_pmo: str = ""
    #: Table 2's "Recovery" column: "logging" or "native".
    recovery_style: str = ""

    @abc.abstractmethod
    def setup(self, system: GPUSystem) -> None:
        """Allocate PM regions and initialize inputs."""

    @abc.abstractmethod
    def run(self, system: GPUSystem) -> RunOutcome:
        """Crash-free execution (the part every figure times)."""

    @abc.abstractmethod
    def recover(self, system: GPUSystem) -> RunOutcome:
        """Post-crash recovery on a rebooted system.

        For logging apps this is the recovery kernel; native apps re-run
        their kernel, which skips already-persisted work.
        """

    @abc.abstractmethod
    def check(self, system: GPUSystem, complete: bool = True) -> None:
        """Verify consistency invariants; with ``complete=True``, also
        verify the final answer matches the CPU reference."""

    def reopen(self, system: GPUSystem) -> None:
        """Re-open PM regions by name on a rebooted system.

        Default: re-run setup-style open for every named region recorded
        during :meth:`setup` (subclasses store their allocations).
        """
        raise NotImplementedError

    def oracle_check(self, system: GPUSystem, complete: bool = False) -> None:
        """Recovery-oracle entry point for the fault campaign.

        Same invariants as :meth:`check`, but violations surface as
        :class:`~repro.common.errors.OracleViolation` so campaign
        classification can separate "the app's invariants are broken"
        from "the recovery kernel itself crashed" by exception type.
        """
        try:
            self.check(system, complete=complete)
        except OracleViolation:
            raise
        except RecoveryError as exc:
            raise OracleViolation(str(exc)) from exc

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def require(condition: bool, message: str) -> None:
        if not condition:
            raise RecoveryError(message)

"""Shared kernel-level helpers for the applications."""

from __future__ import annotations

from typing import Generator

from repro.common.config import Scope
from repro.gpu.warp import WarpCtx

#: Log records are sealed with this magic so a torn record is detectable.
SEAL = 0x5EA1

#: Sentinel for "never persisted" (all app values are >= 1).
EMPTY = 0


def spin_pacq(w: WarpCtx, addr: int, scope: Scope) -> Generator:
    """Spin on a persist acquire until the flag is released.

    Returns the acquired flag value.  Usage::

        value = yield from spin_pacq(w, flag_addr, Scope.BLOCK)
    """
    # One PAcq op reused across attempts: the SM only reads its fields,
    # so re-yielding the same object is identical to rebuilding it.
    op = w.pacq(addr, scope)
    while True:
        value = yield op
        if value != 0:
            return value

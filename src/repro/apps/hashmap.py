"""Hashmap (HM): cuckoo-hashed PM hashmap with undo logging (Table 2).

Batches of values are inserted into a two-table cuckoo hashmap kept in
PM.  Each insertion may displace the incumbent of its first-choice slot
into the second table (one bounded displacement, as in the real-time GPU
cuckoo hashing of Alcantara et al. that the paper cites).  Before any
slot is overwritten its old contents are logged to PM — the intra-thread
PMO pattern of gpKVS, but with *two* fenced updates per insert, and with
reads of both tables giving L1 reuse.

Layout: table 1 and table 2 each hold ``capacity`` (key, value) pairs.
Thread *i* inserts key ``K+i`` into table-1 slot ``h1(i)``; the displaced
table-1 pair moves to table-2 slot ``h2``.  Keys are assigned so that
every thread touches distinct slots (GPU batches are pre-partitioned, as
in the cited work, so the parallel inserts are race-free).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.common import SEAL
from repro.system import GPUSystem

#: Key namespace offsets.
RESIDENT = 1_000  # initial occupants of table 1
INSERTED = 2_000_000  # batch keys


@dataclass(frozen=True)
class HashmapParams(AppParams):
    #: Values inserted.  Paper: ~50K entries.
    n_inserts: int = 4096
    #: Slots per table (>= n_inserts).
    capacity: int = 8192
    #: Insertions per thread (batch processed in rounds).
    rounds: int = 4
    #: Words of volatile hash-coefficient table (re-read every round).
    coeff_words: int = 512
    #: ALU cost per hash evaluation.
    hash_cycles: int = 30


def resident_key(slot):
    return RESIDENT + slot


def resident_val(slot):
    return 5 * slot + 3


def insert_key(i):
    return INSERTED + i


def insert_val(i):
    return 9 * i + 4


class Hashmap(App):
    """Cuckoo hashmap with per-displacement undo logging."""

    name = "hashmap"
    scoped_pmo = "intra-thread"
    recovery_style = "logging"

    def __init__(self, **overrides) -> None:
        self.params = HashmapParams(**overrides)
        if self.params.n_inserts > self.params.capacity:
            raise ValueError("n_inserts must not exceed capacity")
        if self.params.n_inserts % self.params.rounds:
            raise ValueError("n_inserts must be divisible by rounds")

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def setup(self, system: GPUSystem) -> None:
        p = self.params
        cap = p.capacity
        self.t1_key = system.pm_create("hm.t1_key", 4 * cap)
        self.t1_val = system.pm_create("hm.t1_val", 4 * cap)
        self.t2_key = system.pm_create("hm.t2_key", 4 * cap)
        self.t2_val = system.pm_create("hm.t2_val", 4 * cap)
        # Per-thread undo record: old pair of the displaced t1 slot plus
        # the new t2 contents being written, sealed.
        for field in ("old_key", "old_val", "slot", "seal"):
            setattr(
                self,
                f"log_{field}",
                system.pm_create(f"hm.log_{field}", 4 * p.n_inserts),
            )
        self.coeff = system.malloc(4 * p.coeff_words)
        system.host_write_words(self.coeff, np.arange(p.coeff_words) + 1)
        slots = np.arange(cap)
        system.host_write_words(self.t1_key, resident_key(slots))
        system.host_write_words(self.t1_val, resident_val(slots))

    def reopen(self, system: GPUSystem) -> None:
        p = self.params
        self.t1_key = system.pm_open("hm.t1_key")
        self.t1_val = system.pm_open("hm.t1_val")
        self.t2_key = system.pm_open("hm.t2_key")
        self.t2_val = system.pm_open("hm.t2_val")
        for field in ("old_key", "old_val", "slot", "seal"):
            setattr(self, f"log_{field}", system.pm_open(f"hm.log_{field}"))
        self.coeff = system.malloc(4 * p.coeff_words)
        system.host_write_words(self.coeff, np.arange(p.coeff_words) + 1)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _insert_kernel(self, w, p: HashmapParams):
        per_round = p.n_inserts // p.rounds
        for rnd in range(p.rounds):
            op = w.tid + rnd * per_round
            active = (w.tid < per_round) & (op < p.n_inserts)
            slot1 = op % p.capacity  # h1
            slot2 = (op * 7 + 3) % p.capacity  # h2 (distinct per op)
            # Hash coefficients are volatile and re-read every round.
            _c = yield w.ld(self.coeff.base + 4 * (w.tid % p.coeff_words))
            yield w.compute(p.hash_cycles)
            # Read the incumbent of the first-choice slot (it will be
            # displaced into table 2 - classic cuckoo step).
            old_k = yield w.ld(self.t1_key.base + 4 * slot1, mask=active)
            old_v = yield w.ld(self.t1_val.base + 4 * slot1, mask=active)
            # Lookup-before-insert: a key already present (a committed
            # insert surviving a crash) must not be displaced again.
            todo = active & (old_k != insert_key(op))
            yield w.compute(p.hash_cycles)
            # Undo record covering the t1 overwrite, sealed.
            yield w.st(self.log_old_key.base + 4 * op, old_k, mask=todo)
            yield w.st(self.log_old_val.base + 4 * op, old_v, mask=todo)
            yield w.st(self.log_slot.base + 4 * op, slot1, mask=todo)
            yield w.st(
                self.log_seal.base + 4 * op,
                old_k ^ old_v ^ slot1 ^ SEAL,
                mask=todo,
            )
            yield w.ofence()
            # Displace the incumbent into table 2, then claim table 1.
            yield w.st(self.t2_key.base + 4 * slot2, old_k, mask=todo)
            yield w.st(self.t2_val.base + 4 * slot2, old_v, mask=todo)
            yield w.st(self.t1_key.base + 4 * slot1, insert_key(op), mask=todo)
            yield w.st(self.t1_val.base + 4 * slot1, insert_val(op), mask=todo)
            yield w.ofence()
            # Commit: clear the seal.
            yield w.st(self.log_seal.base + 4 * op, 0, mask=todo)

    def _recover_kernel(self, w, p: HashmapParams):
        active = w.tid < p.n_inserts
        k = yield w.ld(self.log_old_key.base + 4 * w.tid, mask=active)
        v = yield w.ld(self.log_old_val.base + 4 * w.tid, mask=active)
        s = yield w.ld(self.log_slot.base + 4 * w.tid, mask=active)
        seal = yield w.ld(self.log_seal.base + 4 * w.tid, mask=active)
        valid = active & (seal == (k ^ v ^ s ^ SEAL))
        slot2 = (w.tid * 7 + 3) % p.capacity
        # Roll back: restore t1's old pair and clear the t2 duplicate.
        yield w.st(self.t1_key.base + 4 * s, k, mask=valid)
        yield w.st(self.t1_val.base + 4 * s, v, mask=valid)
        yield w.st(self.t2_key.base + 4 * slot2, 0, mask=valid)
        yield w.st(self.t2_val.base + 4 * slot2, 0, mask=valid)
        yield w.dfence()
        yield w.st(self.log_seal.base + 4 * w.tid, 0, mask=active)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _grid(self, system: GPUSystem) -> int:
        per_block = system.config.gpu.threads_per_block
        threads = self.params.n_inserts // self.params.rounds
        return max(1, -(-threads // per_block))

    def run(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._insert_kernel,
            self._grid(system),
            kwargs={"p": self.params},
            name="hm.insert",
        )
        return RunOutcome([result])

    def recover(self, system: GPUSystem) -> RunOutcome:
        per_block = system.config.gpu.threads_per_block
        grid = max(1, -(-self.params.n_inserts // per_block))
        result = system.launch(
            self._recover_kernel,
            grid,
            kwargs={"p": self.params},
            name="hm.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, system: GPUSystem, complete: bool = True) -> None:
        p = self.params
        t1k = system.read_words(self.t1_key, p.capacity)
        t1v = system.read_words(self.t1_val, p.capacity)
        t2k = system.read_words(self.t2_key, p.capacity)
        t2v = system.read_words(self.t2_val, p.capacity)
        i = np.arange(p.n_inserts)
        slot1 = i % p.capacity
        slot2 = (i * 7 + 3) % p.capacity
        done = (t1k[slot1] == insert_key(i)) & (t1v[slot1] == insert_val(i))
        rolled = (t1k[slot1] == resident_key(slot1)) & (
            t1v[slot1] == resident_val(slot1)
        )
        self.require(
            bool((done | rolled).all()),
            "HM: a table-1 slot holds a torn pair after recovery",
        )
        # An insert that completed must have the displaced pair intact
        # in table 2 (or recovery must have rolled the whole step back).
        displaced_ok = (t2k[slot2] == resident_key(slot1)) & (
            t2v[slot2] == resident_val(slot1)
        )
        self.require(
            bool((~done | displaced_ok).all()),
            "HM: an insert committed but its displaced pair is missing",
        )
        if complete:
            self.require(
                bool(done.all()),
                f"HM: {int((~done).sum())} inserts missing after full run",
            )

"""SRAD: speckle-reducing anisotropic diffusion (Table 2, row 3).

Each thread denoises one pixel of an image in two steps: it computes a
noise coefficient from a 5-point stencil, persists it, then computes the
smoothed pixel and persists that.  Recoverability requires only
intra-thread PMO — each pixel must persist *after* its noise value
(Section 7.1).  Recovery is *native*: on restart, a thread whose output
pixel is already persisted returns immediately; one whose noise value is
persisted skips the first step.

All compute happens up front and the persists land in a burst at the end
of the kernel, which is why the paper sees every model behave similarly
on SRAD (bursty writes; buffering helps a little, scopes not at all).

Integer arithmetic stands in for the floating-point diffusion: the
stencil and coefficient formulas below keep the same data flow (5-point
neighbourhood -> coefficient -> update) with exactly reproducible values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.system import GPUSystem


@dataclass(frozen=True)
class SRADParams(AppParams):
    #: Image side (paper: 512).
    side: int = 64
    #: ALU cost of the coefficient computation.
    coeff_cycles: int = 60
    #: ALU cost of the diffusion update.
    update_cycles: int = 40


def reference(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CPU reference: (noise coefficients, output pixels)."""
    n = image.shape[0]
    padded = np.pad(image, 1, mode="edge")
    up = padded[:-2, 1:-1]
    down = padded[2:, 1:-1]
    left = padded[1:-1, :-2]
    right = padded[1:-1, 2:]
    center = image
    noise = (up + down + left + right - 4 * center) % 997 + 1
    out = (4 * center + up + down + left + right + noise) // 8 + 1
    return noise.reshape(n * n), out.reshape(n * n)


class SRAD(App):
    """Two-step stencil with native recovery (intra-thread PMO)."""

    name = "srad"
    scoped_pmo = "intra-thread"
    recovery_style = "native"

    def __init__(self, **overrides) -> None:
        self.params = SRADParams(**overrides)

    @property
    def n_pixels(self) -> int:
        return self.params.side * self.params.side

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def setup(self, system: GPUSystem) -> None:
        n = self.n_pixels
        self.image = system.malloc(4 * n)  # volatile input (GDDR)
        self.noise = system.pm_create("srad.noise", 4 * n)
        self.out = system.pm_create("srad.out", 4 * n)
        self._upload_image(system)

    def reopen(self, system: GPUSystem) -> None:
        n = self.n_pixels
        self.image = system.malloc(4 * n)
        self.noise = system.pm_open("srad.noise")
        self.out = system.pm_open("srad.out")
        # The volatile input did not survive the crash; the host
        # re-uploads it (it is the original, deterministic image).
        self._upload_image(system)

    def _upload_image(self, system: GPUSystem) -> None:
        system.host_write_words(self.image, self.image_pixels())

    def image_pixels(self) -> np.ndarray:
        side = self.params.side
        y, x = np.mgrid[0:side, 0:side]
        return ((x * 31 + y * 17) % 251 + 1).reshape(-1)

    # ------------------------------------------------------------------
    # kernel (crash-free execution and native recovery are the same)
    # ------------------------------------------------------------------
    def _kernel(self, w, p: SRADParams):
        n = p.side * p.side
        active = w.tid < n
        done = yield w.ld(self.out.base + 4 * w.tid, mask=active)
        todo = active & (done == 0)
        noise_prev = yield w.ld(self.noise.base + 4 * w.tid, mask=todo)
        need_noise = todo & (noise_prev == 0)

        # 5-point stencil over the volatile image (edge-clamped).
        row = w.tid // p.side
        col = w.tid % p.side
        up = np.maximum(row - 1, 0) * p.side + col
        down = np.minimum(row + 1, p.side - 1) * p.side + col
        left = row * p.side + np.maximum(col - 1, 0)
        right = row * p.side + np.minimum(col + 1, p.side - 1)
        c = yield w.ld(self.image.base + 4 * w.tid, mask=todo)
        u = yield w.ld(self.image.base + 4 * up, mask=todo)
        d = yield w.ld(self.image.base + 4 * down, mask=todo)
        le = yield w.ld(self.image.base + 4 * left, mask=todo)
        r = yield w.ld(self.image.base + 4 * right, mask=todo)

        yield w.compute(p.coeff_cycles)
        noise = (u + d + le + r - 4 * c) % 997 + 1
        yield w.st(self.noise.base + 4 * w.tid, noise, mask=need_noise)
        # The pixel must persist only after its noise value.
        yield w.ofence()
        yield w.compute(p.update_cycles)
        noise_eff = np.where(need_noise, noise, noise_prev)
        out = (4 * c + u + d + le + r + noise_eff) // 8 + 1
        yield w.st(self.out.base + 4 * w.tid, out, mask=todo)
        # The denoised image must be durable when the kernel finishes
        # (the application's contract with its caller): this is where
        # every model pays SRAD's bursty end-of-kernel persist traffic.
        yield w.dfence()

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _grid(self, system: GPUSystem) -> int:
        per_block = system.config.gpu.threads_per_block
        return max(1, -(-self.n_pixels // per_block))

    def run(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._kernel, self._grid(system), kwargs={"p": self.params}, name="srad"
        )
        return RunOutcome([result])

    def recover(self, system: GPUSystem) -> RunOutcome:
        # Native recovery: re-run; persisted pixels short-circuit.
        result = system.launch(
            self._kernel,
            self._grid(system),
            kwargs={"p": self.params},
            name="srad.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, system: GPUSystem, complete: bool = True) -> None:
        image = self.image_pixels().reshape(self.params.side, self.params.side)
        ref_noise, ref_out = reference(image)
        noise = system.read_words(self.noise, self.n_pixels)
        out = system.read_words(self.out, self.n_pixels)
        # Invariant: any persisted value must be the correct one, and a
        # persisted pixel implies its noise value persisted first.
        bad_noise = (noise != 0) & (noise != ref_noise)
        self.require(not bad_noise.any(), "SRAD: wrong persisted noise value")
        bad_out = (out != 0) & (out != ref_out)
        self.require(not bad_out.any(), "SRAD: wrong persisted pixel value")
        orphan = (out != 0) & (noise == 0)
        self.require(
            not orphan.any(),
            "SRAD: pixel persisted before its noise value (PMO violation)",
        )
        if complete:
            self.require(bool((out == ref_out).all()), "SRAD: output incomplete")

"""Multiqueue (MQ): per-threadblock persistent queues (Table 2, row 5).

Every threadblock owns one PM-resident queue and inserts batches of
entries transactionally (Chen et al.'s dynamic load-balancing queues,
which the paper cites).  Per batch:

1. each warp writes its slice of the batch into the queue array past the
   current tail and releases a **block-scope** flag (the intra-block
   inter-thread PMO: the tail may only persist after the entries);
2. the leader warp acquires every warp's flag, logs the old/new tail to
   a sealed PM record, ``oFence``s, publishes the new tail, ``oFence``s,
   and clears the seal (intra-thread PMO; the repeated tail and seal
   rewrites are the "frequent flushes during logging" the paper blames
   for MQ's modest speedups).

Recovery: a valid seal means the tail update may be torn — roll the tail
back to the logged old value (entries past the tail are dead weight and
are rewritten by the retried batch).  All-or-nothing per batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.common import SEAL, spin_pacq
from repro.common.config import Scope
from repro.system import GPUSystem


@dataclass(frozen=True)
class MultiqueueParams(AppParams):
    #: Batches inserted per queue (paper: 2K batches total).
    batches: int = 4
    #: Threadblocks == queues.
    blocks: int = 4
    #: ALU cost of producing one entry.
    produce_cycles: int = 25


def entry_value(block: int, index) -> np.ndarray | int:
    return (block + 1) * 100_000 + index + 1


class Multiqueue(App):
    """Per-block persistent queues with transactional batch insert."""

    name = "multiqueue"
    scoped_pmo = "intra/blk-interthread"
    recovery_style = "logging"

    def __init__(self, **overrides) -> None:
        self.params = MultiqueueParams(**overrides)

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def setup(self, system: GPUSystem) -> None:
        p = self.params
        gpu = system.config.gpu
        self.batch_size = gpu.threads_per_block
        capacity = p.batches * self.batch_size
        self.entries = system.pm_create("mq.entries", 4 * capacity * p.blocks)
        self.tail = system.pm_create("mq.tail", 4 * p.blocks * 32)  # line-spaced
        self.log_old = system.pm_create("mq.log_old", 4 * p.blocks * 32)
        self.log_new = system.pm_create("mq.log_new", 4 * p.blocks * 32)
        self.log_seal = system.pm_create("mq.log_seal", 4 * p.blocks * 32)
        # One producer flag per warp plus one commit flag, per block.
        self.wflags = system.malloc(4 * p.blocks * (gpu.warps_per_block + 1))

    def reopen(self, system: GPUSystem) -> None:
        p = self.params
        gpu = system.config.gpu
        self.batch_size = gpu.threads_per_block
        self.entries = system.pm_open("mq.entries")
        self.tail = system.pm_open("mq.tail")
        self.log_old = system.pm_open("mq.log_old")
        self.log_new = system.pm_open("mq.log_new")
        self.log_seal = system.pm_open("mq.log_seal")
        self.wflags = system.malloc(4 * p.blocks * (gpu.warps_per_block + 1))

    def _tail_word(self, block: int) -> int:
        # Tails are line-spaced so blocks never share a PM line.
        return self.tail.base + 4 * 32 * block

    # ------------------------------------------------------------------
    # kernel
    # ------------------------------------------------------------------
    def _insert_kernel(self, w, p: MultiqueueParams):
        blk = w.block_id
        capacity = p.batches * self.batch_size
        qbase = self.entries.base + 4 * capacity * blk
        leader = w.lane == 0
        is_leader_warp = w.warp_in_block == 0
        wpb = w.warps_per_block
        flag_base = self.wflags.base + 4 * (wpb + 1) * blk
        commit_flag = flag_base + 4 * wpb

        tail0 = yield w.ld(self._tail_word(blk), mask=leader)
        tail = int(tail0[0])
        start_batch = tail // self.batch_size  # resume after crash
        for batch in range(start_batch, p.batches):
            # Every warp produces and persists its slice of the batch.
            index = tail + w.warp_in_block * w.warp_size + w.lane
            yield w.compute(p.produce_cycles)
            yield w.st(qbase + 4 * index, entry_value(blk, index))
            yield w.prel(flag_base + 4 * w.warp_in_block, batch + 1, Scope.BLOCK)
            if is_leader_warp:
                # Tail persists only after every warp's entries.
                for other in range(wpb):
                    while True:
                        got = yield w.pacq(flag_base + 4 * other, Scope.BLOCK)
                        if got >= batch + 1:
                            break
                new_tail = tail + self.batch_size
                yield w.st(self.log_old.base + 4 * 32 * blk, tail + 1, mask=leader)
                yield w.st(self.log_new.base + 4 * 32 * blk, new_tail, mask=leader)
                yield w.st(
                    self.log_seal.base + 4 * 32 * blk,
                    (tail + 1) ^ new_tail ^ SEAL,
                    mask=leader,
                )
                yield w.ofence()
                yield w.st(self._tail_word(blk), new_tail, mask=leader)
                yield w.ofence()
                yield w.st(self.log_seal.base + 4 * 32 * blk, 0, mask=leader)
                yield w.prel(commit_flag, batch + 1, Scope.BLOCK)
            else:
                # Wait for the leader to commit before the next batch.
                while True:
                    got = yield w.pacq(commit_flag, Scope.BLOCK)
                    if got >= batch + 1:
                        break
            tail += self.batch_size

    def _recover_kernel(self, w, p: MultiqueueParams):
        blk = w.block_id
        leader = (w.lane == 0) & (w.warp_in_block == 0)
        old = yield w.ld(self.log_old.base + 4 * 32 * blk, mask=leader)
        new = yield w.ld(self.log_new.base + 4 * 32 * blk, mask=leader)
        seal = yield w.ld(self.log_seal.base + 4 * 32 * blk, mask=leader)
        valid = leader & (seal == (old ^ new ^ SEAL)) & (old > 0)
        # Roll the tail back to the logged old value (old is stored +1
        # so a zero tail is distinguishable from an empty record).
        yield w.st(self._tail_word(blk), old - 1, mask=valid)
        yield w.dfence()
        yield w.st(self.log_seal.base + 4 * 32 * blk, 0, mask=leader)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._insert_kernel,
            self.params.blocks,
            kwargs={"p": self.params},
            name="mq.insert",
        )
        return RunOutcome([result])

    def recover(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._recover_kernel,
            self.params.blocks,
            kwargs={"p": self.params},
            name="mq.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, system: GPUSystem, complete: bool = True) -> None:
        p = self.params
        capacity = p.batches * self.batch_size
        for blk in range(p.blocks):
            tail = int(system.read_word(self._tail_word(blk)))
            self.require(
                tail % self.batch_size == 0,
                f"MQ: queue {blk} tail {tail} is not batch-aligned",
            )
            self.require(tail <= capacity, f"MQ: queue {blk} tail overflow")
            if tail:
                idx = np.arange(tail)
                got = system.read_words(self.entries, capacity * p.blocks)[
                    capacity * blk : capacity * blk + tail
                ]
                want = entry_value(blk, idx)
                self.require(
                    bool((got == want).all()),
                    f"MQ: queue {blk} has torn entries below the tail",
                )
            if complete:
                self.require(
                    tail == capacity,
                    f"MQ: queue {blk} incomplete ({tail}/{capacity})",
                )

"""Scan: recoverable inclusive prefix sum (Table 2, row 6).

Each threadblock computes the inclusive scan of its PM-resident segment
iteratively (Hillis-Steele over warp-level partials).  A warp's round-*r*
output depends on another warp's round-*(r-1)* output, so every round
needs intra-threadblock PMO — expressed with block-scope pAcq/pRel, the
app with the purest block-inter-thread pattern in the paper.

Rounds write to distinct PM buffers (one per round), so every location
persists exactly once; during recovery the computation resumes from the
last fully persisted round (native recovery, "resumes from the persisted
array contents").

Because every round reads the previous round's PM buffer, L1 retention
across rounds is where SBRP wins; under the epoch model every barrier
invalidates those lines and each round re-reads PM (the paper notes
scan's many accesses to bandwidth-limited NVM cap its speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.common import spin_pacq
from repro.common.config import Scope
from repro.system import GPUSystem


@dataclass(frozen=True)
class ScanParams(AppParams):
    #: Threadblocks (each scans its own segment; paper: ~120K ints).
    blocks: int = 4
    #: ALU cost per element combine.
    add_cycles: int = 2


class Scan(App):
    """Blocked Hillis-Steele scan with block-scope release/acquire."""

    name = "scan"
    scoped_pmo = "blk-interthread"
    recovery_style = "native"

    def __init__(self, **overrides) -> None:
        self.params = ScanParams(**overrides)

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def _shape(self, system: GPUSystem) -> None:
        gpu = system.config.gpu
        self.wpb = gpu.warps_per_block
        if self.wpb & (self.wpb - 1):
            raise ValueError("scan needs a power-of-two warps/block")
        self.seg = gpu.threads_per_block
        self.n = self.params.blocks * self.seg
        self.rounds = max(1, self.wpb.bit_length() - 1)  # log2(wpb)

    def setup(self, system: GPUSystem) -> None:
        self._shape(system)
        self.input = system.pm_create("scan.input", 4 * self.n)
        self.bufs: List = [
            system.pm_create(f"scan.buf{r}", 4 * self.n)
            for r in range(self.rounds + 1)
        ]
        self.flags = system.malloc(
            4 * self.params.blocks * self.wpb * (self.rounds + 1)
        )
        system.host_write_words(self.input, self.input_values())

    def reopen(self, system: GPUSystem) -> None:
        self._shape(system)
        self.input = system.pm_open("scan.input")
        self.bufs = [
            system.pm_open(f"scan.buf{r}") for r in range(self.rounds + 1)
        ]
        self.flags = system.malloc(
            4 * self.params.blocks * self.wpb * (self.rounds + 1)
        )

    def input_values(self) -> np.ndarray:
        return (np.arange(self.n) * 7) % 23 + 1

    def _flag(self, blk: int, rnd: int, warp: int) -> int:
        per_block = self.wpb * (self.rounds + 1)
        return self.flags.base + 4 * (blk * per_block + rnd * self.wpb + warp)

    # ------------------------------------------------------------------
    # kernel
    # ------------------------------------------------------------------
    def _kernel(self, w, p: ScanParams):
        blk = w.block_id
        me = w.warp_in_block
        seg_base = blk * self.seg + me * w.warp_size
        my_words = 4 * (seg_base + w.lane)
        # Per-warp address vectors, computed once (each buffer's lane
        # addresses are reused across the round structure).
        buf_addrs = [buf.base + my_words for buf in self.bufs]
        add_op = w.compute(p.add_cycles)  # reused: the SM only reads it

        # Round 0: local inclusive scan of this warp's 32 elements.
        done0 = yield w.ld(buf_addrs[0])
        if int(done0[-1]) == 0:
            vals = yield w.ld(self.input.base + my_words)
            local = np.cumsum(vals).astype(np.int64)
            yield w.compute(5 * p.add_cycles)  # warp-shuffle scan
            yield w.st(buf_addrs[0], local)
        else:
            local = np.asarray(done0, dtype=np.int64)
        yield w.prel(self._flag(blk, 0, me), 1, Scope.BLOCK)

        # Rounds over warp partials: warp me adds the running total of
        # warp (me - 2^{r-1}) from the previous round's buffer.
        for r in range(1, self.rounds + 1):
            stride = 1 << (r - 1)
            done = yield w.ld(buf_addrs[r])
            if int(done[-1]) == 0:
                if me >= stride:
                    src_warp = me - stride
                    yield from spin_pacq(
                        w, self._flag(blk, r - 1, src_warp), Scope.BLOCK
                    )
                    src_last = (
                        blk * self.seg + src_warp * w.warp_size + w.warp_size - 1
                    )
                    carry = yield w.ld(
                        self.bufs[r - 1].base + 4 * src_last,
                        mask=w.lane == 0,
                    )
                    local = local + int(carry[0])
                    yield add_op
                yield w.st(buf_addrs[r], local)
            else:
                local = np.asarray(done, dtype=np.int64)
            yield w.prel(self._flag(blk, r, me), 1, Scope.BLOCK)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._kernel, self.params.blocks, kwargs={"p": self.params}, name="scan"
        )
        return RunOutcome([result])

    def recover(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._kernel,
            self.params.blocks,
            kwargs={"p": self.params},
            name="scan.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def expected(self) -> np.ndarray:
        vals = self.input_values().reshape(self.params.blocks, self.seg)
        return np.cumsum(vals, axis=1).reshape(-1)

    def check(self, system: GPUSystem, complete: bool = True) -> None:
        # Every persisted word of every round buffer must be correct.
        ref_final = self.expected()
        vals = self.input_values().reshape(self.params.blocks, self.wpb, -1)
        warp_scans = np.cumsum(vals, axis=2)
        for r, buf in enumerate(self.bufs):
            got = system.read_words(buf, self.n)
            ref = self._round_reference(warp_scans, r)
            bad = (got != 0) & (got != ref)
            self.require(
                not bad.any(), f"scan: wrong persisted value in round {r}"
            )
        if complete:
            final = system.read_words(self.bufs[-1], self.n)
            self.require(
                bool((final == ref_final).all()), "scan: final buffer incomplete"
            )

    def _round_reference(self, warp_scans: np.ndarray, r: int) -> np.ndarray:
        """Expected contents of round-r's buffer when fully computed."""
        blocks, wpb, lanes = warp_scans.shape
        out = warp_scans.astype(np.int64).copy()
        for rnd in range(1, r + 1):
            stride = 1 << (rnd - 1)
            prev = out.copy()
            for me in range(stride, wpb):
                out[:, me, :] += prev[:, me - stride, -1][:, None]
        return out.reshape(-1)
"""gpKVS: GPU-accelerated persistent key-value store (Table 2, row 1).

A batch of key-value updates is applied to a PM-resident open-addressing
table in parallel, one update per thread.  Recoverability uses
write-ahead *undo* logging (Figure 4 of the paper):

1. write the undo record (old key, old value, slot) sealed with a
   checksum word — one coalesced line per few threads,
2. ``oFence`` — the record must be durable before the pair changes,
3. overwrite the pair in the table,
4. ``oFence`` — the new pair must be durable before the log commits,
5. commit by clearing the seal (rewrites the record's line: the
   same-line-across-fence pattern that exercises SBRP's EDM).

The recovery kernel re-reads the log and restores the old pair for every
record whose seal is still valid, makes the restoration durable with
``dFence``, then discards the log — exactly Figure 4's ``recover()``.

Slot *s* initially holds the pair ``(s, 3s+1)``; the batch re-keys it to
``(s + capacity, 7s+2)``.  Key and value live in different PM lines, so
without logging a crash can tear a pair — the checker looks for exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.common import SEAL
from repro.system import GPUSystem


@dataclass(frozen=True)
class GpKVSParams(AppParams):
    #: Updates in the batch.  Paper: ~64K.
    n_pairs: int = 4096
    #: Table slots (>= n_pairs).
    capacity: int = 8192
    #: Operations per thread (batch processed in rounds; real gpKVS
    #: threads service several requests, re-reading KVS metadata between
    #: them — the L1 reuse that epoch barriers destroy, Figure 8).
    rounds: int = 4
    #: Buckets read while probing (PM read locality).
    probe_depth: int = 4
    #: Words of per-stripe bucket metadata (PM, re-read every round).
    dir_words: int = 1024
    #: Words of the volatile hash-coefficient table (re-read every
    #: round; GPM's system fence invalidates even these).
    coeff_words: int = 512
    #: ALU cost of hashing a key.
    hash_cycles: int = 40
    #: Deliberately mis-used persistency, for proving the fault
    #: campaign's oracles have teeth.  ``""`` = correct protocol;
    #: ``"unsealed_log"`` never seals the undo record (recovery can
    #: restore nothing); ``"missing_ofence"`` drops the record->table
    #: ordering fence (the Section 5.3 misuse pattern — latent under an
    #: uncongested FIFO drain, exposed by drain-order faults);
    #: ``"commit_first"`` clears the seal *before* overwriting the pair
    #: (premature log truncation — any crash inside the update window
    #: leaves a torn pair no recovery can restore).
    seeded_bug: str = ""


def old_value(slot: np.ndarray | int) -> np.ndarray | int:
    return 3 * slot + 1


def new_value(slot: np.ndarray | int) -> np.ndarray | int:
    return 7 * slot + 2


class GpKVS(App):
    """Persistent KVS with undo logging (intra-thread PMO)."""

    name = "gpkvs"
    scoped_pmo = "intra-thread"
    recovery_style = "logging"

    def __init__(self, **overrides) -> None:
        self.params = GpKVSParams(**overrides)
        if self.params.n_pairs > self.params.capacity:
            raise ValueError("n_pairs must not exceed capacity")
        if self.params.n_pairs % self.params.rounds:
            raise ValueError("n_pairs must be divisible by rounds")
        if self.params.seeded_bug not in (
            "",
            "unsealed_log",
            "missing_ofence",
            "commit_first",
        ):
            raise ValueError(
                f"unknown seeded_bug {self.params.seeded_bug!r}; "
                "have '', 'unsealed_log', 'missing_ofence', 'commit_first'"
            )

    # ------------------------------------------------------------------
    # memory layout
    # ------------------------------------------------------------------
    def setup(self, system: GPUSystem) -> None:
        p = self.params
        self.tbl_key = system.pm_create("gpkvs.tbl_key", 4 * p.capacity)
        self.tbl_val = system.pm_create("gpkvs.tbl_val", 4 * p.capacity)
        self.log_key = system.pm_create("gpkvs.log_key", 4 * p.n_pairs)
        self.log_val = system.pm_create("gpkvs.log_val", 4 * p.n_pairs)
        self.log_slot = system.pm_create("gpkvs.log_slot", 4 * p.n_pairs)
        self.log_seal = system.pm_create("gpkvs.log_seal", 4 * p.n_pairs)
        self.directory = system.pm_create("gpkvs.dir", 4 * p.dir_words)
        self.coeff = system.malloc(4 * p.coeff_words)
        slots = np.arange(p.capacity)
        system.host_write_words(self.tbl_key, slots)
        system.host_write_words(self.tbl_val, old_value(slots))
        system.host_write_words(self.directory, np.arange(p.dir_words) + 1)
        system.host_write_words(self.coeff, np.arange(p.coeff_words) + 1)

    def reopen(self, system: GPUSystem) -> None:
        self.tbl_key = system.pm_open("gpkvs.tbl_key")
        self.tbl_val = system.pm_open("gpkvs.tbl_val")
        self.log_key = system.pm_open("gpkvs.log_key")
        self.log_val = system.pm_open("gpkvs.log_val")
        self.log_slot = system.pm_open("gpkvs.log_slot")
        self.log_seal = system.pm_open("gpkvs.log_seal")
        self.directory = system.pm_open("gpkvs.dir")
        p = self.params
        self.coeff = system.malloc(4 * p.coeff_words)
        system.host_write_words(self.coeff, np.arange(p.coeff_words) + 1)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _insert_kernel(self, w, p: GpKVSParams):
        per_round = p.n_pairs // p.rounds
        # Round-invariant vectors, hoisted out of the loop (value-for-
        # value identical to computing them fresh each round).
        tid = w.tid
        coeff_addr = self.coeff.base + 4 * (tid % p.coeff_words)
        dir_addr = self.directory.base + 4 * (tid % p.dir_words)
        in_round = tid < per_round
        tbl_key_base = self.tbl_key.base
        tbl_val_base = self.tbl_val.base
        # Reused op objects: the SM only reads Compute fields.
        hash_op = w.compute(p.hash_cycles)
        update_op = w.compute(8)
        for rnd in range(p.rounds):
            op = tid + rnd * per_round  # this round's operation index
            active = in_round & (op < p.n_pairs)
            slot = op % p.capacity
            slot4 = 4 * slot
            op4 = 4 * op
            # Hashing re-reads the volatile coefficient table and the
            # PM-resident bucket directory every round: these lines are
            # hot in L1 under SBRP, invalidated by every epoch barrier
            # (and GPM's fence kills the volatile ones too).
            _c = yield w.ld(coeff_addr)
            _d = yield w.ld(dir_addr, mask=active)
            yield hash_op
            # Probe the neighbourhood (PM reads, warp-coalesced).
            for d in range(p.probe_depth):
                probe = (slot + d) % p.capacity
                _keys = yield w.ld(tbl_key_base + 4 * probe, mask=active)
            old_k = yield w.ld(tbl_key_base + slot4, mask=active)
            old_v = yield w.ld(tbl_val_base + slot4, mask=active)
            # Lookup-before-update: skip keys the batch already re-keyed
            # (a committed update surviving a crash) - idempotent re-runs.
            todo = active & (old_k != slot + p.capacity)
            # Undo record, sealed.
            yield w.st(self.log_key.base + op4, old_k, mask=todo)
            yield w.st(self.log_val.base + op4, old_v, mask=todo)
            yield w.st(self.log_slot.base + op4, slot, mask=todo)
            if p.seeded_bug != "unsealed_log":
                yield w.st(
                    self.log_seal.base + op4,
                    old_k ^ old_v ^ slot ^ SEAL,
                    mask=todo,
                )
            if p.seeded_bug != "missing_ofence":
                yield w.ofence()
            if p.seeded_bug == "commit_first":
                # BUG: the commit precedes the update it covers, so a
                # crash inside the update window finds an invalid record.
                yield w.st(self.log_seal.base + op4, 0, mask=todo)
            # Overwrite the pair.
            yield update_op
            yield w.st(tbl_key_base + slot4, slot + p.capacity, mask=todo)
            yield w.st(tbl_val_base + slot4, new_value(slot), mask=todo)
            yield w.ofence()
            # Commit: clear the seal (same line as the record - the EDM
            # same-line-across-fence pattern).
            if p.seeded_bug != "commit_first":
                yield w.st(self.log_seal.base + op4, 0, mask=todo)

    def _recover_kernel(self, w, p: GpKVSParams):
        active = w.tid < p.n_pairs
        k = yield w.ld(self.log_key.base + 4 * w.tid, mask=active)
        v = yield w.ld(self.log_val.base + 4 * w.tid, mask=active)
        s = yield w.ld(self.log_slot.base + 4 * w.tid, mask=active)
        seal = yield w.ld(self.log_seal.base + 4 * w.tid, mask=active)
        valid = active & (seal == (k ^ v ^ s ^ SEAL))
        # Restore the old pair for in-flight updates.
        yield w.st(self.tbl_key.base + 4 * s, k, mask=valid)
        yield w.st(self.tbl_val.base + 4 * s, v, mask=valid)
        yield w.dfence()
        # Discard the log only after the restoration is durable.
        yield w.st(self.log_seal.base + 4 * w.tid, 0, mask=active)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _grid(self, system: GPUSystem) -> int:
        per_block = system.config.gpu.threads_per_block
        threads = self.params.n_pairs // self.params.rounds
        return max(1, -(-threads // per_block))

    def run(self, system: GPUSystem) -> RunOutcome:
        result = system.launch(
            self._insert_kernel,
            self._grid(system),
            kwargs={"p": self.params},
            name="gpkvs.insert",
        )
        return RunOutcome([result])

    def recover(self, system: GPUSystem) -> RunOutcome:
        per_block = system.config.gpu.threads_per_block
        grid = max(1, -(-self.params.n_pairs // per_block))
        result = system.launch(
            self._recover_kernel,
            grid,
            kwargs={"p": self.params},
            name="gpkvs.recover",
        )
        return RunOutcome([result])

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, system: GPUSystem, complete: bool = True) -> None:
        p = self.params
        keys = system.read_words(self.tbl_key, p.capacity)
        vals = system.read_words(self.tbl_val, p.capacity)
        slots = np.arange(p.capacity)
        is_old = (keys == slots) & (vals == old_value(slots))
        is_new = (keys == slots + p.capacity) & (vals == new_value(slots))
        torn = ~(is_old | is_new)
        self.require(
            not torn.any(),
            f"gpKVS: {int(torn.sum())} torn pairs, first at slot "
            f"{int(np.argmax(torn))}",
        )
        if complete:
            updated = is_new[: p.n_pairs]
            self.require(
                bool(updated.all()),
                f"gpKVS: {int((~updated).sum())} batch updates missing",
            )

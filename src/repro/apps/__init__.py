"""The six PM-aware GPU applications of the paper's evaluation (Table 2).

============  ==============  =====================  =========
Application   Params (paper)  Scoped PMO             Recovery
============  ==============  =====================  =========
gpKVS         ~64K pairs      intra-thread           logging
Hashmap (HM)  ~50K entries    intra-thread           logging
SRAD          512x512 matrix  intra-thread           native
Reduction     ~4M ints        blk/dev inter-thread   native
Multiqueue    2K batches      intra + blk inter      logging
Scan          ~120K ints      blk inter-thread       native
============  ==============  =====================  =========

Every app implements the :class:`~repro.apps.base.App` protocol: build
its PM data structures on a :class:`~repro.system.GPUSystem`, run the
crash-free kernel(s), run a recovery kernel against a crash image, and
check its consistency invariants.  Workload sizes are configurable; the
defaults are scaled down from Table 2 for the Python substrate while
preserving each app's PMO structure.
"""

from repro.apps.base import App, AppParams, RunOutcome
from repro.apps.gpkvs import GpKVS
from repro.apps.hashmap import Hashmap
from repro.apps.multiqueue import Multiqueue
from repro.apps.reduction import Reduction
from repro.apps.scan import Scan
from repro.apps.srad import SRAD

#: Registry in the paper's presentation order (Figure 6 x-axis).
APPS = {
    "gpkvs": GpKVS,
    "hashmap": Hashmap,
    "srad": SRAD,
    "reduction": Reduction,
    "multiqueue": Multiqueue,
    "scan": Scan,
}

#: Apps resolved on first use: ``name -> (module, class)``.  The serve
#: app lives in :mod:`repro.serve`, which imports this package — eager
#: registration would cycle, so :func:`build_app` imports it lazily.
_LAZY_APPS = {
    "serve_kvs": ("repro.serve.app", "ServeKVS"),
}


def app_names():
    """Every registered app name (eager and lazy)."""
    return sorted(set(APPS) | set(_LAZY_APPS))


def build_app(name: str, **params):
    """Instantiate a registered application by name."""
    cls = APPS.get(name)
    if cls is None and name in _LAZY_APPS:
        import importlib

        module, attr = _LAZY_APPS[name]
        cls = APPS[name] = getattr(importlib.import_module(module), attr)
    if cls is None:
        raise KeyError(f"unknown app {name!r}; have {app_names()}")
    return cls(**params)


__all__ = [
    "APPS",
    "App",
    "AppParams",
    "app_names",
    "GpKVS",
    "Hashmap",
    "Multiqueue",
    "Reduction",
    "RunOutcome",
    "SRAD",
    "Scan",
    "build_app",
]

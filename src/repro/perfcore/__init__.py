"""Differential equivalence harness for the fast timing core.

The simulator ships two timing-core implementations behind
``SystemConfig.engine``: the original straight-line ``"reference"``
engine and the optimised ``"fast"`` engine (flattened event queue,
slotted hot paths, memoized address math).  Every downstream oracle —
conformance, fault campaigns, serving, soak — assumes exact cycle
reproducibility, so the fast path is only trusted because this package
can prove, scenario by scenario, that both engines produce *identical*
results: cycle counts, engine event counts, stats counters, metrics
snapshots, crash images and litmus observations.

Layout:

``fingerprint``
    Canonical, JSON-stable fingerprints of one run under one engine.
``grid``
    The matched scenario grid (models x apps x litmus corpus x fault
    plans) and the per-cell pair runner.
``diff``
    The CLI: ``python -m repro.perfcore.diff`` runs every grid cell
    under both engines and exits non-zero on any divergence.  Reports
    are byte-identical across ``--workers`` counts.
"""

from repro.perfcore.fingerprint import (
    fault_fingerprint,
    litmus_fingerprint,
    sim_fingerprint,
)
from repro.perfcore.grid import DiffCell, build_grid, run_cell

__all__ = [
    "DiffCell",
    "build_grid",
    "fault_fingerprint",
    "litmus_fingerprint",
    "run_cell",
    "sim_fingerprint",
]

"""The matched scenario grid the differential harness sweeps.

Every cell is a plain-JSON payload (so it crosses process boundaries
and lands in reports verbatim) that :func:`run_cell` executes twice —
once per engine — and reduces to a pair of fingerprints plus a match
verdict.  The grid covers the three axes the tentpole promises:

* **sim** — 3 persistency models x {gpkvs, reduction, scan}, the same
  shrunk cases the golden-trace tests pin;
* **litmus** — the full conformance corpus under every model, swept
  through the smoke variant set (the bounded perturbations that make
  ordering bugs visible);
* **fault** — fault-plan cells (power cut under every model, plus a
  torn-persist cell) whose crash/recover/classify sweep exercises the
  crash-image path end to end;
* **serve** — one serving-subsystem scenario per model (stream
  planning, durable transactions, worst-case recovery measurement);
* **soak** — the chaos-soak chain (resilient serve stream through a
  chronic fault timeline with crash→recover legs) under SBRP.

Every cell runs under the full engine axis — reference, fast, and the
batched fast core — and each non-reference engine is diffed against
the reference fingerprint.

``--smoke`` keeps the litmus corpus (single model), one fault cell,
one sim cell and one serve cell — the CI ``perfcore-smoke`` job's
grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from repro.common.config import ModelName

from repro.perfcore.fingerprint import ENGINES, diff_paths, fingerprint

#: Models of the matched grid, in suite order.
GRID_MODELS = (ModelName.GPM, ModelName.EPOCH, ModelName.SBRP)

#: Shrunk app parameters: the same sizes the golden-trace tests pin, so
#: a diff failure here and a golden failure point at the same run.
SIM_PARAMS: Dict[str, Dict[str, Any]] = {
    "gpkvs": dict(n_pairs=256, capacity=512, rounds=2),
    "reduction": dict(blocks=6, per_thread=4),
    "scan": dict(blocks=8),
}

#: Crash points sampled per litmus variant (matches the bench case).
LITMUS_CRASH_POINTS = 12

#: Fault cells run a smaller app: every crash point costs a recovery.
FAULT_PARAMS: Dict[str, Any] = dict(n_pairs=128, capacity=256, rounds=1)
FAULT_MAX_CRASH_POINTS = 6

#: Serve cell: a shrunk serving-subsystem scenario (stream planning +
#: durable transactions + worst-case recovery measurement).
SERVE_PARAMS: Dict[str, Any] = dict(
    n_requests=48, n_keys=48, capacity=128, batch_requests=24
)

#: Soak cell: a shrunk resilient serve stream through the pinned
#: brownout+burst chronic-fault schedule with one crash→recover leg.
SOAK_PARAMS: Dict[str, Any] = dict(
    n_requests=48,
    n_keys=48,
    capacity=128,
    batch_requests=12,
    rate_per_kcycle=40.0,
)
SOAK_CRASH_EVERY_BATCHES = 2
SOAK_CRASH_FRACTION = 0.6


@dataclass(frozen=True)
class DiffCell:
    """One differential cell: a named payload of a known kind."""

    name: str
    kind: str  # "sim" | "litmus" | "fault" | "serve" | "soak"
    payload: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "payload": self.payload}


def _sim_cells(models) -> List[DiffCell]:
    return [
        DiffCell(
            name=f"sim.{model.value}.{app}",
            kind="sim",
            payload={
                "model": model.value,
                "app": app,
                "params": dict(params),
            },
        )
        for model in models
        for app, params in SIM_PARAMS.items()
    ]


def _litmus_cells(models) -> List[DiffCell]:
    from repro.check.corpus import corpus_programs
    from repro.check.enumerator import SMOKE_VARIANTS

    variants = [variant.to_json() for variant in SMOKE_VARIANTS]
    return [
        DiffCell(
            name=f"litmus.{model.value}.{program.name}",
            kind="litmus",
            payload={
                "model": model.value,
                "program": program.to_json(),
                "variants": variants,
                "crash_points": LITMUS_CRASH_POINTS,
            },
        )
        for model in models
        for program in corpus_programs()
    ]


def _fault_cells(models, torn: bool) -> List[DiffCell]:
    from repro.faults.plans import PowerCutPlan, TornPersistPlan

    cells = [
        DiffCell(
            name=f"fault.{model.value}.gpkvs.powercut",
            kind="fault",
            payload={
                "model": model.value,
                "app": "gpkvs",
                "params": dict(FAULT_PARAMS),
                "fault": dict(
                    PowerCutPlan().to_json(),
                    max_crash_points=FAULT_MAX_CRASH_POINTS,
                ),
            },
        )
        for model in models
    ]
    if torn:
        cells.append(
            DiffCell(
                name="fault.sbrp.gpkvs.torn",
                kind="fault",
                payload={
                    "model": ModelName.SBRP.value,
                    "app": "gpkvs",
                    "params": dict(FAULT_PARAMS),
                    "fault": dict(
                        TornPersistPlan().to_json(),
                        max_crash_points=FAULT_MAX_CRASH_POINTS,
                    ),
                },
            )
        )
    return cells


def _serve_cells(models) -> List[DiffCell]:
    return [
        DiffCell(
            name=f"serve.{model.value}.kvs",
            kind="serve",
            payload={"model": model.value, "params": dict(SERVE_PARAMS)},
        )
        for model in models
    ]


def _soak_cells(models) -> List[DiffCell]:
    from repro.chaos.soak import brownout_burst

    soak = {
        "timeline": brownout_burst().to_json(),
        "crash_every_batches": SOAK_CRASH_EVERY_BATCHES,
        "crash_fraction": SOAK_CRASH_FRACTION,
    }
    return [
        DiffCell(
            name=f"soak.{model.value}.kvs",
            kind="soak",
            payload={
                "model": model.value,
                "params": dict(SOAK_PARAMS),
                "soak": soak,
            },
        )
        for model in models
    ]


def build_grid(smoke: bool = False) -> List[DiffCell]:
    """The matched grid, in stable sweep order."""
    if smoke:
        return (
            _sim_cells([ModelName.SBRP])[:1]
            + _litmus_cells([ModelName.SBRP])
            + _fault_cells([ModelName.SBRP], torn=False)
            + _serve_cells([ModelName.SBRP])
        )
    return (
        _sim_cells(GRID_MODELS)
        + _litmus_cells(GRID_MODELS)
        + _fault_cells(GRID_MODELS, torn=True)
        + _serve_cells(GRID_MODELS)
        + _soak_cells([ModelName.SBRP])
    )


def run_cell(cell_json: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one cell under every engine of the axis; top-level so worker
    processes can execute it.  The report is a pure function of the
    payload: the reference fingerprint is the oracle, and every other
    engine (the fast core, the batched fast core) is diffed against it
    with mismatch paths prefixed by the diverging engine's name."""
    kind = cell_json["kind"]
    payload = cell_json["payload"]
    prints = {
        engine: fingerprint(kind, payload, engine) for engine in ENGINES
    }
    reference = prints["reference"]
    mismatches: List[str] = []
    for engine in ENGINES[1:]:
        mismatches.extend(
            f"{engine}:{path}"
            for path in diff_paths(reference, prints[engine])
        )
    report = {
        "name": cell_json["name"],
        "kind": kind,
        "match": not mismatches,
        "mismatches": mismatches,
    }
    report.update(prints)
    return report

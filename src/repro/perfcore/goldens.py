"""Golden-trace management: check and regenerate the pinned traces.

``tests/perfcore/golden_traces.json`` pins the exact end-to-end
behaviour (cycles, events, stats, crash-image and metrics hashes) of
every sim grid case.  The *only* legitimate way that file changes is a
deliberate re-pin from the **reference engine** — the oracle the fast
cores are proven against — so this CLI owns the file:

* default mode recomputes every case on the reference engine and fails
  (exit 1, field-level diff paths) if the checked-in file disagrees —
  the golden test suite's check, runnable standalone;
* ``--regenerate`` rewrites the file from the reference engine.  It
  **refuses** when the working-tree copy already differs from git HEAD
  (that is what a hand-edited golden looks like) unless ``--force`` is
  given: regeneration must start from a known-good pin, never launder
  local edits into a new baseline.

Command line::

    python -m repro.perfcore.goldens               # check
    python -m repro.perfcore.goldens --regenerate  # re-pin from reference
    python -m repro.perfcore.goldens --regenerate --force
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perfcore.fingerprint import diff_paths, sim_fingerprint
from repro.perfcore.grid import GRID_MODELS, SIM_PARAMS

#: Default location, relative to the repository root / CI cwd.
DEFAULT_PATH = Path("tests") / "perfcore" / "golden_traces.json"


def reference_cases() -> Dict[str, Dict[str, Any]]:
    """Every sim grid case, fingerprinted on the reference engine."""
    cases: Dict[str, Dict[str, Any]] = {}
    for model in GRID_MODELS:
        for app, params in SIM_PARAMS.items():
            fp = sim_fingerprint(model.value, app, params, "reference")
            if "error" in fp:
                raise RuntimeError(
                    f"reference run failed for {model.value}.{app}: "
                    f"{fp['error']}"
                )
            cases[f"{model.value}.{app}"] = {
                "model": model.value,
                "app": app,
                "app_params": dict(params),
                **fp,
            }
    return cases


def build_document(existing: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """A full golden document from the reference engine.  The machine
    description is carried over from *existing* (the system shape did
    not change with the re-pin unless the grid params did)."""
    machine = (existing or {}).get(
        "machine",
        "small_system(num_sms=4, tpb=128, l1=16K), PMPlacement.FAR, metrics on",
    )
    return {
        "cases": reference_cases(),
        "machine": machine,
        "note": (
            "pinned from the reference engine via "
            "`python -m repro.perfcore.goldens --regenerate` -- any "
            "engine change that shifts timing must fail these"
        ),
    }


def render(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def check(path: Path) -> List[str]:
    """Dotted paths where the checked-in goldens disagree with a fresh
    reference run (empty = clean)."""
    committed = json.loads(path.read_text(encoding="utf-8"))
    return diff_paths(committed["cases"], reference_cases(), limit=40)


def _git_dirty(path: Path) -> Optional[bool]:
    """True when *path* has uncommitted changes; None when git cannot
    answer (not a repo, git missing) — the caller treats that as clean
    since there is no baseline to diverge from."""
    resolved = path.resolve()
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--", str(resolved)],
            capture_output=True,
            text=True,
            check=True,
            cwd=str(resolved.parent),
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return bool(proc.stdout.strip())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfcore.goldens",
        description="Check or regenerate the golden traces from the "
        "reference engine.",
    )
    parser.add_argument(
        "--file",
        type=Path,
        default=DEFAULT_PATH,
        help=f"golden-trace file (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help="rewrite the file from a fresh reference-engine sweep",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="regenerate even when the working-tree file has "
        "uncommitted changes",
    )
    args = parser.parse_args(argv)
    path: Path = args.file
    if not path.exists():
        print(f"no golden file at {path}", file=sys.stderr)
        return 1

    if not args.regenerate:
        mismatches = check(path)
        if mismatches:
            print(
                f"{path} diverges from the reference engine on "
                f"{len(mismatches)} path(s):",
                file=sys.stderr,
            )
            for m in mismatches:
                print(f"  {m}", file=sys.stderr)
            return 1
        print(f"{path} matches the reference engine")
        return 0

    if not args.force and _git_dirty(path):
        print(
            f"{path} already differs from git HEAD -- refusing to "
            "regenerate on top of local (possibly hand-made) edits.  "
            "Commit or revert the file first, or pass --force.",
            file=sys.stderr,
        )
        return 1
    existing = json.loads(path.read_text(encoding="utf-8"))
    doc = build_document(existing)
    path.write_text(render(doc), encoding="utf-8")
    print(f"regenerated {path} ({len(doc['cases'])} cases)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

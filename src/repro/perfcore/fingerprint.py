"""Canonical per-run fingerprints for the differential harness.

Each function runs one scenario under one named engine and reduces the
run to a plain-JSON dict whose equality *is* the equivalence claim:
two engines agree on a scenario exactly when their fingerprints are
equal.  Everything observable goes in — simulated cycles, engine event
counts, the full stats-counter map, a hash of the metrics snapshot and
of the durable crash image, and (for litmus programs) the complete
simulator observation the conformance oracle consumes.

Fingerprints are deterministic: no wall-clock, no unseeded randomness,
sorted keys throughout.  A scenario that *raises* fingerprints as its
exception type and message — a wedge must wedge identically under both
engines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Any, Dict, List, Mapping

from repro.common.config import ModelName, PMPlacement, small_system

#: Engines the harness pairs up, in report order.  ``reference`` is the
#: oracle; every later name is diffed against it.  ``batch`` is not a
#: ``SystemConfig.engine`` value — it is the fast engine with batched
#: warp stepping on (see :func:`engine_config`).
ENGINES = ("reference", "fast", "batch")


def engine_config(config: Any, engine: str) -> Any:
    """Resolve a harness engine name onto *config*.

    The harness axis is finer than ``SystemConfig.engine``: ``batch``
    selects the fast engine with ``batch_warps`` on, while ``fast``
    pins batching *off* so the two fast rows exercise distinct cores.
    """
    if engine == "batch":
        return replace(config, engine="fast", batch_warps=True)
    return replace(config, engine=engine, batch_warps=False)


def canonical_json(payload: Any) -> str:
    """Compact, sorted-key JSON — the hashable canonical form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sha256_of(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _image_items(image: Mapping[str, int]) -> List[List[Any]]:
    """A location->value image as sorted [loc, value] pairs."""
    return [[loc, int(value)] for loc, value in sorted(image.items())]


# ----------------------------------------------------------------------
# cold app simulation
# ----------------------------------------------------------------------
def sim_fingerprint(
    model: str,
    app: str,
    params: Mapping[str, Any],
    engine: str,
) -> Dict[str, Any]:
    """Run *app* under *model* on *engine*; fingerprint everything.

    The run mirrors a ``bench.perf`` sim case (``small_system``, FAR
    placement) but with live metrics on and a post-run ``sync()`` +
    crash so the durable image and the metrics snapshot participate in
    the equivalence check, not just timing.
    """
    from repro.apps import build_app
    from repro.system import GPUSystem

    config = engine_config(
        small_system(ModelName(model), PMPlacement.FAR), engine
    )
    system = GPUSystem(config, metrics=True)
    app_obj = build_app(app, **dict(params))
    try:
        app_obj.setup(system)
        app_obj.run(system)
        system.sync()
    except Exception as err:  # noqa: BLE001 - wedges must match too
        return {"error": f"{type(err).__name__}: {err}"}
    image = system.crash()
    return {
        "cycles": system.total_cycles(),
        "events": int(system.stat("engine.events_processed")),
        "stats": dict(sorted(system.stats.snapshot().items())),
        "crash_image_sha256": sha256_of(
            {str(addr): value for addr, value in sorted(image.pm.items())}
        ),
        "metrics_snapshot_sha256": sha256_of(system.metrics_snapshot()),
    }


# ----------------------------------------------------------------------
# litmus programs
# ----------------------------------------------------------------------
def litmus_fingerprint(
    program_json: Mapping[str, Any],
    model: str,
    variants_json: List[Mapping[str, Any]],
    crash_points: int,
    engine: str,
) -> Dict[str, Any]:
    """Run one corpus program under every variant on *engine*.

    The fingerprint is the full :class:`SimulationObservation` per
    variant — observed crash images with first-seen times, the witness
    (which release each acquire read), dFence durable images, and the
    final post-drain image.  This is exactly what the conformance
    oracle judges, so equality here means the fast engine cannot change
    any conformance verdict.
    """
    from repro.check.enumerator import Variant
    from repro.formal.bridge import simulate_program
    from repro.formal.events import LitmusProgram

    program = LitmusProgram.from_json(dict(program_json))
    name = ModelName(model)
    per_variant: List[Dict[str, Any]] = []
    for variant_json in variants_json:
        variant = Variant.from_json(variant_json)
        config = engine_config(variant.configure(program, name), engine)
        try:
            obs = simulate_program(
                program,
                model=name,
                config=config,
                crash_points=crash_points,
                thread_order=variant.thread_order(program),
            )
        except Exception as err:  # noqa: BLE001 - wedges must match too
            per_variant.append(
                {
                    "variant": variant.name,
                    "error": f"{type(err).__name__}: {err}",
                }
            )
            continue
        per_variant.append(
            {
                "variant": variant.name,
                "end": obs.end,
                "images": [
                    [time, _image_items(image)] for time, image in obs.images
                ],
                "final_image": _image_items(obs.final_image),
                "dfence_images": {
                    str(eid): [time, _image_items(image)]
                    for eid, (time, image) in sorted(obs.dfence_images.items())
                },
                "reads_from": {
                    str(eid): source
                    for eid, source in sorted(obs.reads_from.items())
                },
            }
        )
    return {"program": program.name, "variants": per_variant}


# ----------------------------------------------------------------------
# fault-injected scenarios
# ----------------------------------------------------------------------
def fault_fingerprint(
    model: str,
    app: str,
    params: Mapping[str, Any],
    fault: Mapping[str, Any],
    engine: str,
) -> Dict[str, Any]:
    """One fault-injected scenario (run + crash/recover/classify sweep).

    The reproducer spec is scrubbed from the hashed detail: it embeds
    the full config dict, whose ``engine`` field necessarily differs
    between the two runs being compared.  Every behavioural field — the
    run classification, each crash point's time and classification, the
    injected-fault counts, the outcome — is compared verbatim.
    """
    from repro.faults.runner import run_fault_scenario

    config = engine_config(
        small_system(ModelName(model), PMPlacement.FAR), engine
    )
    try:
        result = run_fault_scenario(app, config, dict(params), dict(fault))
    except Exception as err:  # noqa: BLE001 - wedges must match too
        return {"error": f"{type(err).__name__}: {err}"}
    detail = dict(result.detail)
    detail.pop("reproducer", None)
    return {
        "cycles": result.cycles,
        "stats": dict(sorted(result.stats.items())),
        "outcome": detail["outcome"],
        "point_counts": detail["point_counts"],
        "detail_sha256": sha256_of(detail),
    }


# ----------------------------------------------------------------------
# serving and soak scenarios
# ----------------------------------------------------------------------
def _scenario_reduction(result: Any) -> Dict[str, Any]:
    """Reduce a ScenarioResult to its engine-comparable core.  The
    ``label`` is deliberately excluded (it names the config, which
    necessarily differs across the engine axis); everything behavioural
    — cycles, every stat, the structured detail, the full metrics
    snapshot — is compared."""
    return {
        "cycles": result.cycles,
        "stats": dict(sorted(result.stats.items())),
        "detail_sha256": sha256_of(result.detail),
        "metrics_sha256": sha256_of(result.metrics),
    }


def serve_fingerprint(
    model: str, params: Mapping[str, Any], engine: str
) -> Dict[str, Any]:
    """One serving-subsystem scenario: stream planning, durable
    transactions with adaptive persist-path selection, SLO pricing and
    the worst-case recovery measurement."""
    from repro.serve.runner import run_serve_scenario

    config = engine_config(small_system(ModelName(model)), engine)
    try:
        result = run_serve_scenario("serve_kvs", config, dict(params))
    except Exception as err:  # noqa: BLE001 - wedges must match too
        return {"error": f"{type(err).__name__}: {err}"}
    return _scenario_reduction(result)


def soak_fingerprint(
    model: str,
    params: Mapping[str, Any],
    soak: Mapping[str, Any],
    engine: str,
) -> Dict[str, Any]:
    """One chaos-soak scenario: a resilient serve stream through a
    chronic fault timeline with crash→recover legs — the heaviest
    composite path the simulator has, covering the chronic injector,
    crash imaging and oracle recovery on top of the serve kernels."""
    from repro.chaos.runner import run_soak_scenario
    from repro.common.config import ResilienceConfig

    config = replace(
        engine_config(small_system(ModelName(model)), engine),
        resilience=ResilienceConfig(enabled=True),
    )
    try:
        result = run_soak_scenario(
            "serve_kvs", config, dict(params), dict(soak)
        )
    except Exception as err:  # noqa: BLE001 - wedges must match too
        return {"error": f"{type(err).__name__}: {err}"}
    return _scenario_reduction(result)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def fingerprint(kind: str, payload: Mapping[str, Any], engine: str) -> Dict[str, Any]:
    """Fingerprint one grid cell payload under *engine*."""
    if kind == "sim":
        return sim_fingerprint(
            payload["model"], payload["app"], payload["params"], engine
        )
    if kind == "litmus":
        return litmus_fingerprint(
            payload["program"],
            payload["model"],
            payload["variants"],
            int(payload["crash_points"]),
            engine,
        )
    if kind == "fault":
        return fault_fingerprint(
            payload["model"],
            payload["app"],
            payload["params"],
            payload["fault"],
            engine,
        )
    if kind == "serve":
        return serve_fingerprint(payload["model"], payload["params"], engine)
    if kind == "soak":
        return soak_fingerprint(
            payload["model"], payload["params"], payload["soak"], engine
        )
    raise ValueError(f"unknown diff cell kind {kind!r}")


def diff_paths(
    reference: Any, fast: Any, prefix: str = "", limit: int = 20
) -> List[str]:
    """Dotted paths where two fingerprints disagree (bounded list)."""
    out: List[str] = []
    _walk_diff(reference, fast, prefix, out, limit)
    return out


def _walk_diff(a: Any, b: Any, prefix: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a or key not in b:
                out.append(path)
                if len(out) >= limit:
                    return
                continue
            _walk_diff(a[key], b[key], path, out, limit)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{prefix}.length" if prefix else "length")
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            _walk_diff(item_a, item_b, f"{prefix}[{index}]", out, limit)
            if len(out) >= limit:
                return
        return
    if a != b:
        out.append(prefix or "<root>")

"""CLI of the differential harness: reference vs fast, cell by cell.

Runs every cell of the matched grid (``repro.perfcore.grid``) under
both timing cores and fails loudly on any divergence.  The report is a
sorted-key JSON document that is **byte-identical across worker
counts** — CI runs ``--workers 1`` and ``--workers 2`` and ``cmp``\\ s
the outputs, the same discipline every other campaign in this repo
follows.

Command line::

    python -m repro.perfcore.diff                  # full matched grid
    python -m repro.perfcore.diff --smoke          # CI subset
    python -m repro.perfcore.diff --workers 2 --out report.json
    python -m repro.perfcore.diff --cases litmus.sbrp.mp_ofence_split
    python -m repro.perfcore.diff --list           # cell names only

Exit status: 0 when every cell matched, 1 on any mismatch or failed
cell.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perfcore.grid import DiffCell, build_grid, run_cell


def _run_serial(cells: List[DiffCell]) -> List[Dict[str, Any]]:
    return [run_cell(cell.to_json()) for cell in cells]


def _run_pooled(cells: List[DiffCell], workers: int) -> List[Dict[str, Any]]:
    """Fan cells out over a crash-isolated pool; reports come back in
    submission order, so the document is identical to a serial run."""
    from repro.exec.pool import WorkerPool

    outcomes = WorkerPool(workers=workers).run(
        [cell.to_json() for cell in cells],
        run_cell,
        labels=[cell.name for cell in cells],
    )
    reports: List[Dict[str, Any]] = []
    for cell, outcome in zip(cells, outcomes):
        if outcome.ok:
            reports.append(outcome.value)
        else:
            reports.append(
                {
                    "name": cell.name,
                    "kind": cell.kind,
                    "match": False,
                    "mismatches": [f"cell failed: {outcome.status}"],
                    "error": outcome.error,
                }
            )
    return reports


def build_report(
    reports: List[Dict[str, Any]], suite: str, full: bool
) -> Dict[str, Any]:
    """Fold per-cell reports into the output document.

    Without ``full``, matching cells drop their (bulky, equal)
    fingerprints — the match verdict is the information; mismatching
    cells always keep every engine's fingerprint so the divergence is
    diffable from the report alone.
    """
    from repro.perfcore.fingerprint import ENGINES

    cells: Dict[str, Any] = {}
    mismatched: List[str] = []
    for report in reports:
        entry = dict(report)
        if entry["match"] and not full:
            for engine in ENGINES:
                entry.pop(engine, None)
        cells[report["name"]] = entry
        if not report["match"]:
            mismatched.append(report["name"])
    return {
        "schema": 1,
        "suite": suite,
        "cells": cells,
        "total": len(reports),
        "mismatched": sorted(mismatched),
    }


def render_report(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfcore.diff",
        description="Prove the fast timing core equivalent to the "
        "reference engine over the matched scenario grid.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI subset: litmus corpus (sbrp) + one fault cell + one sim cell",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="concurrent worker processes (default: 1 = in-process)",
    )
    parser.add_argument(
        "--cases", nargs="+", default=None, metavar="CELL",
        help="restrict to these cell names",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--full", action="store_true",
        help="keep both fingerprints for matching cells too",
    )
    parser.add_argument(
        "--list", action="store_true", help="print cell names and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    args = parser.parse_args(argv)

    cells = build_grid(smoke=args.smoke)
    if args.cases is not None:
        known = {cell.name: cell for cell in build_grid(smoke=False)}
        missing = [name for name in args.cases if name not in known]
        if missing:
            parser.error(f"unknown cells {missing}; have {sorted(known)}")
        cells = [known[name] for name in args.cases]
    if args.list:
        try:
            for cell in cells:
                print(cell.name)
        except BrokenPipeError:  # `... --list | head` closed the pipe
            sys.stderr.close()
        return 0

    if args.workers > 1:
        reports = _run_pooled(cells, args.workers)
    else:
        reports = _run_serial(cells)

    if not args.quiet:
        for report in reports:
            verdict = "ok" if report["match"] else "MISMATCH"
            print(f"  {report['name']:40s} {verdict}", file=sys.stderr)

    doc = build_report(reports, "smoke" if args.smoke else "full", args.full)
    text = render_report(doc)
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        if not args.quiet:
            print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text, end="")

    if doc["mismatched"]:
        print(
            f"{len(doc['mismatched'])} of {doc['total']} cells diverged: "
            f"{doc['mismatched']}",
            file=sys.stderr,
        )
        return 1
    if not args.quiet:
        print(
            f"all {doc['total']} cells cycle-identical across engines",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

"""The soak runner: crash→recover→crash chains under chronic faults.

``run_soak_scenario`` drives one serving stream (a
:class:`~repro.serve.app.ServeKVS` plan) through a
:class:`~repro.chaos.timeline.TimelinePlan` of chronic faults, crashing
the machine inside every ``crash_every_batches``-th batch and rebooting
onto the surviving image:

* **oracle per reboot** — every crash image first goes through the
  PR-3 application oracle (:func:`repro.faults.oracles
  .recover_and_classify`: clean machine, recovery kernel, invariant
  check) before the chain continues, so a single bad image fails the
  soak even if later batches would have papered over it;
* **zero data loss** — after each reboot's recovery, every key's
  recovered version is audited against the ledger of batches whose
  group commit *durably completed* before the crash instant; a
  committed version regressing is data loss and is reported as such;
* **resilience** — with ``config.resilience.enabled`` the batch
  scheduler runs admission control (watermarks → shed/throttle/reject)
  and transient bursts retry on the exponential-backoff policy; with it
  disabled the same schedule is served naively, which is the mutation
  teeth the soak cells assert (documented failure, not silence);
* **SLOs** — availability (1 − recovery downtime / total machine
  time), goodput (committed requests per second of wall time on the
  open-loop clock), latency percentiles under fault, and the
  recovery-time distribution.

Everything is a pure function of (app params, config, soak payload), so
soak reports are byte-identical across Executor worker counts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.apps import build_app
from repro.bench.runner import ScenarioResult
from repro.chaos.injector import ChronicInjector
from repro.chaos.resilience import AdmissionController, ResilienceMonitor
from repro.chaos.timeline import TimelinePlan
from repro.common.config import SystemConfig
from repro.common.errors import DegradedModeError, ReproError
from repro.common.units import CLOCK_MHZ
from repro.faults.oracles import (
    CONSISTENT,
    classify_run_exception,
    describe,
    recover_and_classify,
)
from repro.faults.plans import FaultPlan
from repro.metrics.registry import MetricsRegistry
from repro.serve.app import VALUE_STEP, encode_value
from repro.system import GPUSystem

#: Histogram of request commit latencies under fault, cycles.
LATENCY_METRIC = "soak.latency_cycles"

#: Soak-level failure stages (distinct from oracle classifications).
FAILURE_REJECTED = "degraded_rejected"
FAILURE_FINAL_CHECK = "final_check_failed"


def _batch_commits(plan) -> List[Dict[int, int]]:
    """Per batch: the key→version writes its group commit applies."""
    commits: List[Dict[int, int]] = []
    for batch in plan.batches:
        applied: Dict[int, int] = {}
        for req in batch.requests:
            if req.is_applying_write:
                applied[int(req.key)] = max(
                    applied.get(int(req.key), 0), int(req.version)
                )
        commits.append(applied)
    return commits


def _audit_committed(
    system: GPUSystem, app, committed: Mapping[int, int]
) -> List[Dict[str, int]]:
    """Keys whose recovered version regressed below a committed one."""
    lost: List[Dict[str, int]] = []
    if not committed:
        return lost
    vals = system.read_words(app.tbl_val, app.params.capacity)
    for key in sorted(committed):
        version = committed[key]
        delta = int(vals[key]) - int(encode_value(key, 0))
        if delta >= 0 and delta % VALUE_STEP == 0:
            recovered = delta // VALUE_STEP
        else:
            recovered = -1  # not a valid value for this key at all
        if recovered < version:
            lost.append(
                {"key": int(key), "committed": int(version), "recovered": recovered}
            )
    return lost


def _merge_counts(totals: Dict[str, int], injector: Optional[Any]) -> None:
    if injector is None:
        return
    for key, value in injector.counts.items():
        totals[key] = totals.get(key, 0) + int(value)


def run_soak_scenario(
    app_name: str,
    config: SystemConfig,
    app_params: Optional[dict] = None,
    soak: Optional[Mapping[str, Any]] = None,
) -> ScenarioResult:
    """Soak one serving stream through a chronic fault schedule."""
    payload = dict(soak or {})
    plan_json = payload.pop("timeline", None)
    if plan_json is None:
        raise ValueError("soak payload needs a 'timeline' fault plan")
    timeline = FaultPlan.from_json(plan_json)
    if not isinstance(timeline, TimelinePlan):
        raise ValueError("soak timeline must be a timeline fault plan")
    crash_every = int(payload.pop("crash_every_batches", 0))
    crash_fraction = float(payload.pop("crash_fraction", 0.6))
    if payload:
        raise ValueError(f"unknown soak payload keys {sorted(payload)}")

    params = dict(app_params or {})
    resilience = config.resilience
    metrics = MetricsRegistry()
    monitor = ResilienceMonitor(resilience, metrics)
    admission = AdmissionController(resilience, metrics)

    app = build_app(app_name, **params)
    plan = app.plan
    n_batches = len(plan.batches)
    commits = _batch_commits(plan)

    offset = 0.0  # global soak-chain time of the current machine's boot
    downtime = 0.0
    clock = 0.0  # open-loop pricing clock (global cycles)
    committed: Dict[int, int] = {}  # durable ledger: key -> version
    committed_requests = 0
    recoveries: List[float] = []
    reboots: List[Dict[str, Any]] = []
    lost: List[Dict[str, int]] = []
    injected: Dict[str, int] = {}
    failure: Optional[Dict[str, Any]] = None
    replayed: set = set()

    system = GPUSystem(
        config,
        faults=ChronicInjector(timeline, resilience=resilience, time_offset=offset),
        metrics=metrics,
    )
    app.setup(system)

    index = 0
    while index < n_batches:
        batch = plan.batches[index]
        t0 = system.now
        try:
            advice = admission.admit(system, monitor, now=t0)
        except DegradedModeError as exc:
            failure = {
                "stage": "admission",
                "batch": index,
                "classification": FAILURE_REJECTED,
                "error": describe(exc),
            }
            break
        clock += advice.deferred_cycles
        try:
            results = app.serve_batch(
                system, index, policy=advice.policy, split=advice.split
            )
        except ReproError as exc:
            failure = {
                "stage": "serve",
                "batch": index,
                "classification": classify_run_exception(exc),
                "error": describe(exc),
            }
            break
        kernel_cycles = float(sum(r.cycles for r in results))
        monitor.observe_system(system, system.now)

        crash_here = (
            crash_every > 0
            and (index + 1) % crash_every == 0
            and index not in replayed
        )
        if crash_here:
            # Crash inside this batch's execution window: everything up
            # to batch index-1 is durably committed, batch index is the
            # in-flight casualty the recovery protocol must handle.
            t_crash = t0 + crash_fraction * (system.now - t0)
            image = system.crash(at=t_crash)
            _merge_counts(injected, system.faults)
            classification, error = recover_and_classify(
                app_name, params, config, image
            )
            offset += t_crash
            rebooted = GPUSystem(
                config,
                pm_image=image,
                faults=ChronicInjector(
                    timeline, resilience=resilience, time_offset=offset
                ),
                metrics=metrics,
            )
            app.reopen(rebooted)
            recovery = app.recover(rebooted)
            rebooted.sync()
            recovery_cycles = float(recovery.cycles)
            recoveries.append(recovery_cycles)
            downtime += recovery_cycles
            clock += recovery_cycles  # clients wait out the reboot
            metrics.observe("soak.recovery_cycles", recovery_cycles)
            audit = _audit_committed(rebooted, app, committed)
            lost.extend(audit)
            reboots.append(
                {
                    "batch": index,
                    "crash_time": t_crash,
                    "global_time": offset,
                    "oracle": classification,
                    "error": error,
                    "recovery_cycles": recovery_cycles,
                    "lost_committed": len(audit),
                }
            )
            if classification != CONSISTENT:
                failure = {
                    "stage": "oracle",
                    "batch": index,
                    "classification": classification,
                    "error": error,
                }
                break
            system = rebooted
            replayed.add(index)
            continue  # replay the in-flight batch on the recovered machine

        # The batch's group commit is durable: price it, ledger it.
        start = max(clock, offset + float(batch.ready_time))
        clock = start + kernel_cycles
        for req in batch.requests:
            metrics.observe(LATENCY_METRIC, clock - (offset + float(req.arrival)))
        committed.update(commits[index])
        committed_requests += len(batch.requests)
        index += 1

    _merge_counts(injected, system.faults)
    if failure is None:
        try:
            app.check(system, complete=True)
        except ReproError as exc:
            failure = {
                "stage": "final_check",
                "batch": n_batches - 1,
                "classification": FAILURE_FINAL_CHECK,
                "error": describe(exc),
            }

    total_time = offset + system.now
    availability = 1.0 - downtime / total_time if total_time > 0 else 1.0
    span_s = clock / (CLOCK_MHZ * 1e6)
    goodput = committed_requests / span_s if span_s > 0 else 0.0
    latency = metrics.histogram(LATENCY_METRIC).summary()
    recovery_summary = metrics.histogram("soak.recovery_cycles").summary()

    stats: Dict[str, float] = {
        "soak.availability": availability,
        "soak.goodput_rps": goodput,
        "soak.committed_requests": float(committed_requests),
        "soak.crashes": float(len(reboots)),
        "soak.machine_cycles": total_time,
        "soak.downtime_cycles": downtime,
        "soak.span_cycles": clock,
        "soak.latency_p50": latency.get("p50", 0.0),
        "soak.latency_p99": latency.get("p99", 0.0),
        "soak.recovery_p50": recovery_summary.get("p50", 0.0),
        "soak.recovery_max": max(recoveries, default=0.0),
        "soak.lost_committed": float(len(lost)),
        "soak.degraded_entries": float(monitor.entries),
        "soak.degraded_exits": float(monitor.exits),
        "soak.shed_batches": float(admission.sheds),
        "soak.rejects": float(admission.rejects),
        "soak.retries_absorbed": float(injected.get("nvm_retries_absorbed", 0)),
    }
    detail: Dict[str, Any] = {
        "resilience": bool(resilience.enabled),
        "timeline": timeline.to_json(),
        "crash_every_batches": crash_every,
        "crash_fraction": crash_fraction,
        "batches": n_batches,
        "reboots": reboots,
        "recovery_cycles": recoveries,
        "lost_committed": lost,
        "injected": dict(sorted(injected.items())),
        "failure": failure,
    }
    return ScenarioResult(
        app=app_name,
        label=config.label,
        cycles=total_time,
        stats=stats,
        detail=detail,
        metrics=system.metrics_snapshot(),
    )

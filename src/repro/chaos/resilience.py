"""Runtime resilience: occupancy watermarks, degraded mode, admission.

The serve batch scheduler consults two host-side objects at every batch
boundary:

* :class:`ResilienceMonitor` — a NORMAL ↔ DEGRADED state machine over
  *pressure* (the worst of WPQ occupancy across NVM controllers and
  SBRP persist-buffer occupancy across SMs).  Hysteresis: enter at
  ``high_watermark``, exit at ``low_watermark``.  Entries/exits and the
  current mode are visible in the metrics snapshot.
* :class:`AdmissionController` — in degraded mode, batches are *shed*
  to the less congested persist path (WPQ pressured → buffered/undo
  path, PB pressured → direct/redo path) and *throttled* into split
  launches; above ``reject_watermark`` the batch is rejected with a
  bounded client backoff, re-probing occupancy at the deferred instant
  (the WPQ drains on its own timeline, so a future probe can pass).
  After ``max_rejects`` rejections the typed
  :class:`~repro.common.errors.DegradedModeError` escapes — shed load
  is always visible, never a silent drop.

Everything here is deterministic: pressure is a pure function of
simulator state and probe time, so soak reports stay byte-identical
across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.common.config import ResilienceConfig
from repro.common.errors import DegradedModeError
from repro.metrics.registry import NULL_METRICS, MetricsRegistry
from repro.serve.txn import POLICY_FORCED_DIRECT, POLICY_FORCED_PB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import GPUSystem

MODE_NORMAL = "normal"
MODE_DEGRADED = "degraded"


@dataclass(frozen=True)
class Pressure:
    """One occupancy probe (fractions of capacity, in ``[0, 1]``)."""

    wpq: float
    pb: float

    @property
    def worst(self) -> float:
        return max(self.wpq, self.pb)


def system_pressure(system: "GPUSystem", now: float) -> Pressure:
    """Probe *system*'s persist-path occupancy at *now* (non-mutating)."""
    wpq = system.gpu.subsystem.wpq_occupancy(now)
    pb = 0.0
    # Only SBRP exposes per-SM persist buffers; GPM/Epoch probe as 0.
    states = getattr(system.gpu.model, "states", None)
    if states:
        for state in states.values():
            pbuf = getattr(state, "pb", None)
            if pbuf is not None and pbuf.capacity:
                pb = max(pb, pbuf.live_count() / pbuf.capacity)
    return Pressure(wpq=wpq, pb=pb)


class ResilienceMonitor:
    """The NORMAL ↔ DEGRADED watermark state machine (host-side)."""

    def __init__(
        self,
        config: ResilienceConfig,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.mode = MODE_NORMAL
        self.entries = 0
        self.exits = 0
        self.last = Pressure(0.0, 0.0)

    def observe(self, pressure: Pressure) -> str:
        """Feed one probe; return the (possibly updated) mode."""
        if not self.config.enabled:
            return self.mode
        self.last = pressure
        if self.mode == MODE_NORMAL and pressure.worst >= self.config.high_watermark:
            self.mode = MODE_DEGRADED
            self.entries += 1
            if self.metrics.enabled:
                self.metrics.inc("resilience.degraded_entries")
                self.metrics.gauge("resilience.mode", 1.0)
        elif self.mode == MODE_DEGRADED and pressure.worst <= self.config.low_watermark:
            self.mode = MODE_NORMAL
            self.exits += 1
            if self.metrics.enabled:
                self.metrics.inc("resilience.degraded_exits")
                self.metrics.gauge("resilience.mode", 0.0)
        return self.mode

    def observe_system(self, system: "GPUSystem", now: float) -> str:
        """Probe *system* at *now* and feed the result."""
        return self.observe(system_pressure(system, now))


@dataclass(frozen=True)
class Admission:
    """One batch's admission decision."""

    #: Path-policy override for the batch (None = planned policy).
    policy: Optional[str]
    #: Launch split factor (1 = single group-commit launch).
    split: int
    #: Client backoff charged to the open-loop clock before admission.
    deferred_cycles: float
    #: Rejections absorbed before this admission.
    rejected: int


class AdmissionController:
    """Backpressure and graceful degradation at the batch boundary."""

    def __init__(
        self,
        config: ResilienceConfig,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.sheds = 0
        self.throttles = 0
        self.rejects = 0

    def admit(
        self,
        system: "GPUSystem",
        monitor: ResilienceMonitor,
        now: float,
    ) -> Admission:
        """Decide how (whether) to run the next batch.

        Raises :class:`DegradedModeError` once the bounded reject
        backoff fails to find acceptable pressure.
        """
        pressure = system_pressure(system, now)
        mode = monitor.observe(pressure)
        if not self.config.enabled or mode == MODE_NORMAL:
            return Admission(policy=None, split=1, deferred_cycles=0.0, rejected=0)
        cfg = self.config
        deferred = 0.0
        rejected = 0
        while pressure.worst >= cfg.reject_watermark:
            rejected += 1
            self.rejects += 1
            if self.metrics.enabled:
                self.metrics.inc("resilience.rejects")
            if rejected > cfg.max_rejects:
                raise DegradedModeError(
                    f"batch admission rejected {rejected} times at pressure "
                    f"{pressure.worst:.2f} (reject watermark "
                    f"{cfg.reject_watermark:g}); shedding load"
                )
            deferred += cfg.reject_backoff_cycles
            pressure = system_pressure(system, now + deferred)
        # Shed to the less congested path: a loaded WPQ punishes the
        # direct path's dfence write-throughs, a loaded persist buffer
        # punishes buffered undo logging.
        policy = (
            POLICY_FORCED_DIRECT if pressure.pb > pressure.wpq else POLICY_FORCED_PB
        )
        self.sheds += 1
        self.throttles += 1
        if self.metrics.enabled:
            self.metrics.inc("resilience.shed_batches")
            self.metrics.inc("resilience.throttled_batches")
        return Admission(
            policy=policy, split=2, deferred_cycles=deferred, rejected=rejected
        )

"""Chaos subsystem: chronic fault schedules, runtime resilience, soak runs.

Three layers (DESIGN §13):

* :mod:`repro.chaos.timeline` — deterministic, seeded fault *schedules*
  over simulated time (:class:`FaultWindow` / :class:`TimelinePlan`),
  composing with the point :class:`~repro.faults.plans.FaultPlan`\\ s;
* :mod:`repro.chaos.injector` — the :class:`ChronicInjector` that
  interprets a timeline against a live machine, plus the bounded-retry
  policies it applies;
* :mod:`repro.chaos.resilience` + :mod:`repro.chaos.runner` — the
  watermark/degradation state machine threaded into the serve batch
  scheduler, and the soak runner driving crash→recover→crash chains
  with the recovery oracle at every reboot.

CLI: ``python -m repro.chaos.soak``.
"""

from repro.chaos.timeline import FaultWindow, TimelinePlan

__all__ = ["FaultWindow", "TimelinePlan"]

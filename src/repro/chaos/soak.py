"""Chaos soak driver: availability SLOs under sustained faults.

``python -m repro.chaos.soak`` runs serving streams through pinned
chronic-fault schedules (:class:`~repro.chaos.timeline.TimelinePlan`)
with crash→recover→crash chains, as ``mode="soak"``
:class:`~repro.exec.ScenarioJob` cells through the shared crash-isolated
:class:`~repro.exec.Executor`.  Each cell's expectations are declared up
front and checked against the soak report:

* **resilient** cells (``config.resilience.enabled``) must survive the
  whole chain: no failure, the recovery oracle ``consistent`` at every
  reboot, zero committed transactions lost, and — where the schedule is
  hot enough — degraded mode both *entered and exited* (graceful
  degradation, not a one-way door);
* the **unprotected** cell runs the *same* schedule without the
  resilience layer and must fail in the documented way
  (``fault_raised``: the burst exhausts the device retry budget).
  That is the suite's mutation teeth — if removing resilience doesn't
  break the soak, the soak proves nothing.

Reports are sorted-key JSON, byte-identical across ``--workers`` counts
(CI pins that with a two-run ``cmp``).

Quick start::

    python -m repro.chaos.soak --smoke           # bounded CI preset
    python -m repro.chaos.soak --workers 4       # full grid
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.chaos.timeline import FaultWindow, TimelinePlan
from repro.common.config import ModelName, ResilienceConfig, small_system
from repro.exec import Executor, ScenarioJob
from repro.exec.executor import add_pool_args, pool_kwargs
from repro.exec.jobs import MODE_SOAK
from repro.faults.oracles import CONSISTENT

#: Serving-stream sizes of the soak cells (mirrors the serve bench's
#: smoke stream, smaller batches so the chain crosses more group-commit
#: boundaries — every second batch hosts a crash).
SOAK_PARAMS: Dict[str, Any] = dict(
    n_requests=96,
    n_keys=96,
    capacity=256,
    batch_requests=24,
    rate_per_kcycle=40.0,
)

#: The pinned brownout+burst schedule of the CI cells.  The brownout
#: (NVM at 5% write bandwidth for most of the run) drives WPQ occupancy
#: through the watermarks; the burst (every 7th persist fails 7 times
#: while it lasts) exceeds the device retry budget of 5 — survivable
#: only with the resilience layer's deeper exponential-backoff budget.
def brownout_burst() -> TimelinePlan:
    return TimelinePlan(
        windows=(
            FaultWindow("brownout", start=3000.0, end=22000.0, intensity=0.05),
            FaultWindow("burst", start=4000.0, end=9000.0, intensity=7.0, every=7),
        )
    )


#: The full-grid storm schedule: an ack storm (finite acks deferred to
#: the window's end) overlapping a WPQ squeeze (capacity clamped to 4
#: entries) — congestion without any persist ever failing outright.
def storm_squeeze() -> TimelinePlan:
    return TimelinePlan(
        windows=(
            FaultWindow("ack_storm", start=2000.0, end=6000.0, intensity=500.0),
            FaultWindow("wpq_squeeze", start=3000.0, end=16000.0, intensity=4.0),
        )
    )


@dataclass(frozen=True)
class SoakCell:
    """One soak measurement plus its declared expectations."""

    name: str
    model: ModelName
    resilient: bool
    timeline: TimelinePlan
    params: Mapping[str, Any] = field(default_factory=lambda: dict(SOAK_PARAMS))
    crash_every: int = 2
    crash_fraction: float = 0.6
    #: Clean cells must sustain at least this many crash→recover legs.
    min_crashes: int = 1
    #: Expected failure classification; None = the chain must survive.
    expect_failure: Optional[str] = None
    #: Clean cells additionally assert degraded mode was entered AND
    #: exited (the schedule is hot enough to prove graceful degradation).
    expect_degraded: bool = False

    def job(self) -> ScenarioJob:
        config = small_system(self.model)
        if self.resilient:
            config = replace(config, resilience=ResilienceConfig(enabled=True))
        return ScenarioJob(
            app="serve_kvs",
            config=config,
            app_params=dict(self.params),
            mode=MODE_SOAK,
            soak={
                "timeline": self.timeline.to_json(),
                "crash_every_batches": self.crash_every,
                "crash_fraction": self.crash_fraction,
            },
        )


def smoke_cells() -> List[SoakCell]:
    """The CI preset: SBRP resilient vs unprotected, same schedule."""
    return [
        SoakCell(
            name="sbrp.resilient",
            model=ModelName.SBRP,
            resilient=True,
            timeline=brownout_burst(),
            min_crashes=2,
            expect_degraded=True,
        ),
        SoakCell(
            name="sbrp.unprotected",
            model=ModelName.SBRP,
            resilient=False,
            timeline=brownout_burst(),
            expect_failure="fault_raised",
        ),
    ]


def full_cells() -> List[SoakCell]:
    """The full grid: the CI pair, every model under the storm
    schedule, and a longer SBRP chain (crash inside every batch)."""
    cells = smoke_cells()
    for model in (ModelName.SBRP, ModelName.GPM, ModelName.EPOCH):
        cells.append(
            SoakCell(
                name=f"{model.value}.storm",
                model=model,
                resilient=True,
                timeline=storm_squeeze(),
                min_crashes=2,
            )
        )
    cells.append(
        SoakCell(
            name="sbrp.resilient.everybatch",
            model=ModelName.SBRP,
            resilient=True,
            timeline=brownout_burst(),
            crash_every=1,
            min_crashes=3,
            expect_degraded=True,
        )
    )
    return cells


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------
def cell_row(cell: SoakCell, result: Optional[Any]) -> Dict[str, Any]:
    row: Dict[str, Any] = {
        "model": cell.model.value,
        "resilient": cell.resilient,
        "windows": sorted({w.kind for w in cell.timeline.windows}),
        "expect_failure": cell.expect_failure,
    }
    if result is None:
        row.update(matched=False, failure={"stage": "job_failed"})
        return row
    detail = result.detail or {}
    failure = detail.get("failure")
    reboots = detail.get("reboots", [])
    stats = dict(result.stats)
    oracles_ok = all(r["oracle"] == CONSISTENT for r in reboots)
    if cell.expect_failure is None:
        matched = (
            failure is None
            and oracles_ok
            and len(reboots) >= cell.min_crashes
            and stats.get("soak.lost_committed", 1.0) == 0.0
            and (
                not cell.expect_degraded
                or (
                    stats.get("soak.degraded_entries", 0.0) > 0
                    and stats.get("soak.degraded_exits", 0.0) > 0
                )
            )
        )
    else:
        matched = (
            failure is not None
            and failure.get("classification") == cell.expect_failure
        )
    row.update(
        matched=matched,
        failure=failure,
        reboots=reboots,
        stats=stats,
        injected=detail.get("injected", {}),
        lost_committed=detail.get("lost_committed", []),
    )
    return row


def build_report(
    suite: str, cells: List[SoakCell], results: List[Optional[Any]]
) -> Dict[str, Any]:
    rows = {
        cell.name: cell_row(cell, result)
        for cell, result in zip(cells, results)
    }
    unexpected = sorted(
        name for name, row in rows.items() if not row["matched"]
    )
    crashes = sum(
        len(row.get("reboots", [])) for row in rows.values()
    )
    return {
        "schema": 1,
        "suite": suite,
        "cells": rows,
        "summary": {
            "cells": len(cells),
            "matched": sum(row["matched"] for row in rows.values()),
            "crashes_survived": crashes,
            "unexpected": unexpected,
        },
    }


def render_report(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _progress(event: Any) -> None:
    if event.kind == "done":
        print(
            f"[{event.done}/{event.total}] {event.label}: {event.status}",
            file=sys.stderr,
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.soak",
        description="Soak serving streams through chronic-fault "
        "schedules with crash-recover-crash chains; assert availability "
        "SLOs, oracle-clean recovery, and zero committed-data loss.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bounded CI preset: the SBRP resilient/unprotected pair",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache (off by default)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: soak_<suite>.json in cwd)",
    )
    parser.add_argument("--quiet", action="store_true")
    add_pool_args(parser)
    args = parser.parse_args(argv)

    suite = "smoke" if args.smoke else "full"
    cells = smoke_cells() if args.smoke else full_cells()
    executor = Executor(
        workers=args.workers,
        cache=args.cache_dir,
        progress=None if args.quiet else _progress,
        **pool_kwargs(args),
    )
    results = executor.submit(
        [cell.job() for cell in cells], allow_failures=True
    )
    for failure in executor.failures:
        print(f"--- {failure.job.label} ---\n{failure}", file=sys.stderr)

    report = build_report(suite, cells, results)
    text = render_report(report)
    out = Path(args.out) if args.out else Path(f"soak_{suite}.json")
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out}", file=sys.stderr)

    for name in sorted(report["cells"]):
        row = report["cells"][name]
        stats = row.get("stats", {})
        verdict = "ok" if row["matched"] else "UNEXPECTED"
        if row.get("failure") is not None:
            outcome = f"failed[{row['failure'].get('classification')}]"
        else:
            outcome = (
                f"avail {stats.get('soak.availability', 0.0):.3f}  "
                f"p99 {stats.get('soak.latency_p99', 0.0):>8.0f} cy  "
                f"crashes {len(row.get('reboots', []))}"
            )
        print(f"  {name:28s} {outcome}  [{verdict}]", file=sys.stderr)
    print(executor.footer(), file=sys.stderr)

    summary = report["summary"]
    if summary["unexpected"]:
        for name in summary["unexpected"]:
            print(f"UNEXPECTED: {name}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())

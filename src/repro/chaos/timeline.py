"""Chronic fault timelines: scheduled degradation windows.

A :class:`TimelinePlan` is a :class:`~repro.faults.plans.FaultPlan`
(kind ``"timeline"``) whose payload is a sequence of
:class:`FaultWindow`\\ s — half-open ``[start, end)`` intervals of
*soak-chain* time during which one chronic fault process is active:

* ``brownout`` — NVM drain bandwidth is multiplied by ``intensity``
  (in ``(0, 1]``); overlapping brownouts compound;
* ``burst`` — every ``every``-th persist issued inside the window
  suffers ``intensity`` consecutive transient write failures, each
  retried on the active :class:`~repro.common.retry.RetryPolicy`
  (escalating to ``FaultInjectionError`` past the retry budget);
* ``ack_storm`` — acknowledgements that would land inside the window
  are deferred until ``intensity`` cycles after it closes (a finite,
  survivable cousin of :class:`~repro.faults.plans.AckLossPlan`);
* ``wpq_squeeze`` — WPQ capacity is clamped to ``intensity`` entries.

Timelines *compose* with the existing point plans: ``base`` may carry
any non-timeline plan's JSON payload, and the chronic injector applies
it alongside the windows (e.g. torn persists at crash under a brownout).

Window times are global soak-chain cycles: the chronic injector adds
each rebooted machine's ``time_offset``, so one pinned schedule spans a
whole crash→recover→crash chain deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple

from repro.common.errors import ConfigError
from repro.faults.plans import EXPECT_CONSISTENT, FaultPlan, register_plan

WINDOW_BROWNOUT = "brownout"
WINDOW_BURST = "burst"
WINDOW_ACK_STORM = "ack_storm"
WINDOW_WPQ_SQUEEZE = "wpq_squeeze"

WINDOW_KINDS = (
    WINDOW_BROWNOUT,
    WINDOW_BURST,
    WINDOW_ACK_STORM,
    WINDOW_WPQ_SQUEEZE,
)


@dataclass(frozen=True)
class FaultWindow:
    """One chronic fault process, active over ``[start, end)`` cycles."""

    kind: str
    start: float
    end: float
    #: Kind-specific magnitude — see the module docstring.
    intensity: float = 1.0
    #: ``burst`` only: every Nth persist inside the window is hit.
    every: int = 1

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise ConfigError(
                f"unknown fault-window kind {self.kind!r}; have {WINDOW_KINDS}"
            )
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"fault window needs 0 <= start < end, got [{self.start}, {self.end})"
            )
        if self.every < 1:
            raise ConfigError("fault window every must be >= 1")
        if self.kind == WINDOW_BROWNOUT and not 0 < self.intensity <= 1:
            raise ConfigError("brownout intensity is a bandwidth scale in (0, 1]")
        if self.kind == WINDOW_BURST and self.intensity < 1:
            raise ConfigError("burst intensity is a failure count >= 1")
        if self.kind == WINDOW_ACK_STORM and self.intensity < 0:
            raise ConfigError("ack_storm intensity (post-window cycles) must be >= 0")
        if self.kind == WINDOW_WPQ_SQUEEZE and self.intensity < 1:
            raise ConfigError("wpq_squeeze intensity is an entry clamp >= 1")

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end


@register_plan
@dataclass(frozen=True)
class TimelinePlan(FaultPlan):
    """A schedule of chronic fault windows, optionally over a base plan."""

    kind: ClassVar[str] = "timeline"

    expect: str = EXPECT_CONSISTENT
    windows: Tuple[FaultWindow, ...] = ()
    #: Seeds any per-event randomness (reserved; windows are currently
    #: fully deterministic functions of time and persist sequence).
    seed: int = 11
    #: JSON payload of a composed point plan (any non-timeline kind),
    #: interpreted alongside the windows.  None = windows only.
    base: Optional[Dict[str, Any]] = None
    #: Transient-failure retry budget when no resilience layer is
    #: attached (the device-level default), and its linear backoff step.
    device_max_retries: int = 5
    device_backoff_cycles: float = 400.0

    def __post_init__(self) -> None:
        # from_json rebuilds via cls(**payload): coerce plain dicts
        # (asdict output) back into FaultWindow / plan-payload form
        # before the base validation hook runs.
        coerced = tuple(
            w if isinstance(w, FaultWindow) else FaultWindow(**w)
            for w in self.windows
        )
        object.__setattr__(self, "windows", coerced)
        base = self.base
        if base is not None and not isinstance(base, dict):
            base = base.to_json() if hasattr(base, "to_json") else dict(base)
            object.__setattr__(self, "base", base)
        super().__post_init__()

    def validate(self) -> None:
        if self.device_max_retries < 0:
            raise ConfigError("timeline device_max_retries must be >= 0")
        if self.device_backoff_cycles <= 0:
            raise ConfigError("timeline device_backoff_cycles must be positive")
        if self.base is not None:
            if self.base.get("kind") == self.kind:
                raise ConfigError("timeline plans do not nest")
            self.base_plan()  # rejects malformed payloads eagerly

    def base_plan(self) -> Optional[FaultPlan]:
        """The composed point plan, or None."""
        return None if self.base is None else FaultPlan.from_json(self.base)

    def to_json(self) -> Dict[str, Any]:
        # asdict keeps the windows tuple; emit a list so the payload is
        # stable through a real JSON round-trip (tuples load as lists).
        payload = super().to_json()
        payload["windows"] = list(payload["windows"])
        return payload

    @property
    def label(self) -> str:
        kinds = sorted({w.kind for w in self.windows})
        name = f"{self.kind}:{'+'.join(kinds) if kinds else 'empty'}"
        if self.base is not None:
            name += f"+{self.base['kind']}"
        return name

    def horizon(self) -> float:
        """The last window's closing time (0.0 for an empty schedule)."""
        return max((w.end for w in self.windows), default=0.0)

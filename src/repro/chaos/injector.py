"""The chronic injector: a fault timeline interpreted against one machine.

:class:`ChronicInjector` extends the point-fault
:class:`~repro.faults.injector.FaultInjector` with *time-dependent*
behavior: every hook first consults the plan's fault windows at the
current **global** soak-chain time (``time_offset + machine-local
now``), then delegates to the composed base plan's injector (sharing one
tally dict so reports see a single ``counts`` view).

Brownouts and WPQ squeezes are not applied here but by the NVM
controllers themselves — the memory subsystem wires ``controller.throttle
= injector`` when it sees ``is_chronic`` — because bandwidth and
capacity are controller state, not per-persist events.

The retry policy for burst failures is the device-level linear schedule
by default; attaching an enabled
:class:`~repro.common.config.ResilienceConfig` swaps in its bounded
exponential-backoff policy with a larger budget — which is exactly the
difference the soak harness's mutation teeth assert (a burst that a
resilient run absorbs must kill an unprotected one).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.common.errors import FaultInjectionError
from repro.common.retry import SCHEDULE_LINEAR, RetryPolicy
from repro.chaos.timeline import (
    WINDOW_ACK_STORM,
    WINDOW_BROWNOUT,
    WINDOW_BURST,
    WINDOW_WPQ_SQUEEZE,
    FaultWindow,
    TimelinePlan,
)
from repro.faults.injector import FaultInjector, build_injector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.common.config import ResilienceConfig
    from repro.memory.subsystem import PersistRecord


class ChronicInjector(FaultInjector):
    """Interprets one :class:`TimelinePlan` against one simulated system."""

    #: Duck-typed marker the memory subsystem keys off to wire the
    #: controller throttle (avoids importing this module from memory/).
    is_chronic = True

    def __init__(
        self,
        plan: TimelinePlan,
        resilience: "Optional[ResilienceConfig]" = None,
        time_offset: float = 0.0,
    ) -> None:
        super().__init__(plan)
        self.time_offset = float(time_offset)
        enabled = resilience is not None and getattr(resilience, "enabled", False)
        self.resilience = resilience if enabled else None
        self.policy = (
            self.resilience.retry_policy()
            if self.resilience is not None
            else RetryPolicy(
                max_retries=plan.device_max_retries,
                base_cycles=plan.device_backoff_cycles,
                schedule=SCHEDULE_LINEAR,
            )
        )
        self._base = build_injector(plan.base_plan())
        if self._base is not None:
            # One tally dict: composed-plan injections surface in the
            # same counts the runners embed in reports.
            self._base.counts = self.counts

    # ------------------------------------------------------------------
    # window lookup (global soak-chain time)
    # ------------------------------------------------------------------
    def _global(self, now: float) -> float:
        return self.time_offset + now

    def _active(self, kind: str, time: float) -> List[FaultWindow]:
        return [
            w for w in self.plan.windows if w.kind == kind and w.contains(time)
        ]

    # ------------------------------------------------------------------
    # controller throttle hooks (consulted by NVMController.write)
    # ------------------------------------------------------------------
    def nvm_scale_at(self, now: float) -> float:
        """Drain-bandwidth multiplier at machine-local *now*."""
        scale = 1.0
        for window in self._active(WINDOW_BROWNOUT, self._global(now)):
            scale *= window.intensity
        return scale

    def wpq_limit_at(self, now: float) -> int:
        """Active WPQ entry clamp (0 = unclamped)."""
        limits = [
            int(w.intensity)
            for w in self._active(WINDOW_WPQ_SQUEEZE, self._global(now))
        ]
        return min(limits) if limits else 0

    # ------------------------------------------------------------------
    # persist-path hooks
    # ------------------------------------------------------------------
    def persist_delay(self, seq: int, now: float = 0.0) -> float:
        delay = (
            self._base.persist_delay(seq, now=now) if self._base is not None else 0.0
        )
        fails = 0
        for window in self._active(WINDOW_BURST, self._global(now)):
            if seq % window.every == 0:
                fails = max(fails, int(window.intensity))
        if not fails:
            return delay
        if self.policy.exhausted(fails):
            self._bump("nvm_retry_exhausted")
            layer = "resilience" if self.resilience is not None else "device"
            raise FaultInjectionError(
                f"chronic NVM burst: persist #{seq} failed {fails} times, "
                f"exceeding the {layer} retry budget of {self.policy.max_retries}"
            )
        self._bump("nvm_transient_failures", fails)
        if self.resilience is not None:
            self._bump("nvm_retries_absorbed", fails)
        return delay + self.policy.total_delay(fails)

    def transform_accept(self, seq: int, accept: float) -> float:
        if self._base is not None:
            return self._base.transform_accept(seq, accept)
        return accept

    def transform_ack(self, seq: int, accept: float, ack: float) -> float:
        if self._base is not None:
            ack = self._base.transform_ack(seq, accept, ack)
        if not math.isfinite(ack):
            return ack
        deferred = ack
        for window in self._active(WINDOW_ACK_STORM, self._global(ack)):
            deferred = max(
                deferred, window.end + window.intensity - self.time_offset
            )
        if deferred != ack:
            self._bump("stormed_acks")
        return deferred

    def drop_flush(self, sm_id: int, line_addr: int) -> bool:
        if self._base is not None:
            return self._base.drop_flush(sm_id, line_addr)
        return False

    def torn_records(
        self, records: List["PersistRecord"], time: float
    ) -> List["PersistRecord"]:
        if self._base is not None:
            return self._base.torn_records(records, time)
        return records

"""Trace explorer: profile a Figure 6-style reduction run under SBRP.

Runs the reduction workload (quick preset) on the PM-far Table 1 machine
with tracing enabled, then:

* writes ``trace.json`` — open it at https://ui.perfetto.dev (or
  chrome://tracing) to see per-warp residency tracks, persist
  lifecycles, and PB-occupancy counters;
* writes ``counters.csv`` — PB occupancy / ACTR / WPQ depth resampled
  onto a regular cycle grid for plotting;
* prints the ASCII profile — per-warp stall attribution, persist-phase
  latencies, and device utilisation.

Run:  python examples/trace_explorer.py [output-dir]
"""

import sys
from pathlib import Path

from repro.bench.runner import run_scenario, scenario_config, scenario_stem
from repro.bench.workloads import workload
from repro.common.config import ModelName, PMPlacement


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("traces")
    config = scenario_config(ModelName.SBRP, PMPlacement.FAR)
    params = workload("reduction", "quick")
    result = run_scenario(
        "reduction",
        config,
        params,
        trace_dir=str(out),
    )
    stem = out / scenario_stem("reduction", config, params)
    print(f"reduction @ {config.label}: {result.cycles:.0f} cycles")
    print(f"wrote {stem}.trace.json (load at https://ui.perfetto.dev)")
    print(f"wrote {stem}.counters.csv")
    print()
    print(result.profile)
    print()
    print(f"re-render any time with: python -m repro.trace.report {stem}.trace.json")


if __name__ == "__main__":
    main()

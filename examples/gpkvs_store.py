"""gpKVS demo: a persistent key-value store that survives power failure.

Runs the paper's flagship workload (Figure 4 / Table 2) under all three
persistency models, compares their runtimes, then kills the power midway
through the SBRP run and walks the full recovery path: reboot, run the
recovery kernel, verify table consistency, re-submit the batch.

Run:  python examples/gpkvs_store.py
"""

from repro import GPUSystem, ModelName, small_system
from repro.apps import build_app
from repro.crash import CrashHarness

PARAMS = dict(n_pairs=2048, capacity=4096, rounds=2)


def compare_models() -> None:
    print("== crash-free runtime by persistency model ==")
    baseline = None
    for model in (ModelName.GPM, ModelName.EPOCH, ModelName.SBRP):
        system = GPUSystem(small_system(model))
        app = build_app("gpkvs", **PARAMS)
        app.setup(system)
        cycles = app.run(system).cycles
        system.sync()
        app.check(system, complete=True)
        baseline = baseline or cycles
        print(f"  {model.value:6s} {cycles:10.0f} cycles "
              f"(speedup over GPM: {baseline / cycles:.2f}x)")


def crash_and_recover() -> None:
    print("== crash / recovery walk-through (SBRP) ==")
    harness = CrashHarness(
        lambda: build_app("gpkvs", **PARAMS), small_system(ModelName.SBRP)
    )
    for fraction in (0.25, 0.5, 0.75):
        report = harness.crash_at_fraction(fraction)
        status = "consistent" if report.consistent else f"BROKEN: {report.error}"
        done = "completed" if report.completed else "incomplete"
        print(
            f"  crash at {fraction:.0%}: {status}; recovery took "
            f"{report.recovery_cycles:.0f} cycles; batch re-run {done}"
        )


def main() -> None:
    compare_models()
    crash_and_recover()
    print("gpkvs_store OK")


if __name__ == "__main__":
    main()

"""Explore the formal SBRP model with litmus tests.

For each litmus test in the library, prints every crash image the
axiomatic model allows, then validates the timing simulator against the
model (the simulator must never produce a forbidden image).

Run:  python examples/litmus_explorer.py
"""

from repro import ModelName
from repro.formal import LITMUS_TESTS, run_litmus
from repro.formal.bridge import validate_against_model


def main() -> None:
    for name, test in LITMUS_TESTS.items():
        result = run_litmus(test)
        print(f"== {name} ==")
        for image in result.images:
            pretty = ", ".join(f"{k}={v}" for k, v in sorted(image.items()))
            print(f"   allowed: {{{pretty or 'initial state'}}}")
        print(f"   model check: {'PASS' if result.passed else 'FAIL'}")
        bad = validate_against_model(test, ModelName.SBRP)
        print(
            "   simulator refines model: "
            + ("yes" if not bad else f"NO - forbidden images {bad}")
        )
    print("litmus_explorer OK")


if __name__ == "__main__":
    main()

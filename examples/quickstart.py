"""Quickstart: write a PM-aware GPU kernel and survive a crash.

Builds a small system under SBRP, runs a kernel that logs-then-updates a
PM array with oFence ordering, crashes the machine mid-run, reboots, and
shows that the durable image is consistent at every instant.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GPUSystem, ModelName, small_system


def main() -> None:
    system = GPUSystem(small_system(ModelName.SBRP))

    # A persistent array and its undo log, plus a volatile input batch.
    data = system.pm_create("quickstart.data", 64 * 1024)
    log = system.pm_create("quickstart.log", 64 * 1024)
    batch = system.malloc(64 * 1024)
    n = 1024
    system.host_write_words(batch, np.arange(n) * 5 + 1)

    def kernel(w, data, log, batch, n):
        active = w.tid < n
        new = yield w.ld(batch.base + 4 * w.tid, mask=active)
        old = yield w.ld(data.base + 4 * w.tid, mask=active)
        # Undo-log the old value, fence, then update: the update can
        # never become durable before its log entry.
        yield w.st(log.base + 4 * w.tid, old + 1, mask=active)
        yield w.ofence()
        yield w.st(data.base + 4 * w.tid, new, mask=active)
        yield w.ofence()
        yield w.st(log.base + 4 * w.tid, 0, mask=active)  # commit

    result = system.launch(kernel, grid_blocks=8, args=(data, log, batch, n))
    print(f"kernel retired after {result.cycles:.0f} cycles")
    system.sync()
    print(f"all persists durable at t={system.now:.0f}")

    # Crash mid-execution and inspect the durable image.
    image = system.crash(at=result.end * 0.5)
    print(f"crash at t={image.time:.0f}: {len(image.pm)} durable PM words")

    rebooted = GPUSystem.reboot(system, image)
    data2 = rebooted.pm_open("quickstart.data")
    log2 = rebooted.pm_open("quickstart.log")
    values = rebooted.read_words(data2, n)
    log_vals = rebooted.read_words(log2, n)

    # Consistency: every updated word has a committed (cleared) or
    # restorable (logged) state - never a torn one.
    updated = values == np.arange(n) * 5 + 1
    print(f"after reboot: {int(updated.sum())}/{n} updates durable")
    pending = log_vals != 0
    print(f"{int(pending.sum())} updates were in flight (restorable from log)")
    print("quickstart OK")


if __name__ == "__main__":
    main()

"""Serve a YCSB-style stream, crash it mid-flight, recover under load.

The serving subsystem end-to-end: a seeded zipfian RMW-heavy request
stream batches into group commits against the gpKVS table, each write
persisting through the adaptive path (small transactions buffered in
the L1 persist buffer, large ones written through to NVM).  The demo
prints the SLO stats per persistency model, then power-fails the SBRP
run mid-stream and shows recovery rolling the in-flight transactions
back/forward to a consistent table.

Run:  python examples/serve_demo.py
"""

from repro import GPUSystem, ModelName, small_system
from repro.apps import build_app
from repro.serve.runner import run_serve_scenario

PARAMS = dict(n_requests=96, n_keys=96, capacity=256, batch_requests=48)


def main() -> None:
    for model in (ModelName.GPM, ModelName.EPOCH, ModelName.SBRP):
        result = run_serve_scenario(
            "serve_kvs", small_system(model), PARAMS
        )
        s = result.stats
        print(
            f"{result.label:10s} {s['serve.throughput_rps']:>12.0f} req/s  "
            f"p99 {s['serve.latency_p99']:>7.0f} cy  "
            f"paths pb/direct {s['serve.path_pb']:.0f}/"
            f"{s['serve.path_direct']:.0f}  "
            f"worst-case recovery {s['serve.recovery_cycles']:.0f} cy"
        )

    # Crash the stream mid-flight and recover on a rebooted machine.
    system = GPUSystem(small_system(ModelName.SBRP))
    app = build_app("serve_kvs", **PARAMS)
    app.setup(system)
    app.run(system)
    system.sync()
    image = system.crash(at=system.now * 0.6)
    rebooted = GPUSystem.reboot(system, image)
    app2 = build_app("serve_kvs", **PARAMS)
    app2.reopen(rebooted)
    recovery = app2.recover(rebooted)
    rebooted.sync()
    # complete=False: the crash landed between group commits, so the
    # table must be *consistent* (no torn rows, no impossible versions)
    # but not necessarily caught up to the final planned version.
    app2.check(rebooted, complete=False)
    print(
        f"crash at 60%: recovered in {recovery.cycles:.0f} cycles; "
        "table consistent"
    )
    print("serve_demo OK")


if __name__ == "__main__":
    main()

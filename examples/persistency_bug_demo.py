"""Scoped persistency bugs, live (Section 5.3 of the paper).

A producer threadblock persists pX (delayed in its persist buffer behind
an earlier fenced persist), then releases a flag.  With the correct
**device** scope, the release publishes only after pX is durable and the
consumer block reads 7.  With the buggy **block** scope, the flag
publishes immediately and the consumer reads stale data.

The same mismatch is shown in the axiomatic model: the block-scope
release across blocks creates no pmo edge, so the "pY durable without
pX" crash image becomes reachable.

Run:  python examples/persistency_bug_demo.py
"""

from repro import GPUSystem, ModelName, Scope, small_system
from repro.formal import LITMUS_TESTS, run_litmus


def run_demo(scope: Scope) -> int:
    system = GPUSystem(small_system(ModelName.SBRP, num_sms=2))
    pm = system.pm_create("pm", 4096)
    flag = system.malloc(128)
    out = system.malloc(128)
    pa, px = pm.word(0), pm.word(64)

    def kernel(w, pa, px, flag, out, scope):
        lead = w.lane == 0
        if w.block_id == 1 and w.warp_in_block == 0:
            yield w.st(pa, 1, mask=lead)
            yield w.ofence()
            yield w.st(px, 7, mask=lead)
            yield w.prel(flag, 1, scope)
        elif w.block_id == 0 and w.warp_in_block == 0:
            while True:
                got = yield w.pacq(flag, Scope.DEVICE)
                if got:
                    break
            vals = yield w.ld(px, mask=lead)
            yield w.st(out, vals, mask=lead)

    system.launch(kernel, 2, args=(pa, px, flag.base, out.base, scope))
    system.sync()
    return system.read_word(out.base)


def main() -> None:
    print("== hardware simulation ==")
    correct = run_demo(Scope.DEVICE)
    buggy = run_demo(Scope.BLOCK)
    print(f"  device-scope release: consumer read pX = {correct}  (correct)")
    print(f"  block-scope release:  consumer read pX = {buggy}  (stale!)")

    print("== axiomatic model ==")
    result = run_litmus(LITMUS_TESTS["scope_mismatch_bug"])
    bad = [im for im in result.images if im.get("pY") == 1 and im.get("pX", 0) != 1]
    print(
        "  block-scope release across blocks makes the inconsistent "
        f"image {bad[0] if bad else '??'} reachable"
    )
    result = run_litmus(LITMUS_TESTS["device_release_cross_block"])
    print(
        "  device-scope release forbids it "
        f"({len(result.images)} allowed images, model check "
        f"{'PASS' if result.passed else 'FAIL'})"
    )
    print("persistency_bug_demo OK")


if __name__ == "__main__":
    main()

"""Parallel sweep: regenerate paper figures through the exec subsystem.

Runs Figure 6 and Figure 8 (quick preset) through one shared
:class:`repro.exec.Executor`: scenario configs the two figures have in
common simulate once, independent scenarios fan out across worker
processes, and every result lands in the content-addressed cache — so a
second run of this script performs zero simulations.

Run:  python examples/parallel_sweep.py [workers] [cache-dir]

The full evaluation is one command away:

    python -m repro.exec.sweep --preset quick --workers 4
"""

import sys

from repro.bench import figure6, figure8
from repro.exec import Executor, ResultCache, default_cache_dir


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cache_dir = sys.argv[2] if len(sys.argv) > 2 else default_cache_dir()

    executor = Executor(
        workers=workers,
        cache=ResultCache(cache_dir),
        progress=lambda e: print(
            f"  [{e.done}/{e.total}] {e.kind:5s} {e.label}", file=sys.stderr
        )
        if e.kind == "done"
        else None,
    )

    print(f"executing with {workers} worker(s), cache at {cache_dir}\n")
    for fig in (figure6, figure8):
        print(fig(preset="quick", executor=executor).to_ascii())
        print()

    print(executor.stats.summary())
    if executor.stats.executed == 0:
        print("warm cache: every scenario served without simulating")


if __name__ == "__main__":
    main()

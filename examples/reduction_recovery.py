"""Reduction with native recovery: resume a crashed computation.

The paper's Figure 2/3 workload: partial sums persist to PM with block-
and device-scope release/acquire, so after a power failure the kernel
simply resumes from whatever persisted instead of restarting.  The demo
shows how much of the work survives crashes at different points.

Run:  python examples/reduction_recovery.py
"""

import numpy as np

from repro import GPUSystem, ModelName, small_system
from repro.apps import build_app

PARAMS = dict(blocks=4, per_thread=4)


def main() -> None:
    system = GPUSystem(small_system(ModelName.SBRP))
    app = build_app("reduction", **PARAMS)
    app.setup(system)
    result = app.run(system)
    system.sync()
    print(f"crash-free run: {result.cycles:.0f} cycles, "
          f"sum = {system.read_word(app.out.base)} (expected {app.expected()})")

    for fraction in (0.3, 0.6, 0.9):
        image = system.crash(at=system.now * fraction)
        rebooted = GPUSystem.reboot(system, image)
        app2 = build_app("reduction", **PARAMS)
        app2.reopen(rebooted)
        parr = rebooted.read_words(app2.parr, 32 * app2.n_warps)[::32]
        survived = int((parr != 0).sum())
        recovery = app2.recover(rebooted)
        rebooted.sync()
        app2.check(rebooted, complete=True)
        print(
            f"crash at {fraction:.0%}: {survived}/{app2.n_warps} warp "
            f"partials survived; resumed in {recovery.cycles:.0f} cycles; "
            f"final sum = {rebooted.read_word(app2.out.base)}"
        )
    print("reduction_recovery OK")


if __name__ == "__main__":
    main()

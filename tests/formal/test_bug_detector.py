"""The Section 5.3 scoped-bug detector."""

import pytest

from repro.common.config import Scope
from repro.formal.bug_detector import assert_scope_clean, find_scope_bugs
from repro.formal.events import LitmusProgram


def make(scope: Scope, blocks=(0, 1)) -> LitmusProgram:
    prog = LitmusProgram()
    prog.thread(block=blocks[0]).w("pX", 1).prel("f", 1, scope)
    prog.thread(block=blocks[1]).pacq("f", scope).w("pY", 1)
    return prog


def test_block_scope_across_blocks_is_flagged():
    bugs = find_scope_bugs(make(Scope.BLOCK, blocks=(0, 1)))
    assert len(bugs) == 1
    assert "no inter-thread PMO" in bugs[0].reason


def test_block_scope_within_block_is_clean():
    assert find_scope_bugs(make(Scope.BLOCK, blocks=(0, 0))) == []


def test_device_scope_across_blocks_is_clean():
    assert_scope_clean(make(Scope.DEVICE, blocks=(0, 1)))


def test_mismatched_scopes_use_narrowest():
    prog = LitmusProgram()
    prog.thread(block=0).w("pX", 1).prel("f", 1, Scope.BLOCK)
    prog.thread(block=1).pacq("f", Scope.DEVICE).w("pY", 1)
    # Narrowest scope is BLOCK, which does not cover both blocks.
    assert len(find_scope_bugs(prog)) == 1


def test_assert_scope_clean_raises_with_details():
    with pytest.raises(AssertionError, match="scope bug"):
        assert_scope_clean(make(Scope.BLOCK, blocks=(0, 1)))


def test_same_thread_pairs_ignored():
    prog = LitmusProgram()
    t = prog.thread(block=0)
    t.prel("f", 1, Scope.BLOCK).pacq("f", Scope.BLOCK)
    assert find_scope_bugs(prog) == []

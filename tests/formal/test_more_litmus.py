"""Additional litmus scenarios built inline (beyond the library)."""

import pytest

from repro.common.config import Scope
from repro.formal import (
    ExecutionWitness,
    LitmusProgram,
    allowed_crash_images,
    build_pmo,
)
from repro.formal.events import all_reads_from


def images_of(program):
    from repro.common.errors import LitmusError

    seen = set()
    out = []
    for rf in all_reads_from(program):
        try:
            imgs = allowed_crash_images(ExecutionWitness(program, rf))
        except LitmusError:
            continue
        for img in imgs:
            key = tuple(sorted(img.items()))
            if key not in seen:
                seen.add(key)
                out.append(img)
    return out


class TestPMResidentReleaseVariable:
    def test_pm_flag_is_ordered_after_preceding_persists(self):
        """Box 2's note: the release variable can be PM-resident; it is
        then itself a persist, ordered after the persists before the
        release."""
        prog = LitmusProgram()
        prog.thread(block=0).w("pData", 1).prel("pFlag", 1, Scope.DEVICE)
        pmo = build_pmo(ExecutionWitness(prog))
        data = prog.threads[0].events[0]
        rel = prog.threads[0].events[1]
        assert pmo.has_edge(data.eid, rel.eid)
        for image in images_of(prog):
            if image.get("pFlag") == 1:
                assert image.get("pData") == 1


class TestTwoProducersOneConsumer:
    def test_consumer_ordered_after_observed_producer_only(self):
        prog = LitmusProgram()
        prog.thread(block=0).w("pA", 1).prel("f", 1, Scope.DEVICE)
        prog.thread(block=1).w("pB", 1).prel("f", 2, Scope.DEVICE)
        prog.thread(block=2).pacq("f", Scope.DEVICE).w("pC", 1)
        # pC durable requires at least one producer's data durable
        # (whichever release the acquire observed).
        for image in images_of(prog):
            if image.get("pC") == 1:
                assert image.get("pA") == 1 or image.get("pB") == 1


class TestFenceDoesNotOrderOtherThreads:
    def test_ofence_is_strictly_intra_thread(self):
        prog = LitmusProgram()
        prog.thread(block=0).w("pA", 1).ofence().w("pB", 1)
        prog.thread(block=0).w("pC", 1)
        pmo = build_pmo(ExecutionWitness(prog))
        c = prog.threads[1].events[0]
        # pC has no pmo relation to anything.
        assert pmo.in_degree(c.eid) == 0
        assert pmo.out_degree(c.eid) == 0
        # So pC-alone is an allowed image.
        keys = {tuple(sorted(im.items())) for im in images_of(prog)}
        assert (("pC", 1),) in keys


class TestAcquireWithoutRelease:
    def test_spinning_thread_never_persists(self):
        """If no release ever matches, the acquiring thread blocks
        forever: its persists appear in no image."""
        prog = LitmusProgram()
        prog.thread(block=0).pacq("f", Scope.DEVICE).w("pY", 1)
        for image in images_of(prog):
            assert image.get("pY", 0) == 0

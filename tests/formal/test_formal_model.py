"""The axiomatic model: relations, crash images, litmus library."""

import networkx as nx
import pytest

from repro.common.config import ModelName, Scope
from repro.formal import (
    LITMUS_TESTS,
    ExecutionWitness,
    LitmusProgram,
    allowed_crash_images,
    build_pmo,
    build_po,
    build_vmo,
    run_litmus,
)
from repro.formal.crash_states import downward_closed_subsets
from repro.formal.bridge import simulate_litmus, validate_against_model


def mp_program():
    prog = LitmusProgram()
    t0 = prog.thread(block=0)
    t0.w("pData", 1).ofence().w("pFlag", 1)
    return prog


class TestRelations:
    def test_po_is_per_thread_chain(self):
        prog = mp_program()
        po = build_po(prog)
        eids = [e.eid for e in prog.threads[0].events]
        assert list(nx.topological_sort(po)) == eids

    def test_ofence_creates_pmo_edge(self):
        prog = mp_program()
        pmo = build_pmo(ExecutionWitness(prog))
        w_data, _, w_flag = prog.threads[0].events
        assert pmo.has_edge(w_data.eid, w_flag.eid)

    def test_no_fence_no_pmo(self):
        prog = LitmusProgram()
        prog.thread().w("pA", 1).w("pB", 1)
        pmo = build_pmo(ExecutionWitness(prog))
        assert pmo.number_of_edges() == 0

    def test_release_acquire_pmo_requires_scope_coverage(self):
        def build(scope, blocks):
            prog = LitmusProgram()
            prog.thread(block=blocks[0]).w("pX", 1).prel("f", 1, scope)
            prog.thread(block=blocks[1]).pacq("f", scope).w("pY", 1)
            rel = prog.releases()[0]
            acq = prog.acquires()[0]
            return prog, {acq.eid: rel.eid}

        prog, rf = build(Scope.BLOCK, (0, 0))
        pmo = build_pmo(ExecutionWitness(prog, rf))
        assert pmo.number_of_edges() == 1

        prog, rf = build(Scope.BLOCK, (0, 1))  # the Section 5.3 bug
        pmo = build_pmo(ExecutionWitness(prog, rf))
        assert pmo.number_of_edges() == 0

        prog, rf = build(Scope.DEVICE, (0, 1))
        pmo = build_pmo(ExecutionWitness(prog, rf))
        assert pmo.number_of_edges() == 1

    def test_pmo_transitivity(self):
        prog = LitmusProgram()
        prog.thread().w("pA", 1).ofence().w("pB", 1).ofence().w("pC", 1)
        pmo = build_pmo(ExecutionWitness(prog))
        a, _, b, _, c = prog.threads[0].events
        assert pmo.has_edge(a.eid, c.eid)

    def test_vmo_contains_release_acquire_edge(self):
        prog = LitmusProgram()
        prog.thread(block=0).prel("f", 1, Scope.BLOCK)
        prog.thread(block=0).pacq("f", Scope.BLOCK)
        rel, acq = prog.releases()[0], prog.acquires()[0]
        vmo = build_vmo(ExecutionWitness(prog, {acq.eid: rel.eid}))
        assert vmo.has_edge(rel.eid, acq.eid)


class TestCrashImages:
    def test_downward_closed_count_for_chain(self):
        dag = nx.DiGraph([(1, 2), (2, 3)])
        subsets = downward_closed_subsets(dag)
        # A 3-chain has exactly 4 order ideals.
        assert len(subsets) == 4

    def test_downward_closed_count_for_antichain(self):
        dag = nx.DiGraph()
        dag.add_nodes_from([1, 2])
        assert len(downward_closed_subsets(dag)) == 4

    def test_mp_images(self):
        images = allowed_crash_images(ExecutionWitness(mp_program()))
        keys = {tuple(sorted(im.items())) for im in images}
        assert (("pData", 1),) in keys
        assert (("pData", 1), ("pFlag", 1)) in keys
        assert (("pFlag", 1),) not in keys  # flag-without-data forbidden

    def test_unfenced_writes_any_subset(self):
        prog = LitmusProgram()
        prog.thread().w("pA", 1).w("pB", 1)
        images = allowed_crash_images(ExecutionWitness(prog))
        assert len(images) == 4

    def test_completed_dfence_forces_predecessors(self):
        prog = LitmusProgram()
        t = prog.thread()
        t.w("pA", 1).dfence()
        dfence_eid = t.events[1].eid
        images = allowed_crash_images(
            ExecutionWitness(prog), completed_dfences=[dfence_eid]
        )
        assert all(im.get("pA") == 1 for im in images)


class TestLitmusLibrary:
    @pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
    def test_litmus_passes(self, name):
        result = run_litmus(LITMUS_TESTS[name])
        assert result.passed, (result.violations, result.missing)

    def test_library_covers_the_papers_examples(self):
        # Section 5.3's scoped bug and Figure 4's logging discipline
        # must both be present.
        assert "scope_mismatch_bug" in LITMUS_TESTS
        assert "mp_ofence" in LITMUS_TESTS


class TestBridge:
    @pytest.mark.parametrize("name", ["mp_ofence", "block_release_same_block"])
    @pytest.mark.parametrize(
        "model", [ModelName.SBRP, ModelName.EPOCH], ids=lambda m: m.value
    )
    def test_simulator_refines_model(self, name, model):
        bad = validate_against_model(LITMUS_TESTS[name], model)
        assert bad == [], f"simulator produced forbidden images: {bad}"

    def test_simulate_litmus_reaches_final_state(self):
        images = simulate_litmus(LITMUS_TESTS["mp_ofence"], ModelName.SBRP)
        assert {"pData": 1, "pFlag": 1} in images

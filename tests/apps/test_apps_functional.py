"""Every application completes correctly under every model, and the
registry mirrors Table 2."""

import numpy as np
import pytest

from repro import GPUSystem, small_system
from repro.apps import APPS, build_app
from repro.apps.srad import reference as srad_reference

SIZES = {
    "gpkvs": dict(n_pairs=512, capacity=1024, rounds=2),
    "hashmap": dict(n_inserts=512, capacity=1024, rounds=2),
    "srad": dict(side=24),
    "reduction": dict(blocks=3, per_thread=2),
    "multiqueue": dict(batches=2, blocks=3),
    "scan": dict(blocks=3),
}


class TestRegistry:
    def test_all_six_table2_apps_present(self):
        assert sorted(APPS) == sorted(
            ["gpkvs", "hashmap", "srad", "reduction", "multiqueue", "scan"]
        )

    def test_table2_pmo_classes(self):
        assert build_app("gpkvs").scoped_pmo == "intra-thread"
        assert build_app("hashmap").scoped_pmo == "intra-thread"
        assert build_app("srad").scoped_pmo == "intra-thread"
        assert build_app("reduction").scoped_pmo == "blk/dev-interthread"
        assert build_app("multiqueue").scoped_pmo == "intra/blk-interthread"
        assert build_app("scan").scoped_pmo == "blk-interthread"

    def test_table2_recovery_styles(self):
        logging = {"gpkvs", "hashmap", "multiqueue"}
        for name in APPS:
            style = build_app(name).recovery_style
            assert style == ("logging" if name in logging else "native")

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            build_app("nope")


@pytest.mark.parametrize("name", sorted(APPS))
class TestFunctional:
    def test_completes_and_checks(self, name, model):
        system = GPUSystem(small_system(model))
        app = build_app(name, **SIZES[name])
        app.setup(system)
        outcome = app.run(system)
        assert outcome.cycles > 0
        system.sync()
        app.check(system, complete=True)

    def test_rerun_is_idempotent(self, name, model):
        """Running the workload twice must leave a consistent final
        state (crash recovery relies on re-execution)."""
        system = GPUSystem(small_system(model))
        app = build_app(name, **SIZES[name])
        app.setup(system)
        app.run(system)
        app.run(system)
        system.sync()
        app.check(system, complete=True)


class TestReferences:
    def test_srad_reference_matches_kernel(self, sbrp_system):
        app = build_app("srad", side=16)
        app.setup(sbrp_system)
        app.run(sbrp_system)
        sbrp_system.sync()
        img = app.image_pixels().reshape(16, 16)
        _, ref_out = srad_reference(img)
        got = sbrp_system.read_words(app.out, app.n_pixels)
        assert (got == ref_out).all()

    def test_reduction_expected_sum(self, sbrp_system):
        app = build_app("reduction", blocks=2, per_thread=2)
        app.setup(sbrp_system)
        app.run(sbrp_system)
        sbrp_system.sync()
        assert sbrp_system.read_word(app.out.base) == app.expected()

    def test_scan_matches_numpy_cumsum(self, sbrp_system):
        app = build_app("scan", blocks=2)
        app.setup(sbrp_system)
        app.run(sbrp_system)
        sbrp_system.sync()
        final = sbrp_system.read_words(app.bufs[-1], app.n)
        assert (final == app.expected()).all()

    def test_gpkvs_table_fully_rekeyed(self, sbrp_system):
        app = build_app("gpkvs", n_pairs=256, capacity=512, rounds=2)
        app.setup(sbrp_system)
        app.run(sbrp_system)
        sbrp_system.sync()
        keys = sbrp_system.read_words(app.tbl_key, 256)
        assert (keys == np.arange(256) + 512).all()

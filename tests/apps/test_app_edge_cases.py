"""App-specific edge cases and parameter validation."""

import numpy as np
import pytest

from repro import GPUSystem, ModelName, small_system
from repro.apps import build_app
from repro.apps.common import SEAL
from repro.common.errors import RecoveryError


@pytest.fixture
def system():
    return GPUSystem(small_system(ModelName.SBRP))


class TestParameterValidation:
    def test_gpkvs_capacity_bound(self):
        with pytest.raises(ValueError):
            build_app("gpkvs", n_pairs=100, capacity=50)

    def test_gpkvs_rounds_divisibility(self):
        with pytest.raises(ValueError):
            build_app("gpkvs", n_pairs=100, capacity=200, rounds=3)

    def test_hashmap_bounds(self):
        with pytest.raises(ValueError):
            build_app("hashmap", n_inserts=100, capacity=50)


class TestCheckersCatchCorruption:
    """The consistency checkers must actually detect broken state - they
    guard every crash test, so they get tested themselves."""

    def test_gpkvs_detects_torn_pair(self, system):
        app = build_app("gpkvs", n_pairs=64, capacity=128, rounds=2)
        app.setup(system)
        app.run(system)
        system.sync()
        # Corrupt: new key with old value (a torn pair).
        system.host_write(app.tbl_val.word(3), 3 * 3 + 1)
        with pytest.raises(RecoveryError, match="torn"):
            app.check(system, complete=True)

    def test_multiqueue_detects_unaligned_tail(self, system):
        app = build_app("multiqueue", batches=2, blocks=2)
        app.setup(system)
        app.run(system)
        system.sync()
        system.host_write(app._tail_word(0), 13)
        with pytest.raises(RecoveryError, match="aligned"):
            app.check(system, complete=True)

    def test_reduction_detects_wrong_partial(self, system):
        app = build_app("reduction", blocks=2, per_thread=2)
        app.setup(system)
        app.run(system)
        system.sync()
        system.host_write(app.parr.word(0), 999999)
        with pytest.raises(RecoveryError, match="partial"):
            app.check(system, complete=True)

    def test_srad_detects_pmo_violation(self, system):
        app = build_app("srad", side=16)
        app.setup(system)
        # Pixel persisted without its noise value: forbidden by PMO.
        ref_pixels = app.image_pixels()
        from repro.apps.srad import reference

        _, ref_out = reference(ref_pixels.reshape(16, 16))
        system.host_write(app.out.word(5), int(ref_out[5]))
        with pytest.raises(RecoveryError, match="PMO violation"):
            app.check(system, complete=False)

    def test_scan_detects_wrong_round_value(self, system):
        app = build_app("scan", blocks=2)
        app.setup(system)
        app.run(system)
        system.sync()
        system.host_write(app.bufs[1].word(0), 987654)
        with pytest.raises(RecoveryError, match="round"):
            app.check(system, complete=True)

    def test_hashmap_detects_missing_displacement(self, system):
        app = build_app("hashmap", n_inserts=64, capacity=128, rounds=2)
        app.setup(system)
        app.run(system)
        system.sync()
        # Wipe a displaced pair from table 2 while table 1 shows done.
        slot2 = (3 * 7 + 3) % 128
        system.host_write(app.t2_key.word(slot2), 0)
        with pytest.raises(RecoveryError, match="displaced"):
            app.check(system, complete=True)


class TestLogSealing:
    def test_gpkvs_recovery_ignores_torn_records(self, system):
        """A log record with a broken seal must be ignored by recovery
        (it was never completed, so the table was never touched)."""
        app = build_app("gpkvs", n_pairs=64, capacity=128, rounds=2)
        app.setup(system)
        # Forge a torn record: plausible fields, wrong seal.
        system.host_write(app.log_key.word(0), 7)
        system.host_write(app.log_val.word(0), 8)
        system.host_write(app.log_slot.word(0), 9)
        system.host_write(app.log_seal.word(0), SEAL)  # wrong checksum
        app.recover(system)
        system.sync()
        # Slot 9 still holds its pristine pair.
        assert system.read_word(app.tbl_key.word(9)) == 9
        assert system.read_word(app.tbl_val.word(9)) == 3 * 9 + 1

    def test_gpkvs_recovery_applies_valid_records(self, system):
        app = build_app("gpkvs", n_pairs=64, capacity=128, rounds=2)
        app.setup(system)
        # A valid in-flight record for slot 4, with the table torn.
        old_k, old_v, slot = 4, 3 * 4 + 1, 4
        system.host_write(app.log_key.word(0), old_k)
        system.host_write(app.log_val.word(0), old_v)
        system.host_write(app.log_slot.word(0), slot)
        system.host_write(app.log_seal.word(0), old_k ^ old_v ^ slot ^ SEAL)
        system.host_write(app.tbl_key.word(slot), 4 + 128)  # torn update
        app.recover(system)
        system.sync()
        assert system.read_word(app.tbl_key.word(slot)) == old_k
        assert system.read_word(app.tbl_val.word(slot)) == old_v
        assert system.read_word(app.log_seal.word(0)) == 0

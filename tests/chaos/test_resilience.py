"""The resilience layer: retry policies, the watermark state machine,
and batch admission (shed / throttle / reject)."""

from types import SimpleNamespace

import pytest

from repro.chaos.resilience import (
    MODE_DEGRADED,
    MODE_NORMAL,
    AdmissionController,
    Pressure,
    ResilienceMonitor,
    system_pressure,
)
from repro.common.config import ModelName, ResilienceConfig, small_system
from repro.common.errors import ConfigError, DegradedModeError
from repro.common.retry import SCHEDULE_EXPONENTIAL, RetryPolicy
from repro.faults.plans import NVMTransientPlan
from repro.serve.txn import POLICY_FORCED_DIRECT, POLICY_FORCED_PB
from repro.system import GPUSystem


class TestRetryPolicy:
    def test_linear_matches_legacy_formula(self):
        plan = NVMTransientPlan(fails=4)
        policy = plan.retry_policy
        legacy = plan.backoff_cycles * plan.fails * (plan.fails + 1) / 2
        assert policy.total_delay(plan.fails) == legacy == plan.retry_delay

    def test_linear_delays_grow_arithmetically(self):
        policy = RetryPolicy(base_cycles=400.0)
        assert [policy.delay(a) for a in (1, 2, 3)] == [400.0, 800.0, 1200.0]

    def test_exponential_delays_are_capped(self):
        policy = ResilienceConfig(enabled=True).retry_policy()
        assert policy.schedule == SCHEDULE_EXPONENTIAL
        assert [policy.delay(a) for a in (1, 2, 3)] == [200.0, 400.0, 800.0]
        assert policy.delay(6) == 3200.0  # 200 * 2**5 = 6400, capped
        assert policy.total_delay(7) == 200 + 400 + 800 + 1600 + 3 * 3200

    def test_zero_fails_cost_nothing(self):
        assert RetryPolicy().total_delay(0) == 0.0

    def test_exhausted_boundary(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.exhausted(5)
        assert policy.exhausted(6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(schedule="fibonacci"),
            dict(max_retries=-1),
            dict(base_cycles=0.0),
            dict(mult=0.5),
            dict(cap_cycles=0.0),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigError):
            RetryPolicy().delay(0)


class TestResilienceConfig:
    def test_defaults_validate_and_stay_disabled(self):
        config = ResilienceConfig()
        config.validate()
        assert not config.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(high_watermark=0.2, low_watermark=0.2),
            dict(reject_watermark=0.5),
            dict(reject_backoff_cycles=0.0),
            dict(max_rejects=-1),
            dict(backoff_mult=0.0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ResilienceConfig(**kwargs).validate()


class TestResilienceMonitor:
    def test_hysteresis_entry_and_exit(self):
        monitor = ResilienceMonitor(ResilienceConfig(enabled=True))
        assert monitor.observe(Pressure(wpq=0.5, pb=0.0)) == MODE_NORMAL
        assert monitor.observe(Pressure(wpq=0.6, pb=0.0)) == MODE_DEGRADED
        # Between the watermarks the mode sticks (no flapping).
        assert monitor.observe(Pressure(wpq=0.4, pb=0.0)) == MODE_DEGRADED
        assert monitor.observe(Pressure(wpq=0.2, pb=0.0)) == MODE_NORMAL
        assert monitor.entries == 1
        assert monitor.exits == 1

    def test_worst_of_both_paths_governs(self):
        monitor = ResilienceMonitor(ResilienceConfig(enabled=True))
        assert monitor.observe(Pressure(wpq=0.1, pb=0.9)) == MODE_DEGRADED

    def test_disabled_config_never_degrades(self):
        monitor = ResilienceMonitor(ResilienceConfig(enabled=False))
        assert monitor.observe(Pressure(wpq=1.0, pb=1.0)) == MODE_NORMAL
        assert monitor.entries == 0


def stub_system(wpq_at, pb_live=0, pb_capacity=0):
    """A minimal pressure-probe target: WPQ occupancy from *wpq_at*,
    optionally one SBRP-style persist buffer at a fixed fill."""
    model = SimpleNamespace()
    if pb_capacity:
        pbuf = SimpleNamespace(
            capacity=pb_capacity, live_count=lambda: pb_live
        )
        model.states = {0: SimpleNamespace(pb=pbuf)}
    return SimpleNamespace(
        gpu=SimpleNamespace(
            subsystem=SimpleNamespace(wpq_occupancy=wpq_at),
            model=model,
        )
    )


class TestAdmissionController:
    def enabled(self, **kwargs):
        return ResilienceConfig(enabled=True, **kwargs)

    def test_normal_mode_admits_untouched(self):
        config = self.enabled()
        controller = AdmissionController(config)
        monitor = ResilienceMonitor(config)
        admission = controller.admit(stub_system(lambda now: 0.1), monitor, 0.0)
        assert admission == admission.__class__(
            policy=None, split=1, deferred_cycles=0.0, rejected=0
        )

    def test_degraded_mode_sheds_and_throttles(self):
        config = self.enabled()
        controller = AdmissionController(config)
        monitor = ResilienceMonitor(config)
        admission = controller.admit(stub_system(lambda now: 0.7), monitor, 0.0)
        assert monitor.mode == MODE_DEGRADED
        # WPQ is the pressured path, so shed to the buffered path.
        assert admission.policy == POLICY_FORCED_PB
        assert admission.split == 2
        assert admission.rejected == 0
        assert controller.sheds == 1
        assert controller.throttles == 1

    def test_pb_pressure_sheds_to_direct_path(self):
        config = self.enabled()
        controller = AdmissionController(config)
        monitor = ResilienceMonitor(config)
        # Persist buffer 8/10 full, WPQ at 0.3: degrade on PB pressure
        # and shed to the direct path (the PB is the congested one).
        system = stub_system(lambda now: 0.3, pb_live=8, pb_capacity=10)
        admission = controller.admit(system, monitor, 0.0)
        assert monitor.mode == MODE_DEGRADED
        assert admission.policy == POLICY_FORCED_DIRECT

    def test_reject_defers_until_drained(self):
        config = self.enabled(reject_backoff_cycles=1000.0)
        controller = AdmissionController(config)
        monitor = ResilienceMonitor(config)
        # Saturated until t=1500, drained after: two rejects then admit.
        system = stub_system(lambda now: 1.0 if now < 1500.0 else 0.3)
        admission = controller.admit(system, monitor, 0.0)
        assert admission.rejected == 2
        assert admission.deferred_cycles == 2000.0
        assert admission.split == 2
        assert controller.rejects == 2

    def test_reject_budget_exhaustion_raises(self):
        config = self.enabled(max_rejects=3)
        controller = AdmissionController(config)
        monitor = ResilienceMonitor(config)
        system = stub_system(lambda now: 1.0)  # never drains
        with pytest.raises(DegradedModeError):
            controller.admit(system, monitor, 0.0)
        assert controller.rejects == config.max_rejects + 1


class TestSystemPressure:
    def test_idle_system_probes_zero(self):
        system = GPUSystem(small_system(ModelName.SBRP))
        pressure = system_pressure(system, system.now)
        assert pressure == Pressure(wpq=0.0, pb=0.0)
        assert pressure.worst == 0.0

    def test_probe_does_not_mutate(self):
        system = GPUSystem(small_system(ModelName.GPM))
        before = system.now
        system_pressure(system, before + 5000.0)
        assert system.now == before

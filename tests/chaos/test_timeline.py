"""Fault timelines and the chronic injector: window semantics, JSON
round-trips, base-plan composition, and the retry-budget teeth."""

import pytest

from repro.chaos.injector import ChronicInjector
from repro.chaos.timeline import (
    WINDOW_KINDS,
    FaultWindow,
    TimelinePlan,
)
from repro.common.config import ResilienceConfig
from repro.common.errors import ConfigError, FaultInjectionError
from repro.faults.injector import build_injector
from repro.faults.plans import FaultPlan, NVMTransientPlan


def brownout(start=100.0, end=200.0, intensity=0.25):
    return FaultWindow("brownout", start, end, intensity=intensity)


class TestFaultWindow:
    def test_contains_is_half_open(self):
        w = brownout()
        assert not w.contains(99.9)
        assert w.contains(100.0)
        assert w.contains(199.9)
        assert not w.contains(200.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultWindow("meteor", 0.0, 1.0)

    @pytest.mark.parametrize("start,end", [(-1.0, 5.0), (5.0, 5.0), (5.0, 4.0)])
    def test_bad_interval_rejected(self, start, end):
        with pytest.raises(ConfigError):
            FaultWindow("brownout", start, end, intensity=0.5)

    def test_kind_specific_intensity_bounds(self):
        with pytest.raises(ConfigError):
            FaultWindow("brownout", 0.0, 1.0, intensity=1.5)
        with pytest.raises(ConfigError):
            FaultWindow("burst", 0.0, 1.0, intensity=0.0)
        with pytest.raises(ConfigError):
            FaultWindow("ack_storm", 0.0, 1.0, intensity=-1.0)
        with pytest.raises(ConfigError):
            FaultWindow("wpq_squeeze", 0.0, 1.0, intensity=0.5)
        with pytest.raises(ConfigError):
            FaultWindow("burst", 0.0, 1.0, intensity=2.0, every=0)


class TestTimelinePlan:
    def test_json_round_trip(self):
        plan = TimelinePlan(
            windows=(
                brownout(),
                FaultWindow("burst", 50.0, 80.0, intensity=3.0, every=7),
            )
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert isinstance(clone, TimelinePlan)
        assert clone == plan
        assert clone.windows[1].every == 7

    def test_windows_coerce_from_dicts(self):
        plan = TimelinePlan(
            windows=(
                {"kind": "wpq_squeeze", "start": 0.0, "end": 9.0, "intensity": 2.0},
            )
        )
        assert isinstance(plan.windows[0], FaultWindow)

    def test_base_plan_composes(self):
        base = NVMTransientPlan(fail_every=3, fails=1)
        plan = TimelinePlan(windows=(brownout(),), base=base.to_json())
        assert plan.base_plan() == base
        assert plan.label == "timeline:brownout+nvm_transient"

    def test_timeline_base_does_not_nest(self):
        inner = TimelinePlan(windows=(brownout(),))
        with pytest.raises(ConfigError):
            TimelinePlan(base=inner.to_json())

    def test_label_and_horizon(self):
        assert TimelinePlan().label == "timeline:empty"
        assert TimelinePlan().horizon() == 0.0
        plan = TimelinePlan(
            windows=(brownout(end=300.0), FaultWindow("burst", 0.0, 50.0))
        )
        assert plan.label == "timeline:brownout+burst"
        assert plan.horizon() == 300.0

    def test_build_injector_dispatches_chronic(self):
        injector = build_injector(TimelinePlan(windows=(brownout(),)))
        assert isinstance(injector, ChronicInjector)
        assert injector.is_chronic

    def test_window_kinds_are_pinned(self):
        # The CLI and CI key off these names; renames are breaking.
        assert WINDOW_KINDS == ("brownout", "burst", "ack_storm", "wpq_squeeze")


class TestChronicInjector:
    def test_brownout_scales_only_inside_window(self):
        inj = ChronicInjector(TimelinePlan(windows=(brownout(intensity=0.5),)))
        assert inj.nvm_scale_at(50.0) == 1.0
        assert inj.nvm_scale_at(150.0) == 0.5
        assert inj.nvm_scale_at(200.0) == 1.0

    def test_overlapping_brownouts_compound(self):
        inj = ChronicInjector(
            TimelinePlan(
                windows=(brownout(intensity=0.5), brownout(intensity=0.2))
            )
        )
        assert inj.nvm_scale_at(150.0) == pytest.approx(0.1)

    def test_squeeze_clamp_and_idle_default(self):
        inj = ChronicInjector(
            TimelinePlan(
                windows=(FaultWindow("wpq_squeeze", 10.0, 20.0, intensity=3.0),)
            )
        )
        assert inj.wpq_limit_at(5.0) == 0
        assert inj.wpq_limit_at(15.0) == 3

    def test_time_offset_shifts_windows(self):
        plan = TimelinePlan(windows=(brownout(intensity=0.5),))
        rebooted = ChronicInjector(plan, time_offset=120.0)
        # machine-local 30 is global 150: inside the window.
        assert rebooted.nvm_scale_at(30.0) == 0.5
        assert rebooted.nvm_scale_at(150.0) == 1.0

    def test_burst_adds_device_retry_delay(self):
        plan = TimelinePlan(
            windows=(FaultWindow("burst", 0.0, 100.0, intensity=2.0, every=5),)
        )
        inj = ChronicInjector(plan)
        assert inj.persist_delay(3, now=10.0) == 0.0
        # 2 failures on the linear device schedule: 400 + 800.
        assert inj.persist_delay(5, now=10.0) == 1200.0
        assert inj.counts["nvm_transient_failures"] == 2
        # Outside the window the same persist is untouched.
        assert inj.persist_delay(5, now=500.0) == 0.0

    def test_burst_exhausts_device_budget(self):
        plan = TimelinePlan(
            windows=(FaultWindow("burst", 0.0, 100.0, intensity=7.0),)
        )
        inj = ChronicInjector(plan)
        with pytest.raises(FaultInjectionError, match="device retry budget"):
            inj.persist_delay(1, now=10.0)
        assert inj.counts["nvm_retry_exhausted"] == 1

    def test_resilience_absorbs_the_same_burst(self):
        plan = TimelinePlan(
            windows=(FaultWindow("burst", 0.0, 100.0, intensity=7.0),)
        )
        policy = ResilienceConfig(enabled=True).retry_policy()
        inj = ChronicInjector(plan, resilience=ResilienceConfig(enabled=True))
        assert inj.persist_delay(1, now=10.0) == policy.total_delay(7)
        assert inj.counts["nvm_retries_absorbed"] == 7
        assert "nvm_retry_exhausted" not in inj.counts

    def test_disabled_resilience_is_ignored(self):
        plan = TimelinePlan(
            windows=(FaultWindow("burst", 0.0, 100.0, intensity=7.0),)
        )
        inj = ChronicInjector(plan, resilience=ResilienceConfig(enabled=False))
        with pytest.raises(FaultInjectionError, match="device retry budget"):
            inj.persist_delay(1, now=10.0)

    def test_ack_storm_defers_to_window_close(self):
        plan = TimelinePlan(
            windows=(FaultWindow("ack_storm", 100.0, 200.0, intensity=50.0),)
        )
        inj = ChronicInjector(plan)
        assert inj.transform_ack(1, 140.0, 150.0) == 250.0
        assert inj.counts["stormed_acks"] == 1
        assert inj.transform_ack(2, 290.0, 300.0) == 300.0
        # Offset machines defer to the same *global* instant.
        shifted = ChronicInjector(plan, time_offset=120.0)
        assert shifted.transform_ack(1, 20.0, 30.0) == 130.0

    def test_base_plan_counts_are_shared(self):
        base = NVMTransientPlan(fail_every=5, fails=1)
        plan = TimelinePlan(windows=(brownout(),), base=base.to_json())
        inj = ChronicInjector(plan)
        delay = inj.persist_delay(5, now=0.0)
        assert delay == base.retry_delay
        assert inj.counts["nvm_transient_failures"] == 1

    def test_injection_is_deterministic(self):
        plan = TimelinePlan(
            windows=(
                brownout(),
                FaultWindow("burst", 0.0, 500.0, intensity=2.0, every=3),
            )
        )
        a = ChronicInjector(plan)
        b = ChronicInjector(plan)
        trace_a = [a.persist_delay(seq, now=float(seq)) for seq in range(1, 40)]
        trace_b = [b.persist_delay(seq, now=float(seq)) for seq in range(1, 40)]
        assert trace_a == trace_b
        assert a.counts == b.counts

"""Soak scenarios end to end: crash→recover→crash chains under the
pinned schedules, soak-mode job plumbing, and the CLI's determinism."""

import json
from dataclasses import replace

import pytest

from repro.chaos import soak
from repro.chaos.runner import run_soak_scenario
from repro.common.config import ModelName, ResilienceConfig, small_system
from repro.common.errors import ConfigError
from repro.exec.jobs import MODE_SOAK, ScenarioJob
from repro.faults.oracles import CONSISTENT


def soak_payload(**overrides):
    payload = {
        "timeline": soak.brownout_burst().to_json(),
        "crash_every_batches": 2,
        "crash_fraction": 0.6,
    }
    payload.update(overrides)
    return payload


def resilient_config(model=ModelName.SBRP):
    return replace(
        small_system(model), resilience=ResilienceConfig(enabled=True)
    )


@pytest.fixture(scope="module")
def resilient_result():
    """The pinned brownout+burst chain, run once for the module."""
    return run_soak_scenario(
        "serve_kvs",
        resilient_config(),
        dict(soak.SOAK_PARAMS),
        soak_payload(),
    )


class TestResilientChain:
    def test_survives_without_failure(self, resilient_result):
        assert resilient_result.detail["failure"] is None

    def test_oracle_consistent_at_every_reboot(self, resilient_result):
        reboots = resilient_result.detail["reboots"]
        assert len(reboots) >= 2
        assert all(r["oracle"] == CONSISTENT for r in reboots)

    def test_no_committed_transaction_lost(self, resilient_result):
        assert resilient_result.detail["lost_committed"] == []
        assert resilient_result.stats["soak.lost_committed"] == 0.0

    def test_degraded_mode_entered_and_exited(self, resilient_result):
        stats = resilient_result.stats
        assert stats["soak.degraded_entries"] > 0
        assert stats["soak.degraded_exits"] > 0

    def test_availability_and_latency_stats_present(self, resilient_result):
        stats = resilient_result.stats
        assert 0.0 < stats["soak.availability"] < 1.0
        assert stats["soak.latency_p99"] >= stats["soak.latency_p50"] > 0.0
        assert stats["soak.goodput_rps"] > 0.0
        assert stats["soak.crashes"] == len(
            resilient_result.detail["reboots"]
        )

    def test_burst_retries_were_absorbed(self, resilient_result):
        assert resilient_result.stats["soak.retries_absorbed"] > 0
        assert resilient_result.detail["injected"].get(
            "nvm_retries_absorbed", 0
        ) > 0


class TestUnprotectedChain:
    def test_same_schedule_fails_without_resilience(self):
        result = run_soak_scenario(
            "serve_kvs",
            small_system(ModelName.SBRP),
            dict(soak.SOAK_PARAMS),
            soak_payload(),
        )
        failure = result.detail["failure"]
        assert failure is not None
        assert failure["stage"] == "serve"
        assert failure["classification"] == "fault_raised"


class TestSoakPayloadValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown soak payload keys"):
            run_soak_scenario(
                "serve_kvs",
                resilient_config(),
                dict(soak.SOAK_PARAMS),
                soak_payload(crash_flavour="spicy"),
            )

    def test_timeline_is_required(self):
        with pytest.raises(ValueError, match="timeline"):
            run_soak_scenario(
                "serve_kvs",
                resilient_config(),
                dict(soak.SOAK_PARAMS),
                {"crash_every_batches": 2},
            )


class TestSoakJobs:
    def job(self):
        return soak.smoke_cells()[0].job()

    def test_round_trips_through_json(self):
        job = self.job()
        clone = ScenarioJob.from_json(json.loads(json.dumps(job.to_json())))
        assert clone == job
        assert clone.spec_hash == job.spec_hash

    def test_label_names_mode_and_windows(self):
        assert "[soak]" in self.job().label
        assert "[brownout+burst]" in self.job().label

    def test_soak_payload_only_valid_in_soak_mode(self):
        job = self.job()
        with pytest.raises(ConfigError):
            replace(job, mode="scenario")
        with pytest.raises(ConfigError):
            replace(job, soak=None)


class TestSoakCLI:
    def test_smoke_is_byte_identical_across_workers(self, tmp_path):
        out1 = tmp_path / "w1.json"
        out2 = tmp_path / "w2.json"
        base = ["--smoke", "--quiet"]
        assert soak.main(base + ["--workers", "1", "--out", str(out1)]) == 0
        assert soak.main(base + ["--workers", "2", "--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        report = json.loads(out1.read_text())
        assert report["summary"]["unexpected"] == []
        assert report["cells"]["sbrp.resilient"]["matched"]
        unprotected = report["cells"]["sbrp.unprotected"]
        assert unprotected["failure"]["classification"] == "fault_raised"

"""StatsRegistry semantics (including the shared-registry gotcha)."""

from repro.common.stats import StatsRegistry


def test_add_and_get():
    stats = StatsRegistry()
    stats.add("a.b")
    stats.add("a.b", 2)
    assert stats.get("a.b") == 3
    assert stats.get("missing", 9) == 9


def test_set_and_peak():
    stats = StatsRegistry()
    stats.set("x", 5)
    stats.peak("x", 3)
    assert stats.get("x") == 5
    stats.peak("x", 8)
    assert stats.get("x") == 8


def test_peak_of_negative_values():
    """Regression: peak() used to read the counter through defaultdict
    indexing, materializing 0.0 and clamping every negative peak."""
    stats = StatsRegistry()
    stats.peak("depth", -5)
    assert stats.get("depth") == -5
    stats.peak("depth", -2)
    assert stats.get("depth") == -2
    stats.peak("depth", -9)
    assert stats.get("depth") == -2


def test_peak_does_not_materialize_counter():
    stats = StatsRegistry()
    stats.peak("p", -1)
    assert stats.snapshot() == {"p": -1}


def test_with_prefix():
    stats = StatsRegistry()
    stats.add("l1.hit")
    stats.add("l1.miss", 2)
    stats.add("l2.hit")
    assert stats.with_prefix("l1") == {"l1.hit": 1, "l1.miss": 2}


def test_merge():
    a, b = StatsRegistry(), StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a.get("x") == 3 and a.get("y") == 3


def test_merge_leaves_source_untouched():
    a, b = StatsRegistry(), StatsRegistry()
    b.add("y", 3)
    a.merge(b)
    a.add("y", 1)
    assert b.get("y") == 3


def test_with_prefix_excludes_longer_names():
    stats = StatsRegistry()
    stats.add("l1.hit")
    stats.add("l10.hit")
    assert stats.with_prefix("l1") == {"l1.hit": 1}


def test_empty_registry_is_falsy_but_must_not_be_replaced():
    """Regression: components must use `is not None`, never `or`, when
    accepting a shared registry - an empty one is falsy."""
    from repro.memory.cache import L1Cache

    shared = StatsRegistry()
    cache = L1Cache("l1", 1024, 128, 2, shared)
    assert cache.stats is shared


def test_snapshot_is_immutable_copy():
    stats = StatsRegistry()
    stats.add("a")
    snap = stats.snapshot()
    stats.add("a")
    assert snap["a"] == 1


def test_iteration_sorted():
    stats = StatsRegistry()
    stats.add("b")
    stats.add("a")
    assert [k for k, _ in stats] == ["a", "b"]

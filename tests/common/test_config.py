"""Configuration defaults pin Table 1; validation catches bad setups."""

import pytest

from repro.common.config import (
    DrainPolicy,
    GPUConfig,
    MemoryConfig,
    ModelName,
    PMPlacement,
    SBRPConfig,
    Scope,
    SystemConfig,
    paper_system,
    scale_memory_to_sms,
    small_system,
)
from repro.common.errors import ConfigError


class TestTable1Defaults:
    def test_gpu_geometry(self):
        gpu = GPUConfig()
        assert gpu.num_sms == 30
        assert gpu.threads_per_block == 1024
        assert gpu.l1_size == 64 * 1024
        assert gpu.l2_size == 3 * 1024 * 1024
        assert gpu.max_warps_per_sm == 32

    def test_memory_parameters(self):
        mem = MemoryConfig()
        assert mem.gddr_bw_gbps == 336.0
        assert mem.nvm_read_bw_gbps == 84.0
        assert mem.nvm_write_bw_gbps == 42.0
        assert mem.pcie_bw_gbps == 28.0
        assert mem.gddr_latency_ns == 100.0
        assert mem.nvm_latency_ns == 300.0
        assert mem.pcie_latency_ns == 300.0

    def test_window_default(self):
        assert SBRPConfig().window == 6

    def test_pb_covers_half_the_l1(self):
        gpu = GPUConfig()
        assert SBRPConfig().pb_entries(gpu) == gpu.l1_lines // 2


class TestValidation:
    def test_block_must_fit_in_sm(self):
        gpu = GPUConfig(threads_per_block=2048, max_warps_per_sm=32)
        with pytest.raises(ConfigError):
            gpu.validate()

    def test_block_must_be_warp_multiple(self):
        with pytest.raises(ConfigError):
            GPUConfig(threads_per_block=100).validate()

    def test_eadr_requires_far(self):
        with pytest.raises(ConfigError):
            MemoryConfig(placement=PMPlacement.NEAR, eadr=True).validate()

    def test_pb_coverage_bounds(self):
        with pytest.raises(ConfigError):
            SBRPConfig(pb_coverage=0.0).validate()
        with pytest.raises(ConfigError):
            SBRPConfig(window=0).validate()


class TestScopes:
    def test_scope_inclusion_order(self):
        assert Scope.DEVICE.includes(Scope.BLOCK)
        assert Scope.SYSTEM.includes(Scope.DEVICE)
        assert not Scope.BLOCK.includes(Scope.DEVICE)


class TestLabels:
    def test_labels_match_paper_names(self):
        assert paper_system(ModelName.SBRP, PMPlacement.NEAR).label == "SBRP-near"
        assert paper_system(ModelName.EPOCH, PMPlacement.FAR).label == "EPOCH-far"
        assert paper_system(ModelName.GPM).label == "GPM"


class TestSmallSystem:
    def test_bandwidth_scales_with_sms(self):
        scaled = scale_memory_to_sms(MemoryConfig(), 3)
        assert scaled.nvm_write_bw_gbps == pytest.approx(4.2)
        assert scaled.pcie_bw_gbps == pytest.approx(2.8)

    def test_small_system_is_valid(self):
        config = small_system(ModelName.SBRP)
        assert config.gpu.num_sms == 4
        assert config.gpu.warps_per_block <= config.gpu.max_warps_per_sm

    def test_with_model_and_placement(self):
        base = small_system(ModelName.EPOCH)
        assert base.with_model(ModelName.SBRP).model is ModelName.SBRP
        near = base.with_placement(PMPlacement.NEAR)
        assert near.memory.placement is PMPlacement.NEAR

"""WarpMask semantics (the ODM/EDM/FSM building block)."""

import pytest

from repro.common.bitmask import WarpMask


def test_set_test_clear():
    mask = WarpMask(32)
    mask.set(5)
    assert mask.test(5)
    assert not mask.test(6)
    mask.clear(5)
    assert not mask.any()


def test_from_warps_and_iteration():
    mask = WarpMask.from_warps([0, 3, 31])
    assert list(mask.warps()) == [0, 3, 31]
    assert mask.count() == 3


def test_or_with_accumulates():
    fsm = WarpMask(32)
    fsm.or_with(WarpMask.single(1))
    fsm.or_with(WarpMask.single(7))
    assert fsm.bits == (1 << 1) | (1 << 7)


def test_and_nonzero_detects_overlap():
    a = WarpMask.from_warps([2, 4])
    assert a.and_nonzero(WarpMask.single(4))
    assert not a.and_nonzero(WarpMask.single(5))


def test_clear_mask():
    a = WarpMask.from_warps([1, 2, 3])
    a.clear_mask(WarpMask.from_warps([2, 3]))
    assert list(a.warps()) == [1]


def test_width_bounds_enforced():
    mask = WarpMask(8)
    with pytest.raises(IndexError):
        mask.set(8)
    with pytest.raises(ValueError):
        WarpMask(8, bits=1 << 9)


def test_equality_and_copy():
    a = WarpMask.from_warps([1, 5])
    b = a.copy()
    assert a == b
    b.set(6)
    assert a != b


def test_reset():
    a = WarpMask.from_warps(range(10))
    a.reset()
    assert not a.any()
    assert a.count() == 0


# ----------------------------------------------------------------------
# Seeded round-trip properties
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

warp_sets = st.sets(st.integers(0, 31), max_size=10)


@settings(max_examples=80, deadline=None)
@given(warp_sets)
def test_from_warps_warps_round_trip(warps):
    assert set(WarpMask.from_warps(warps).warps()) == warps
    assert WarpMask.from_warps(warps).count() == len(warps)


@settings(max_examples=80, deadline=None)
@given(warp_sets, st.integers(0, 31))
def test_set_then_clear_round_trips(warps, extra):
    mask = WarpMask.from_warps(warps)
    before = mask.bits
    was_set = mask.test(extra)
    mask.set(extra)
    assert mask.test(extra)
    mask.clear(extra)
    assert not mask.test(extra)
    if not was_set:
        assert mask.bits == before


@settings(max_examples=80, deadline=None)
@given(warp_sets, warp_sets)
def test_merge_then_subtract_round_trips(a, b):
    """or_with followed by clear_mask of the same mask removes exactly
    the merged bits (set difference, not symmetric difference)."""
    mask = WarpMask.from_warps(a)
    other = WarpMask.from_warps(b)
    mask.or_with(other)
    assert set(mask.warps()) == a | b
    mask.clear_mask(other)
    assert set(mask.warps()) == a - b


@settings(max_examples=80, deadline=None)
@given(warp_sets)
def test_bits_constructor_round_trips(warps):
    mask = WarpMask.from_warps(warps)
    rebuilt = WarpMask(mask.width, mask.bits)
    assert rebuilt == mask
    assert hash(rebuilt) == hash(mask)


@settings(max_examples=80, deadline=None)
@given(warp_sets, warp_sets)
def test_copy_is_independent(a, b):
    mask = WarpMask.from_warps(a)
    dup = mask.copy()
    dup.or_with(WarpMask.from_warps(b))
    assert set(mask.warps()) == a
    assert set(dup.warps()) == a | b

"""WarpMask semantics (the ODM/EDM/FSM building block)."""

import pytest

from repro.common.bitmask import WarpMask


def test_set_test_clear():
    mask = WarpMask(32)
    mask.set(5)
    assert mask.test(5)
    assert not mask.test(6)
    mask.clear(5)
    assert not mask.any()


def test_from_warps_and_iteration():
    mask = WarpMask.from_warps([0, 3, 31])
    assert list(mask.warps()) == [0, 3, 31]
    assert mask.count() == 3


def test_or_with_accumulates():
    fsm = WarpMask(32)
    fsm.or_with(WarpMask.single(1))
    fsm.or_with(WarpMask.single(7))
    assert fsm.bits == (1 << 1) | (1 << 7)


def test_and_nonzero_detects_overlap():
    a = WarpMask.from_warps([2, 4])
    assert a.and_nonzero(WarpMask.single(4))
    assert not a.and_nonzero(WarpMask.single(5))


def test_clear_mask():
    a = WarpMask.from_warps([1, 2, 3])
    a.clear_mask(WarpMask.from_warps([2, 3]))
    assert list(a.warps()) == [1]


def test_width_bounds_enforced():
    mask = WarpMask(8)
    with pytest.raises(IndexError):
        mask.set(8)
    with pytest.raises(ValueError):
        WarpMask(8, bits=1 << 9)


def test_equality_and_copy():
    a = WarpMask.from_warps([1, 5])
    b = a.copy()
    assert a == b
    b.set(6)
    assert a != b


def test_reset():
    a = WarpMask.from_warps(range(10))
    a.reset()
    assert not a.any()
    assert a.count() == 0

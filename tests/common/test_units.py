"""Unit conversions against Table 1's numbers."""

import pytest

from repro.common.units import (
    CLOCK_MHZ,
    cycles_to_ns,
    gbps_to_bytes_per_cycle,
    ns_to_cycles,
)


def test_clock_matches_table1():
    assert CLOCK_MHZ == 1365


def test_ns_round_trip():
    cycles = ns_to_cycles(300.0)
    assert cycles == round(300.0 * 1.365)
    assert cycles_to_ns(cycles) == pytest.approx(300.0, rel=0.01)


def test_ns_to_cycles_minimum_one():
    assert ns_to_cycles(0.0001) == 1


def test_gddr_bandwidth_per_cycle():
    # 336 GB/s at 1365 MHz is ~246 bytes per cycle.
    assert gbps_to_bytes_per_cycle(336) == pytest.approx(246.2, abs=0.5)


def test_nvm_write_bandwidth_is_eighth_of_gddr():
    # The paper posits NVM write bandwidth ~1/8th of GDDR.
    gddr = gbps_to_bytes_per_cycle(336)
    nvm = gbps_to_bytes_per_cycle(42)
    assert gddr / nvm == pytest.approx(8.0)

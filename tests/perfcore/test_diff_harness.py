"""The differential harness itself: grids, cell runs, report determinism.

The heavyweight full-grid sweep lives in CI (``perfcore-smoke``); these
tests keep the harness honest at tier-1 cost: one real cell per kind
runs reference-vs-fast and must match, a seeded divergence must be
reported with field paths, and the CLI must produce byte-identical
reports for ``--workers 1`` and ``--workers 2``.
"""

from __future__ import annotations

import json

import pytest

from repro.perfcore.diff import build_report, main
from repro.perfcore.fingerprint import diff_paths
from repro.perfcore.grid import build_grid, run_cell

GRID = {cell.name: cell for cell in build_grid(smoke=False)}


def test_full_grid_covers_all_axes():
    kinds = {cell.kind for cell in GRID.values()}
    assert kinds == {"sim", "litmus", "fault", "serve", "soak"}
    models = {cell.payload["model"] for cell in GRID.values()}
    assert models == {"gpm", "epoch", "sbrp"}
    # Litmus corpus appears under every model.
    litmus = [c for c in GRID.values() if c.kind == "litmus"]
    assert len({c.payload["program"]["name"] for c in litmus}) >= 10
    # Serving cells cover every model; the soak chain pins SBRP.
    assert {c.payload["model"] for c in GRID.values() if c.kind == "serve"} \
        == {"gpm", "epoch", "sbrp"}
    assert [c.name for c in GRID.values() if c.kind == "soak"] \
        == ["soak.sbrp.kvs"]


def test_smoke_grid_is_subset_of_full():
    smoke = build_grid(smoke=True)
    assert {cell.name for cell in smoke} <= set(GRID)
    assert {cell.kind for cell in smoke} == {"sim", "litmus", "fault", "serve"}


@pytest.mark.parametrize(
    "name",
    [
        "sim.epoch.reduction",
        "litmus.sbrp.device_release_pm_flag",
        "fault.sbrp.gpkvs.powercut",
        "serve.sbrp.kvs",
        "soak.sbrp.kvs",
    ],
)
def test_cell_matches_across_engines(name: str):
    report = run_cell(GRID[name].to_json())
    assert report["match"], report["mismatches"]
    assert report["reference"] == report["fast"] == report["batch"]
    assert "error" not in report["reference"]


def test_diff_paths_reports_divergence():
    a = {"cycles": 10.0, "stats": {"x": 1.0, "y": 2.0}, "img": [1, 2]}
    b = {"cycles": 11.0, "stats": {"x": 1.0, "y": 3.0}, "img": [1, 2, 3]}
    paths = diff_paths(a, b)
    assert "cycles" in paths
    assert "stats.y" in paths
    assert "img.length" in paths
    assert diff_paths(a, a) == []


def test_build_report_drops_matching_fingerprints_only():
    ok = {"name": "a", "kind": "sim", "match": True, "mismatches": [],
          "reference": {"c": 1}, "fast": {"c": 1}, "batch": {"c": 1}}
    bad = {"name": "b", "kind": "sim", "match": False,
           "mismatches": ["batch:c"],
           "reference": {"c": 1}, "fast": {"c": 1}, "batch": {"c": 2}}
    doc = build_report([ok, bad], "full", full=False)
    assert "reference" not in doc["cells"]["a"]
    assert "batch" not in doc["cells"]["a"]
    assert doc["cells"]["b"]["reference"] == {"c": 1}
    assert doc["cells"]["b"]["batch"] == {"c": 2}
    assert doc["mismatched"] == ["b"]


def test_run_cell_prefixes_mismatch_paths_with_engine(monkeypatch):
    # Seed a divergence in the batched engine only; the report must say
    # *which* engine diverged, not just where.
    import repro.perfcore.grid as grid_mod

    real = grid_mod.fingerprint

    def skewed(kind, payload, engine):
        fp = real(kind, payload, engine)
        if engine == "batch":
            fp = dict(fp, cycles=fp["cycles"] + 1)
        return fp

    monkeypatch.setattr(grid_mod, "fingerprint", skewed)
    report = grid_mod.run_cell(GRID["sim.sbrp.reduction"].to_json())
    assert not report["match"]
    assert report["mismatches"] == ["batch:cycles"]


def test_cli_byte_identical_across_worker_counts(tmp_path):
    cases = ["sim.sbrp.gpkvs", "litmus.sbrp.mp_ofence_split"]
    out1 = tmp_path / "w1.json"
    out2 = tmp_path / "w2.json"
    assert main(["--cases", *cases, "--quiet", "--out", str(out1)]) == 0
    assert main(
        ["--cases", *cases, "--quiet", "--workers", "2", "--out", str(out2)]
    ) == 0
    assert out1.read_bytes() == out2.read_bytes()
    doc = json.loads(out1.read_text())
    assert doc["total"] == 2 and doc["mismatched"] == []


def test_cli_rejects_unknown_cell():
    with pytest.raises(SystemExit):
        main(["--cases", "no.such.cell", "--quiet"])


def test_cli_list_prints_cells(capsys):
    assert main(["--smoke", "--list"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert "litmus.sbrp.mp_ofence_split" in lines

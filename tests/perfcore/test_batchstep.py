"""Satellite 3: cohort expansion replays per-warp issue order exactly.

The batched fast core (:mod:`repro.gpu.batchstep`) pops one *cohort*
event and steps many warps inside the handler.  Its equivalence claim
is structural: every inlined step consumes exactly the ``(time, seq)``
the per-warp core would have scheduled, so the observable issue order —
including same-cycle round-robin ties and FIFO ties between warps whose
ready times collide — cannot move.

These tests drive randomly generated per-warp op programs (computes
with colliding latencies, PM stores, PM loads, optional block barriers)
through the reference engine, the unbatched fast core and the batched
fast core, logging every generator resume from *inside* the kernel.
The three logs must be identical element-for-element, and the runs must
agree on final time and total event count.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ModelName, small_system
from repro.system import GPUSystem

#: Warps per block on the ``small_system`` shape (128 threads / 32).
WPB = 4

#: Op alphabet.  Duplicate compute latencies are deliberate: equal
#: latencies make many warps ready on the same cycle, which is exactly
#: where the round-robin pick and the FIFO tie-break live.
OPS = st.sampled_from(
    [("c", 1), ("c", 1), ("c", 2), ("c", 2), ("c", 4), ("st", 3), ("ld", 0)]
)

PROGRAM = st.lists(OPS, min_size=1, max_size=6)

#: The three rows of the engine axis, as (engine, batch_warps) pairs.
ENGINE_SETUPS = (
    ("reference", False),
    ("fast", False),
    ("fast", True),
)


@st.composite
def workloads(draw):
    n_blocks = draw(st.integers(min_value=1, max_value=2))
    programs = {
        (block, warp): draw(PROGRAM)
        for block in range(n_blocks)
        for warp in range(WPB)
    }
    barrier_blocks = draw(
        st.sets(st.integers(min_value=0, max_value=n_blocks - 1))
    )
    return n_blocks, programs, barrier_blocks


def run_workload(
    engine: str,
    batch: bool,
    n_blocks: int,
    programs: Dict[Tuple[int, int], List[Tuple[str, int]]],
    barrier_blocks,
):
    """One run; returns (issue log, final time, events processed)."""
    config = replace(
        small_system(ModelName.SBRP), engine=engine, batch_warps=batch
    )
    system = GPUSystem(config)
    data = system.pm_create("batchprop.data", 4 * n_blocks * 128)
    log: List[Tuple] = []

    def kernel(w):
        key = (w.block_id, w.warp_in_block)
        for step, (kind, arg) in enumerate(programs[key]):
            log.append((key, step, system.now))
            if kind == "c":
                yield w.compute(arg)
            elif kind == "st":
                yield w.st(data.base + 4 * w.tid, arg + w.lane)
            else:
                yield w.ld(data.base + 4 * w.tid)
        if w.block_id in barrier_blocks:
            log.append((key, "barrier", system.now))
            yield w.sync()

    system.launch(kernel, n_blocks, name="batchprop")
    system.sync()
    return log, system.now, int(system.stat("engine.events_processed"))


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_batched_issue_order_matches_reference(workload):
    n_blocks, programs, barrier_blocks = workload
    results = {
        (engine, batch): run_workload(
            engine, batch, n_blocks, programs, barrier_blocks
        )
        for engine, batch in ENGINE_SETUPS
    }
    ref_log, ref_now, ref_events = results[("reference", False)]
    for setup in ENGINE_SETUPS[1:]:
        log, now, events = results[setup]
        assert log == ref_log, f"{setup} diverged from reference issue order"
        assert now == ref_now, setup
        assert events == ref_events, setup


def test_single_warp_cohort_inlines_whole_program():
    """A lone ready warp is the pure run-ahead case: the batched core
    must still count every logical issue event it inlined."""
    programs = {(0, w): [("c", 1), ("c", 1), ("st", 3)] for w in range(WPB)}
    outs = [
        run_workload(engine, batch, 1, programs, set())
        for engine, batch in ENGINE_SETUPS
    ]
    assert outs[0] == outs[1] == outs[2]

"""Satellite: the golden-trace management CLI (check / regenerate).

``python -m repro.perfcore.goldens`` owns ``golden_traces.json``: check
mode re-derives every case from the reference engine and diffs it
against the committed file; ``--regenerate`` re-pins, but refuses to
start from a git-dirty golden (that is what a hand-edited baseline
looks like) unless ``--force`` is given.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.perfcore import goldens

COMMITTED = Path(__file__).parent / "golden_traces.json"


def test_check_mode_passes_on_committed_file(capsys):
    assert goldens.main(["--file", str(COMMITTED)]) == 0
    assert "matches the reference engine" in capsys.readouterr().out


def test_check_mode_fails_with_field_paths(tmp_path, capsys):
    doc = json.loads(COMMITTED.read_text(encoding="utf-8"))
    doc["cases"]["sbrp.scan"]["cycles"] += 1.0
    skewed = tmp_path / "golden_traces.json"
    skewed.write_text(goldens.render(doc), encoding="utf-8")
    assert goldens.main(["--file", str(skewed)]) == 1
    err = capsys.readouterr().err
    assert "diverges from the reference engine" in err
    assert "sbrp.scan.cycles" in err


def test_missing_file_is_an_error(tmp_path, capsys):
    assert goldens.main(["--file", str(tmp_path / "nope.json")]) == 1
    assert "no golden file" in capsys.readouterr().err


@pytest.fixture
def golden_repo(tmp_path):
    """A scratch git repo with the real goldens committed at HEAD."""
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    path = tmp_path / "golden_traces.json"
    path.write_text(COMMITTED.read_text(encoding="utf-8"), encoding="utf-8")
    env_args = ["-c", "user.email=t@t", "-c", "user.name=t"]
    subprocess.run(
        ["git", *env_args, "-C", str(tmp_path), "add", path.name], check=True
    )
    subprocess.run(
        ["git", *env_args, "-C", str(tmp_path), "commit", "-q", "-m", "pin"],
        check=True,
    )
    return path


def test_regenerate_round_trips_committed_cases(golden_repo, capsys):
    before = json.loads(golden_repo.read_text(encoding="utf-8"))
    assert goldens.main(["--file", str(golden_repo), "--regenerate"]) == 0
    assert "regenerated" in capsys.readouterr().out
    after = json.loads(golden_repo.read_text(encoding="utf-8"))
    # The reference engine still reproduces the committed pin exactly.
    assert after["cases"] == before["cases"]
    assert after["machine"] == before["machine"]


def test_regenerate_refuses_dirty_file(golden_repo, capsys):
    doc = json.loads(golden_repo.read_text(encoding="utf-8"))
    doc["cases"]["sbrp.scan"]["cycles"] += 1.0
    golden_repo.write_text(goldens.render(doc), encoding="utf-8")
    assert goldens.main(["--file", str(golden_repo), "--regenerate"]) == 1
    assert "refusing to regenerate" in capsys.readouterr().err
    # The hand-edit is left in place, not silently overwritten.
    assert json.loads(golden_repo.read_text(encoding="utf-8")) == doc
    # --force re-pins from the reference engine, discarding the edit.
    assert goldens.main(
        ["--file", str(golden_repo), "--regenerate", "--force"]
    ) == 0
    regenerated = json.loads(golden_repo.read_text(encoding="utf-8"))
    assert regenerated["cases"]["sbrp.scan"]["cycles"] \
        != doc["cases"]["sbrp.scan"]["cycles"]

"""Satellite 2: golden-trace regression pins for 3 models x 3 apps.

``golden_traces.json`` snapshots the exact end-to-end behaviour of the
pre-fastcore seed — cycle counts, engine event counts, every stats
counter, and hashes of the crash image and metrics snapshot — for each
persistency model on gpkvs/reduction/scan.  Every engine on the axis —
reference, fast, and the batched fast core — must still reproduce those
payloads bit-for-bit: any future engine change that shifts timing fails
here with a field-level diff, not silently.

"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perfcore.fingerprint import sim_fingerprint

GOLDEN_PATH = Path(__file__).parent / "golden_traces.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

#: Fields a run must reproduce exactly.
PINNED_FIELDS = (
    "cycles",
    "events",
    "stats",
    "crash_image_sha256",
    "metrics_snapshot_sha256",
)


@pytest.mark.parametrize("engine", ["reference", "fast", "batch"])
@pytest.mark.parametrize("key", sorted(GOLDEN["cases"]))
def test_golden_trace(key: str, engine: str):
    case = GOLDEN["cases"][key]
    got = sim_fingerprint(case["model"], case["app"], case["app_params"], engine)
    assert "error" not in got, got
    mismatched = {
        field: {"want": case[field], "got": got[field]}
        for field in PINNED_FIELDS
        if got[field] != case[field]
    }
    assert not mismatched, (
        f"{engine} engine diverged from the golden trace on {key}: "
        f"{json.dumps(mismatched, indent=2, default=str)[:2000]}"
    )


def test_golden_file_covers_full_matrix():
    models = {case["model"] for case in GOLDEN["cases"].values()}
    apps = {case["app"] for case in GOLDEN["cases"].values()}
    assert models == {"gpm", "epoch", "sbrp"}
    assert apps == {"gpkvs", "reduction", "scan"}
    assert len(GOLDEN["cases"]) == 9

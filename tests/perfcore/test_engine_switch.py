"""The ``SystemConfig.engine`` switch: selection, validation, caching.

The reference engine is retained as the oracle for the differential
harness; these tests pin the plumbing that keeps it selectable — config
validation, the device's engine/SM class choice, JSON round-trips, and
cache-key separation so reference and fast results never dedupe to one
cached entry.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import ModelName, small_system
from repro.common.errors import ConfigError
from repro.gpu.engine import Engine, FastEngine
from repro.system import GPUSystem


def test_default_engine_is_fast():
    assert small_system(ModelName.SBRP).engine == "fast"


def test_invalid_engine_rejected():
    config = replace(small_system(ModelName.SBRP), engine="warp9")
    with pytest.raises(ConfigError, match="engine"):
        config.validate()


@pytest.mark.parametrize(
    "engine,engine_cls,sm_cls_name",
    [("reference", Engine, "SM"), ("fast", FastEngine, "FastSM")],
)
def test_device_honours_engine_selection(engine, engine_cls, sm_cls_name):
    config = replace(small_system(ModelName.EPOCH), engine=engine)
    system = GPUSystem(config)
    assert type(system.gpu.engine) is engine_cls
    assert all(type(sm).__name__ == sm_cls_name for sm in system.gpu.sms)


def test_engine_round_trips_through_json():
    config = replace(small_system(ModelName.SBRP), engine="reference")
    assert config.from_dict(config.to_dict()).engine == "reference"
    # Legacy documents without the field default to the fast core.
    legacy = config.to_dict()
    legacy.pop("engine")
    assert config.from_dict(legacy).engine == "fast"


def test_engine_participates_in_cache_key():
    fast = small_system(ModelName.SBRP)
    reference = replace(fast, engine="reference")
    assert fast.cache_key() != reference.cache_key()

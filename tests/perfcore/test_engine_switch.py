"""The ``SystemConfig.engine`` switch: selection, validation, caching.

The reference engine is retained as the oracle for the differential
harness; these tests pin the plumbing that keeps it selectable — config
validation, the device's engine/SM class choice, JSON round-trips, and
cache-key separation so reference and fast results never dedupe to one
cached entry.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import ModelName, small_system
from repro.common.errors import ConfigError
from repro.gpu.batchstep import BatchEngine
from repro.gpu.engine import Engine, FastEngine
from repro.system import GPUSystem


def test_default_engine_is_fast_batched():
    config = small_system(ModelName.SBRP)
    assert config.engine == "fast"
    assert config.batch_warps is True


def test_invalid_engine_rejected():
    config = replace(small_system(ModelName.SBRP), engine="warp9")
    with pytest.raises(ConfigError, match="engine"):
        config.validate()


@pytest.mark.parametrize(
    "engine,batch,engine_cls,sm_cls_name",
    [
        ("reference", False, Engine, "SM"),
        ("fast", False, FastEngine, "FastSM"),
        ("fast", True, BatchEngine, "BatchSM"),
    ],
)
def test_device_honours_engine_selection(engine, batch, engine_cls, sm_cls_name):
    config = replace(
        small_system(ModelName.EPOCH), engine=engine, batch_warps=batch
    )
    system = GPUSystem(config)
    assert type(system.gpu.engine) is engine_cls
    assert all(type(sm).__name__ == sm_cls_name for sm in system.gpu.sms)


def test_batch_warps_ignored_on_reference_engine():
    # batch_warps only modulates the fast core; the reference oracle
    # stays the plain heap engine regardless.
    config = replace(
        small_system(ModelName.EPOCH), engine="reference", batch_warps=True
    )
    system = GPUSystem(config)
    assert type(system.gpu.engine) is Engine


def test_engine_round_trips_through_json():
    config = replace(
        small_system(ModelName.SBRP), engine="reference", batch_warps=False
    )
    restored = config.from_dict(config.to_dict())
    assert restored.engine == "reference"
    assert restored.batch_warps is False
    # Legacy documents without the fields default to the batched fast core.
    legacy = config.to_dict()
    legacy.pop("engine")
    legacy.pop("batch_warps")
    restored = config.from_dict(legacy)
    assert restored.engine == "fast"
    assert restored.batch_warps is True


def test_engine_participates_in_cache_key():
    fast = small_system(ModelName.SBRP)
    reference = replace(fast, engine="reference")
    unbatched = replace(fast, batch_warps=False)
    keys = {fast.cache_key(), reference.cache_key(), unbatched.cache_key()}
    assert len(keys) == 3

"""Address space, backing images, namespace table, persist log."""

import pytest

from repro.common.config import GPUConfig, MemoryConfig
from repro.common.errors import MemoryError_
from repro.common.stats import StatsRegistry
from repro.memory.address_space import PM_BASE, AddressSpace, is_pm_addr
from repro.memory.backing import BackingStore
from repro.memory.namespace import NamespaceTable, PMPool
from repro.memory.subsystem import MemorySubsystem


class TestAddressSpace:
    def test_volatile_below_pm_region(self):
        space = AddressSpace()
        vol = space.alloc(256)
        pm = space.alloc(256, persistent=True)
        assert vol.base < PM_BASE <= pm.base
        assert not is_pm_addr(vol.base)
        assert is_pm_addr(pm.base)

    def test_alignment(self):
        space = AddressSpace(alignment=128)
        a = space.alloc(100)
        b = space.alloc(100)
        assert b.base - a.base == 128

    def test_named_allocation_lookup(self):
        space = AddressSpace()
        region = space.alloc(64, persistent=True, name="tbl")
        assert space.lookup_name("tbl") == region

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc(64, persistent=True, name="x")
        with pytest.raises(MemoryError_):
            space.alloc(64, persistent=True, name="x")

    def test_volatile_names_rejected(self):
        with pytest.raises(MemoryError_):
            AddressSpace().alloc(64, persistent=False, name="v")

    def test_word_bounds(self):
        region = AddressSpace().alloc(16, persistent=True)
        assert region.word(3) == region.base + 12
        with pytest.raises(MemoryError_):
            region.word(region.size // 4 + 10)

    def test_free_and_region_of(self):
        space = AddressSpace()
        region = space.alloc(64, persistent=True, name="r")
        assert space.region_of(region.base + 4) == region
        space.free(region)
        assert space.region_of(region.base) is None


class TestBackingStore:
    def test_unwritten_reads_zero(self):
        assert BackingStore().read(PM_BASE) == 0

    def test_visible_vs_durable_separation(self):
        backing = BackingStore()
        backing.write(PM_BASE, 42)
        assert backing.read(PM_BASE) == 42
        assert backing.durable_read(PM_BASE) == 0
        backing.persist({PM_BASE: 42})
        assert backing.durable_read(PM_BASE) == 42

    def test_persist_rejects_volatile(self):
        with pytest.raises(ValueError):
            BackingStore().persist({128: 1})

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            BackingStore().read(PM_BASE + 1)

    def test_load_pm_image_resets_visible(self):
        backing = BackingStore()
        backing.write(100, 5)  # volatile
        backing.load_pm_image({PM_BASE: 9})
        assert backing.read(PM_BASE) == 9
        assert backing.read(100) == 0  # volatile lost


class TestNamespace:
    def test_create_open_roundtrip(self):
        space = AddressSpace()
        table = NamespaceTable(space)
        region = table.create("kv", 256)
        reopened = table.open("kv")
        assert reopened.base == region.base and reopened.size == region.size

    def test_restore_survives_power_cycle(self):
        space = AddressSpace()
        table = NamespaceTable(space)
        region = table.create("kv", 256)
        snapshot = table.export()

        space2 = AddressSpace()
        table2 = NamespaceTable(space2)
        table2.restore(snapshot, space2)
        assert table2.open("kv").base == region.base
        # New allocations must not alias the restored region.
        fresh = space2.alloc(256, persistent=True)
        assert fresh.base >= region.end

    def test_delete(self):
        table = NamespaceTable(AddressSpace())
        table.create("x", 64)
        table.delete("x")
        with pytest.raises(MemoryError_):
            table.open("x")

    def test_pool_open_close(self):
        table = NamespaceTable(AddressSpace())
        pool = PMPool(table)
        pool.create("data", 128)
        assert pool.is_open("data")
        pool.close("data")
        with pytest.raises(MemoryError_):
            pool.get("data")
        pool.open("data")
        assert pool.get("data").size == 128


class TestPersistLog:
    def make(self) -> MemorySubsystem:
        return MemorySubsystem(
            MemoryConfig(), GPUConfig(), BackingStore(), StatsRegistry()
        )

    def test_crash_image_respects_acceptance_time(self):
        sub = self.make()
        addr = PM_BASE
        ack1 = sub.persist_line(0, 0, addr, {addr: 1})
        ack2 = sub.persist_line(ack1.accept_time + 1000, 0, addr, {addr: 2})
        before = sub.crash_image(ack1.accept_time)
        after = sub.crash_image(ack2.accept_time)
        assert before[addr] == 1
        assert after[addr] == 2

    def test_crash_image_includes_host_initialized_durable(self):
        sub = self.make()
        sub.backing.durable[PM_BASE] = 7
        assert sub.crash_image(0.0)[PM_BASE] == 7

"""L1 cache model: lookup, fill, LRU, PM invalidation flavours."""

from repro.memory.cache import CacheLine, L1Cache, TagCache


def make_l1(size=1024, line=128, assoc=2) -> L1Cache:
    return L1Cache("l1", size, line, assoc)


class TestL1Basics:
    def test_miss_then_hit(self):
        l1 = make_l1()
        assert l1.lookup(0) is None
        victim = l1.victim_for(0)
        l1.fill(victim, 0, is_pm=False)
        assert l1.lookup(0) is victim

    def test_line_addr_alignment(self):
        l1 = make_l1()
        assert l1.line_addr(130) == 128
        assert l1.line_addr(128) == 128

    def test_lru_victim_selection(self):
        l1 = make_l1(size=256, line=128, assoc=2)  # one set, two ways
        a, b = 0, 128 * l1.num_sets  # same set
        l1.fill(l1.victim_for(a), a, False, now=1)
        l1.fill(l1.victim_for(b), b, False, now=2)
        l1.lookup(a, now=3)  # a most recently used
        victim = l1.victim_for(256 * l1.num_sets)
        assert victim.tag == b  # b is LRU

    def test_dirty_words_track_local_writes(self):
        line = CacheLine()
        l1 = make_l1()
        l1.fill(line, 0, is_pm=True, words={0: 7, 4: 8})
        line.write_words({4: 99})
        assert line.words == {0: 7, 4: 99}
        assert line.dirty_words == {4: 99}
        assert line.dirty


class TestInvalidation:
    def fill_mixed(self, l1):
        pm_line = l1.victim_for(0)
        l1.fill(pm_line, 0, is_pm=True)
        pm_line.write_words({0: 1})
        clean_pm = l1.victim_for(128)
        l1.fill(clean_pm, 128, is_pm=True)
        vol = l1.victim_for(256)
        l1.fill(vol, 256, is_pm=False)
        return pm_line, clean_pm, vol

    def test_invalidate_clean_pm_keeps_dirty(self):
        l1 = make_l1()
        dirty, clean, vol = self.fill_mixed(l1)
        dropped = l1.invalidate_clean_pm()
        assert dropped == 1
        assert l1.lookup(0) is not None  # dirty PM survives
        assert l1.lookup(128) is None
        assert l1.lookup(256) is not None  # volatile untouched

    def test_invalidate_pm_drops_all_pm(self):
        l1 = make_l1()
        self.fill_mixed(l1)
        assert l1.invalidate_pm() == 2
        assert l1.lookup(256) is not None

    def test_invalidate_all_is_gpm_behaviour(self):
        l1 = make_l1()
        self.fill_mixed(l1)
        assert l1.invalidate_all() == 3
        assert l1.occupancy() == 0

    def test_dirty_pm_lines_enumeration(self):
        l1 = make_l1()
        dirty, _, _ = self.fill_mixed(l1)
        assert l1.dirty_pm_lines() == [dirty]


class TestTagCache:
    def test_hit_after_allocate(self):
        l2 = TagCache("l2", 1024, 128, assoc=2)
        assert not l2.access(0, now=0)
        assert l2.access(0, now=1)

    def test_lru_eviction(self):
        l2 = TagCache("l2", 256, 128, assoc=2)  # 1 set
        step = 128 * l2.num_sets
        l2.access(0, now=0)
        l2.access(step, now=1)
        l2.access(0, now=2)
        l2.access(2 * step, now=3)  # evicts `step`
        assert l2.access(0, now=4)
        assert not l2.access(step, now=5)

    def test_no_allocate_mode(self):
        l2 = TagCache("l2", 1024, 128)
        l2.access(0, now=0, allocate=False)
        assert not l2.access(0, now=1)

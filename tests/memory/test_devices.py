"""Device timing models: bandwidth pipes and the ADR WPQ."""

import pytest

from repro.common.stats import StatsRegistry
from repro.memory.devices import BandwidthChannel, NVMController


class TestBandwidthChannel:
    def test_single_transfer_latency_plus_occupancy(self):
        chan = BandwidthChannel("x", latency=100, bytes_per_cycle=10)
        done = chan.transfer(0, 50)
        assert done == pytest.approx(0 + 5 + 100)

    def test_back_to_back_transfers_pipeline(self):
        chan = BandwidthChannel("x", latency=100, bytes_per_cycle=10)
        first = chan.transfer(0, 100)  # occupies [0, 10)
        second = chan.transfer(0, 100)  # queues behind: [10, 20)
        assert first == pytest.approx(110)
        assert second == pytest.approx(120)

    def test_idle_gap_resets_queueing(self):
        chan = BandwidthChannel("x", latency=10, bytes_per_cycle=10)
        chan.transfer(0, 100)
        late = chan.transfer(1000, 100)
        assert late == pytest.approx(1020)

    def test_stats_recorded(self):
        stats = StatsRegistry()
        chan = BandwidthChannel("pipe", 10, 10, stats)
        chan.transfer(0, 64)
        assert stats.get("pipe.bytes") == 64
        assert stats.get("pipe.transfers") == 1

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            BandwidthChannel("x", 10, 0)


class TestNVMController:
    def make(self, wpq=4) -> NVMController:
        return NVMController(
            "nvm", read_bytes_per_cycle=20, write_bytes_per_cycle=10,
            latency=50, wpq_entries=wpq,
        )

    def test_write_accepts_immediately_with_free_wpq(self):
        nvm = self.make()
        assert nvm.write(0, 100) == pytest.approx(0)

    def test_wpq_backpressure_delays_acceptance(self):
        nvm = self.make(wpq=2)
        # Each write drains in 10 cycles; two slots fill instantly.
        assert nvm.write(0, 100) == 0
        assert nvm.write(0, 100) == 0
        # Third write waits for the first to drain (t=10).
        assert nvm.write(0, 100) == pytest.approx(10)
        # Fourth waits for the second (t=20).
        assert nvm.write(0, 100) == pytest.approx(20)

    def test_acceptance_is_monotonic(self):
        nvm = self.make(wpq=2)
        accepts = [nvm.write(i, 100) for i in range(20)]
        assert accepts == sorted(accepts)

    def test_wpq_drains_over_time(self):
        nvm = self.make(wpq=1)
        nvm.write(0, 100)
        # After the drain completes, acceptance is immediate again.
        assert nvm.write(500, 100) == pytest.approx(500)

    def test_read_uses_read_bandwidth(self):
        nvm = self.make()
        done = nvm.read(0, 200)
        assert done == pytest.approx(0 + 10 + 50)

    def test_reset_clears_state(self):
        nvm = self.make(wpq=1)
        nvm.write(0, 1000)
        nvm.reset()
        assert nvm.write(0, 100) == pytest.approx(0)

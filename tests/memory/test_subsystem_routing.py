"""MemorySubsystem routing: far vs near paths, eADR, L2 behaviour."""

import pytest

from repro.common.config import GPUConfig, MemoryConfig, PMPlacement
from repro.common.stats import StatsRegistry
from repro.memory.address_space import PM_BASE
from repro.memory.backing import BackingStore
from repro.memory.subsystem import MemorySubsystem


def make(placement=PMPlacement.FAR, **over):
    stats = StatsRegistry()
    sub = MemorySubsystem(
        MemoryConfig(placement=placement, **over),
        GPUConfig(),
        BackingStore(),
        stats,
    )
    return sub, stats


VOL = 0
PM = PM_BASE


class TestReadPath:
    def test_l2_hit_is_fast(self):
        sub, _ = make()
        first = sub.fetch_line(0, VOL, is_pm=False)
        second = sub.fetch_line(first, VOL, is_pm=False)
        assert second - first == sub.gpu.l2_latency

    def test_far_pm_read_crosses_pcie_twice(self):
        sub, stats = make(PMPlacement.FAR)
        done = sub.fetch_line(0, PM, is_pm=True)
        # l2 + pcie down + nvm read + pcie up: > 3 link latencies.
        assert done > 3 * sub.config.pcie_latency
        assert stats.get("pcie.transfers") == 1
        assert stats.get("pcie_up.transfers") == 1

    def test_near_pm_read_skips_pcie(self):
        sub, stats = make(PMPlacement.NEAR)
        done = sub.fetch_line(0, PM, is_pm=True)
        assert stats.get("pcie.transfers") == 0
        assert done < 2 * sub.config.pcie_latency + sub.config.nvm_latency

    def test_near_faster_than_far(self):
        far, _ = make(PMPlacement.FAR)
        near, _ = make(PMPlacement.NEAR)
        assert near.fetch_line(0, PM, True) < far.fetch_line(0, PM, True)

    def test_volatile_read_uses_gddr(self):
        sub, stats = make()
        sub.fetch_line(0, VOL, is_pm=False)
        assert stats.get("gddr0.transfers") + stats.get("gddr1.transfers") == 1


class TestPersistPath:
    def test_near_persist_ack_adds_return_hop(self):
        sub, _ = make(PMPlacement.NEAR)
        ack = sub.persist_line(0, 0, PM, {PM: 1})
        assert ack.ack_time == ack.accept_time + sub.gpu.l2_latency

    def test_far_persist_ack_crosses_pcie_back(self):
        sub, _ = make(PMPlacement.FAR)
        ack = sub.persist_line(0, 0, PM, {PM: 1})
        assert ack.ack_time == ack.accept_time + sub.config.pcie_latency

    def test_eadr_accepts_at_host_arrival(self):
        plain, _ = make(PMPlacement.FAR, nvm_bw_scale=0.05)
        eadr, _ = make(PMPlacement.FAR, nvm_bw_scale=0.05, eadr=True)
        # Saturate: with tiny NVM bandwidth the WPQ backs up quickly.
        for i in range(64):
            last_plain = plain.persist_line(0, 0, PM + 128 * i, {PM + 128 * i: 1})
            last_eadr = eadr.persist_line(0, 0, PM + 128 * i, {PM + 128 * i: 1})
        assert last_eadr.accept_time < last_plain.accept_time

    def test_persist_records_logged_in_order(self):
        sub, _ = make()
        for i in range(5):
            sub.persist_line(float(i), 0, PM, {PM: i})
        records = sub.persist_log.records()
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]

    def test_partition_routing_spreads_lines(self):
        sub, stats = make(PMPlacement.NEAR)
        sub.persist_line(0, 0, PM, {PM: 1})
        sub.persist_line(0, 0, PM + 128, {PM + 128: 1})
        assert stats.get("nvm0.writes") == 1
        assert stats.get("nvm1.writes") == 1


class TestBandwidthScaling:
    def test_nvm_bw_scale_changes_drain_rate(self):
        slow, _ = make(PMPlacement.NEAR, nvm_bw_scale=0.1, wpq_entries=1)
        fast, _ = make(PMPlacement.NEAR, nvm_bw_scale=2.0, wpq_entries=1)
        for i in range(8):
            a_slow = slow.persist_line(0, 0, PM, {PM: i})
            a_fast = fast.persist_line(0, 0, PM, {PM: i})
        assert a_fast.accept_time < a_slow.accept_time

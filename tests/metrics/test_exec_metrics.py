"""Exec-layer metrics: outcome counters, error classes, pool retries."""

import os

from repro.common.config import ModelName, PMPlacement, small_system
from repro.exec import Executor, ScenarioJob
from repro.exec.executor import error_class
from repro.exec.pool import (
    STATUS_CRASHED,
    STATUS_ERROR,
    JobOutcome,
    WorkerPool,
)
from repro.metrics import MetricsRegistry

_CFG = small_system(ModelName.SBRP, PMPlacement.NEAR)


def _bad_job():
    # Unknown app name: execute() raises KeyError inside the worker.
    return ScenarioJob(
        app="reduction", config=_CFG, app_params={"no_such_param": 1}
    )


class TestErrorClass:
    def test_parses_plain_exception(self):
        outcome = JobOutcome(
            index=0,
            status=STATUS_ERROR,
            error=(
                "Traceback (most recent call last):\n"
                '  File "x.py", line 1, in f\n'
                "ValueError: bad\n"
            ),
        )
        assert error_class(outcome) == "ValueError"

    def test_strips_module_path(self):
        outcome = JobOutcome(
            index=0,
            status=STATUS_ERROR,
            error="repro.common.errors.ConfigError: nope\n",
        )
        assert error_class(outcome) == "ConfigError"

    def test_non_error_statuses_have_no_class(self):
        outcome = JobOutcome(
            index=0, status=STATUS_CRASHED, error="worker died (exitcode=-9)"
        )
        assert error_class(outcome) is None


class TestExecutorFailureMetrics:
    def test_error_class_counter(self):
        registry = MetricsRegistry()
        ex = Executor(workers=1, metrics=registry)
        ex.submit([_bad_job()], allow_failures=True)
        counters = registry.counters()
        assert counters["exec.failed"] == 1
        assert counters["exec.outcome.error"] == 1
        assert counters["exec.error.TypeError"] == 1

    def test_error_class_matches_across_backends(self):
        serial = MetricsRegistry()
        pooled = MetricsRegistry()
        Executor(workers=1, metrics=serial).submit(
            [_bad_job()], allow_failures=True
        )
        Executor(workers=2, metrics=pooled).submit(
            [_bad_job()], allow_failures=True
        )
        assert serial.counters() == pooled.counters()


def _crash_once(payload):
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        os._exit(13)  # simulate a segfault/OOM kill
    return "recovered"


class TestPoolRetryMetrics:
    def test_retry_counts_and_status(self, tmp_path):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=1, retries=2, backoff=0.01, metrics=registry)
        marker = str(tmp_path / "attempted")
        outcomes = pool.run([{"marker": marker}], _crash_once)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        counters = registry.counters()
        assert counters["exec.pool.retry"] == 1
        assert counters["exec.pool.retry_status.crashed"] == 1

    def test_clean_run_emits_no_pool_metrics(self):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=2, metrics=registry)
        outcomes = pool.run([1, 2], lambda x: x * 2)
        assert [o.value for o in outcomes] == [2, 4]
        assert registry.counters() == {}

    def test_executor_counts_retries_from_attempts(self, monkeypatch):
        # Executor-level exec.retries derives from JobOutcome.attempts,
        # which both backends report; fake a pool outcome that needed a
        # second attempt before succeeding.
        registry = MetricsRegistry()
        ex = Executor(workers=2, metrics=registry)
        job = ScenarioJob(
            app="reduction", config=_CFG, app_params={"blocks": 1}
        )
        reference = Executor(workers=1).run(job)

        def fake_pool(jobs, indices):
            return {
                indices[0]: JobOutcome(
                    index=indices[0],
                    status="ok",
                    value=reference.to_json(),
                    attempts=2,
                )
            }

        monkeypatch.setattr(ex, "_run_pool", fake_pool)
        ex.submit([job])
        assert registry.counter_value("exec.retries") == 1
        assert registry.counter_value("exec.outcome.ok") == 1

"""MetricsRegistry / MetricHistogram unit behaviour."""

import pytest

from repro.metrics import (
    DEFAULT_BOUNDS,
    MetricHistogram,
    MetricsRegistry,
    NULL_METRICS,
)


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("a.b")
        metrics.inc("a.b", 2.5)
        assert metrics.counter_value("a.b") == 3.5

    def test_missing_counter_default(self):
        assert MetricsRegistry().counter_value("nope", 7.0) == 7.0

    def test_counters_copy_is_detached(self):
        metrics = MetricsRegistry()
        metrics.inc("x")
        snap = metrics.counters()
        snap["x"] = 99.0
        assert metrics.counter_value("x") == 1.0


class TestGauges:
    def test_gauge_keeps_latest(self):
        metrics = MetricsRegistry()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", -2.0)
        assert metrics.gauge_value("g") == -2.0


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        metrics = MetricsRegistry(enabled=False)
        metrics.inc("c")
        metrics.gauge("g", 1.0)
        metrics.observe("h", 1.0)
        assert len(metrics) == 0

    def test_null_metrics_is_shared_and_empty(self):
        assert NULL_METRICS.enabled is False
        assert len(NULL_METRICS) == 0

    def test_histogram_container_works_disabled(self):
        # Call sites may cache the instrument even when disabled.
        hist = MetricsRegistry(enabled=False).histogram("h")
        assert hist.count == 0


class TestHistogram:
    def test_default_bounds_end_in_inf(self):
        assert DEFAULT_BOUNDS[-1] == float("inf")

    def test_bounds_must_end_in_inf(self):
        with pytest.raises(ValueError):
            MetricHistogram(bounds=(1.0, 2.0))

    def test_exact_count_sum_min_max(self):
        hist = MetricHistogram()
        for value in (3.0, 1.0, 10.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 14.0
        assert hist.min == 1.0
        assert hist.max == 10.0
        assert hist.mean == pytest.approx(14.0 / 3)

    def test_single_value_percentiles_are_that_value(self):
        hist = MetricHistogram()
        hist.observe(5.0)
        for q in (0.5, 0.95, 0.99):
            assert hist.percentile(q) == pytest.approx(5.0)

    def test_percentiles_monotone_and_within_range(self):
        hist = MetricHistogram()
        for value in range(1, 101):
            hist.observe(float(value))
        p50, p95, p99 = (
            hist.percentile(0.50),
            hist.percentile(0.95),
            hist.percentile(0.99),
        )
        assert 1.0 <= p50 <= p95 <= p99 <= 100.0
        assert p50 == pytest.approx(50.0, rel=0.35)

    def test_empty_summary(self):
        assert MetricHistogram().summary() == {"count": 0}

    def test_summary_keys(self):
        hist = MetricHistogram()
        hist.observe(2.0)
        assert set(hist.summary()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }

    def test_bucket_counts_cumulative(self):
        hist = MetricHistogram(bounds=(1.0, 4.0, float("inf")))
        for value in (0.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts() == [
            (1.0, 1), (4.0, 2), (float("inf"), 3),
        ]

    def test_observe_via_registry(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 7.0)
        metrics.observe("lat", 9.0)
        assert metrics.histograms()["lat"].count == 2

    def test_reset_clears_everything(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.gauge("g", 1.0)
        metrics.observe("h", 1.0)
        metrics.reset()
        assert len(metrics) == 0

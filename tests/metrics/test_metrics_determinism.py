"""The two observability invariants CI relies on.

* metrics-on runs are **cycle-identical** to metrics-off runs — the
  registry is a pure observer;
* exec-layer snapshots are **byte-identical** across worker counts —
  only deterministic quantities are recorded.
"""

from repro import GPUSystem, ModelName, PMPlacement, small_system
from repro.apps import build_app
from repro.exec import Executor, ScenarioJob
from repro.metrics import MetricsRegistry, snapshot_json

_PARAMS = {"blocks": 2, "per_thread": 1}


def _run(model, metrics):
    system = GPUSystem(small_system(model), metrics=metrics)
    app = build_app("reduction", **_PARAMS)
    app.setup(system)
    app.run(system)
    system.sync()
    return system


class TestCycleIdentity:
    def test_metrics_do_not_change_timing(self, model):
        plain = _run(model, metrics=False)
        metered = _run(model, metrics=True)
        assert metered.now == plain.now
        assert dict(metered.stats.snapshot()) == dict(plain.stats.snapshot())
        assert len(plain.metrics) == 0
        assert len(metered.metrics) > 0

    def test_metered_run_repeats_identically(self):
        first = _run(ModelName.SBRP, metrics=True)
        second = _run(ModelName.SBRP, metrics=True)
        assert snapshot_json(first.metrics, first.stats) == snapshot_json(
            second.metrics, second.stats
        )


class TestSimulationMetricsContent:
    def test_core_instruments_populated(self):
        system = _run(ModelName.SBRP, metrics=True)
        counters = system.metrics.counters()
        assert counters["persist.lines"] == system.stat("persist.lines")
        assert counters["sm.warps_retired"] > 0
        assert counters["sbrp.drained_persists"] > 0
        assert system.metrics.gauge_value("engine.now") == system.now
        hists = system.metrics.histograms()
        assert hists["sbrp.pb_occupancy"].count > 0
        assert hists["persist.accept_latency"].count > 0

    def test_epoch_barrier_histogram(self):
        system = _run(ModelName.EPOCH, metrics=True)
        hist = system.metrics.histograms()["epoch.barrier_wait"]
        assert hist.count == system.stat("epoch.barriers")
        assert hist.count > 0

    def test_snapshot_facade_merges_stats(self):
        system = _run(ModelName.SBRP, metrics=True)
        snap = system.metrics_snapshot()
        # One path serves both registries: simulator stats counters and
        # live metric counters land in the same section.
        assert "l1.write_miss_pm" in snap["counters"]
        assert "persist.flushes" in snap["counters"]


def _jobs():
    config = small_system(ModelName.SBRP, PMPlacement.NEAR)
    config_far = small_system(ModelName.SBRP, PMPlacement.FAR)
    job = ScenarioJob(app="reduction", config=config, app_params=_PARAMS)
    other = ScenarioJob(app="reduction", config=config_far, app_params=_PARAMS)
    return [job, other, job]  # duplicate exercises the memo counters


class TestWorkerCountByteIdentity:
    def test_snapshot_identical_serial_vs_pool(self):
        serial = MetricsRegistry()
        pooled = MetricsRegistry()
        Executor(workers=1, metrics=serial).submit(_jobs())
        Executor(workers=2, metrics=pooled).submit(_jobs())
        assert snapshot_json(serial) == snapshot_json(pooled)
        assert serial.counter_value("exec.submitted") == 3
        assert serial.counter_value("exec.memo_hits") == 1
        assert serial.counter_value("exec.executed") == 2

    def test_cache_hits_counted_identically(self, tmp_path):
        results = {}
        for workers in (1, 2):
            registry = MetricsRegistry()
            root = str(tmp_path / f"w{workers}")
            Executor(workers=workers, cache=root, metrics=registry).submit(
                _jobs()
            )
            warm = Executor(workers=workers, cache=root, metrics=registry)
            warm.submit(_jobs())
            results[workers] = snapshot_json(registry)
        assert results[1] == results[2]

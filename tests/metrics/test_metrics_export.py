"""Snapshot and Prometheus exporters."""

import json

from repro.common.stats import StatsRegistry, histogram_summary
from repro.metrics import (
    MetricsRegistry,
    build_snapshot,
    prometheus_text,
    snapshot_json,
)


def _populated():
    metrics = MetricsRegistry()
    metrics.inc("zeta.count", 2)
    metrics.inc("alpha.count")
    metrics.gauge("engine.now", 123.0)
    metrics.observe("persist.lat", 4.0)
    metrics.observe("persist.lat", 6.0)
    return metrics


class TestSnapshot:
    def test_sections_and_sorting(self):
        snap = build_snapshot(_populated())
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["alpha.count", "zeta.count"]
        assert snap["gauges"] == {"engine.now": 123.0}
        assert snap["histograms"]["persist.lat"]["count"] == 2

    def test_stats_merge_metrics_win_collisions(self):
        stats = StatsRegistry()
        stats.add("shared", 1.0)
        stats.add("stats.only", 5.0)
        metrics = MetricsRegistry()
        metrics.inc("shared", 10.0)
        snap = build_snapshot(metrics, stats)
        assert snap["counters"]["shared"] == 10.0
        assert snap["counters"]["stats.only"] == 5.0

    def test_json_is_sorted_and_round_trips(self):
        text = snapshot_json(_populated())
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert json.dumps(parsed, indent=2, sort_keys=True) + "\n" == text

    def test_empty_registry_snapshot(self):
        snap = build_snapshot(MetricsRegistry())
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = prometheus_text(_populated())
        assert "# TYPE repro_alpha_count_total counter" in text
        assert "repro_alpha_count_total 1" in text
        assert "# TYPE repro_engine_now gauge" in text
        assert "repro_engine_now 123" in text

    def test_histogram_exposition(self):
        text = prometheus_text(_populated())
        assert 'repro_persist_lat_bucket{le="+Inf"} 2' in text
        assert "repro_persist_lat_sum 10" in text
        assert "repro_persist_lat_count 2" in text

    def test_stats_counters_included(self):
        stats = StatsRegistry()
        stats.add("l1.read_miss", 3.0)
        text = prometheus_text(MetricsRegistry(), stats)
        assert "repro_l1_read_miss_total 3" in text

    def test_dotted_names_sanitized(self):
        text = prometheus_text(_populated())
        assert "alpha.count" not in text


class TestHistogramSummaryHelper:
    def test_matches_metric_histogram(self):
        summary = histogram_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert 1.0 <= summary["p50"] <= summary["p95"] <= summary["p99"] <= 4.0

    def test_empty_values(self):
        assert histogram_summary([]) == {"count": 0}

"""Workload generator: determinism, skew, write combining."""

import pytest

from repro.serve.workload import (
    MIXES,
    OP_INSERT,
    WorkloadSpec,
    plan_workload,
)

SMALL = dict(n_requests=96, n_keys=64, capacity=160, batch_requests=32)


class TestDeterminism:
    def test_same_spec_same_digest(self):
        a = plan_workload(WorkloadSpec(seed=11, **SMALL))
        b = plan_workload(WorkloadSpec(seed=11, **SMALL))
        assert a.digest() == b.digest()

    def test_seed_changes_stream(self):
        a = plan_workload(WorkloadSpec(seed=11, **SMALL))
        b = plan_workload(WorkloadSpec(seed=12, **SMALL))
        assert a.digest() != b.digest()

    def test_every_mix_plans(self):
        for mix in MIXES:
            plan = plan_workload(WorkloadSpec(mix=mix, **SMALL))
            assert len(plan.requests) == SMALL["n_requests"]

    def test_arrivals_are_monotone(self):
        plan = plan_workload(WorkloadSpec(**SMALL))
        arrivals = [r.arrival for r in plan.requests]
        assert arrivals == sorted(arrivals)


class TestSkew:
    def test_zipfian_concentrates_mass_on_hot_keys(self):
        spec = dict(SMALL, n_requests=512)
        zipf = plan_workload(WorkloadSpec(popularity="zipfian", **spec))
        uni = plan_workload(WorkloadSpec(popularity="uniform", **spec))

        def top4_mass(plan):
            counts = {}
            for r in plan.requests:
                if r.op != OP_INSERT:
                    counts[r.key] = counts.get(r.key, 0) + 1
            total = sum(counts.values())
            return sum(sorted(counts.values())[-4:]) / total

        assert top4_mass(zipf) > 2 * top4_mass(uni)
        assert top4_mass(zipf) > 0.3


class TestWriteCombining:
    def test_one_applier_per_key_per_batch(self):
        plan = plan_workload(WorkloadSpec(**SMALL))
        for batch in plan.batches:
            appliers = {}
            for r in batch.requests:
                if r.is_applying_write:
                    assert r.key not in appliers
                    appliers[r.key] = r
                if r.is_write:
                    # the applier carries the batch-max version per key
                    assert r.version <= max(
                        q.version
                        for q in batch.requests
                        if q.is_write and q.key == r.key
                    )
            for key, req in appliers.items():
                versions = [
                    q.version
                    for q in batch.requests
                    if q.is_write and q.key == key
                ]
                assert req.version == max(versions)

    def test_versions_sequence_per_key(self):
        plan = plan_workload(WorkloadSpec(**SMALL))
        seen = {}
        for r in sorted(plan.requests, key=lambda r: r.index):
            if r.is_write:
                assert r.version == seen.get(r.key, 0) + 1
                seen[r.key] = r.version
        assert seen == plan.final_versions

    def test_hot_zipfian_keys_do_get_combined(self):
        plan = plan_workload(WorkloadSpec(**SMALL))
        assert any(r.is_write and not r.applies for r in plan.requests)

    def test_batch_orders_appliers_by_size(self):
        plan = plan_workload(WorkloadSpec(**SMALL))
        for batch in plan.batches:
            ranks = [
                (1, r.payload) if r.is_applying_write else (0, 0)
                for r in batch.requests
            ]
            assert ranks == sorted(ranks)


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(mix="bogus"),
            dict(popularity="bogus"),
            dict(arrival="bogus"),
            dict(n_keys=0),
            dict(n_keys=999, capacity=160),
            dict(rate_per_kcycle=0.0),
            dict(payload_small=9, payload_large=8),
        ],
    )
    def test_bad_specs_rejected(self, bad):
        spec = dict(SMALL)
        spec.update(bad)
        with pytest.raises(ValueError):
            WorkloadSpec(**spec).validate()

"""Durable transaction layer: path selection, crash safety, and the
adaptive-beats-forced ablation the serving subsystem exists to show."""

import pytest

from repro.apps import build_app
from repro.common.config import ModelName, small_system
from repro.crash import CrashHarness
from repro.serve.txn import (
    DEFAULT_THRESHOLD_WORDS,
    PATH_DIRECT,
    PATH_PB,
    POLICY_ADAPTIVE,
    POLICY_FORCED_DIRECT,
    POLICY_FORCED_PB,
    select_path,
    txn_size_words,
)
from repro.system import GPUSystem

#: CI-sized stream (the bench smoke params).
SMALL = dict(n_requests=96, n_keys=96, capacity=256, batch_requests=48)


class TestSelectPath:
    def test_adaptive_splits_on_transaction_size(self):
        small = DEFAULT_THRESHOLD_WORDS - txn_size_words(0) - 1
        large = DEFAULT_THRESHOLD_WORDS - txn_size_words(0) + 1
        assert select_path(POLICY_ADAPTIVE, small) == PATH_PB
        assert select_path(POLICY_ADAPTIVE, large) == PATH_DIRECT

    def test_forced_policies_ignore_size(self):
        for payload in (0, 2, 8, 64):
            assert select_path(POLICY_FORCED_PB, payload) == PATH_PB
            assert select_path(POLICY_FORCED_DIRECT, payload) == PATH_DIRECT

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            select_path("bogus", 2)
        with pytest.raises(ValueError):
            build_app("serve_kvs", policy="bogus", **SMALL)


def run_stream(model, params=SMALL, **overrides):
    params = dict(params, **overrides)
    system = GPUSystem(small_system(model))
    app = build_app("serve_kvs", **params)
    app.setup(system)
    outcome = app.run(system)
    system.sync()
    app.check(system, complete=True)
    return app, outcome


class TestCleanRuns:
    @pytest.mark.parametrize(
        "model", [ModelName.SBRP, ModelName.GPM, ModelName.EPOCH]
    )
    def test_stream_serves_and_verifies(self, model):
        app, outcome = run_stream(model)
        assert outcome.cycles > 0
        paths = app.path_counts()
        assert paths["pb"] > 0 and paths["direct"] > 0

    def test_forced_paths_route_everything_one_way(self):
        app, _ = run_stream(ModelName.SBRP, policy=POLICY_FORCED_PB)
        assert app.path_counts()["direct"] == 0
        app, _ = run_stream(ModelName.SBRP, policy=POLICY_FORCED_DIRECT)
        assert app.path_counts()["pb"] == 0


class TestCrashSafety:
    @pytest.mark.parametrize(
        "model", [ModelName.SBRP, ModelName.GPM, ModelName.EPOCH]
    )
    def test_every_crash_point_recovers_consistent(self, model):
        harness = CrashHarness(
            lambda: build_app("serve_kvs", **SMALL), small_system(model)
        )
        for report in harness.sweep(points=6, complete=False):
            assert report.consistent, report.error

    def test_early_commit_bug_defeats_recovery(self):
        harness = CrashHarness(
            lambda: build_app(
                "serve_kvs", seeded_bug="early_commit", **SMALL
            ),
            small_system(ModelName.SBRP),
        )
        reports = harness.crash_at_every_persist(limit=12)
        assert any(not report.consistent for report in reports)


class TestAdaptiveAblation:
    """The acceptance bar: on the default mixed-size stream under SBRP,
    adaptive path selection must measurably beat the forced-PB
    baseline (buffering large payloads poisons the SM-wide dfence
    drain; writing them through sheds that exposure)."""

    def test_adaptive_beats_forced_pb_under_sbrp(self):
        # The app's defaults ARE the paper config: 256-request zipfian
        # rmw_heavy stream, mixed payload sizes, 128-request batches.
        _, adaptive = run_stream(
            ModelName.SBRP, params={}, policy=POLICY_ADAPTIVE
        )
        _, forced = run_stream(
            ModelName.SBRP, params={}, policy=POLICY_FORCED_PB
        )
        assert adaptive.cycles < 0.97 * forced.cycles

"""Recovery under load: fractional crash points through the serving
stream, plus crash safety of the resilience layer's degraded launch
shapes (path-policy override and throttled split launches)."""

import pytest

from repro.apps import build_app
from repro.common.config import ModelName, small_system
from repro.crash import CrashHarness
from repro.serve.txn import POLICY_FORCED_DIRECT, POLICY_FORCED_PB
from repro.system import GPUSystem

#: Small batches so crashes land between several group commits.
SMALL = dict(n_requests=96, n_keys=96, capacity=256, batch_requests=24)


def harness(model=ModelName.SBRP):
    return CrashHarness(
        lambda: build_app("serve_kvs", **SMALL), small_system(model)
    )


class TestFractionalCrashPoints:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75])
    @pytest.mark.parametrize(
        "model", [ModelName.SBRP, ModelName.GPM, ModelName.EPOCH]
    )
    def test_partial_executions_recover_consistent(self, model, fraction):
        report = harness(model).crash_at_fraction(fraction, complete=False)
        assert report.consistent, report.error

    def test_crash_after_sync_is_complete(self):
        # Fraction 1.0 crashes after the final sync: every write is
        # durable, so recovery must land on the *complete* table.
        report = harness().crash_at_fraction(1.0, complete=True)
        assert report.consistent, report.error
        assert report.completed, report.error

    def test_recovery_makes_forward_progress(self):
        # Re-running the stream from a mid-flight image must finish it.
        report = harness().crash_at_fraction(0.5, complete=True)
        assert report.consistent, report.error
        assert report.completed, report.error


class TestDegradedLaunchShapes:
    """serve_batch's policy/split levers keep the crash guarantees."""

    def _run_batches(self, policy=None, split=1):
        system = GPUSystem(small_system(ModelName.SBRP))
        app = build_app("serve_kvs", **SMALL)
        app.setup(system)
        for index in range(len(app.plan.batches)):
            app.serve_batch(system, index, policy=policy, split=split)
        return system, app

    @pytest.mark.parametrize(
        "policy,split",
        [
            (None, 2),
            (POLICY_FORCED_PB, 1),
            (POLICY_FORCED_DIRECT, 2),
            (POLICY_FORCED_PB, 3),
        ],
    )
    def test_clean_run_verifies(self, policy, split):
        system, app = self._run_batches(policy=policy, split=split)
        system.sync()
        app.check(system, complete=True)

    @pytest.mark.parametrize("policy", [POLICY_FORCED_PB, POLICY_FORCED_DIRECT])
    def test_mid_run_crash_recovers_consistent(self, policy):
        system, app = self._run_batches(policy=policy, split=2)
        image = system.crash(at=0.5 * system.now)
        rebooted = GPUSystem(small_system(ModelName.SBRP), pm_image=image)
        fresh = build_app("serve_kvs", **SMALL)
        fresh.reopen(rebooted)
        fresh.recover(rebooted)
        rebooted.sync()
        fresh.check(rebooted, complete=False)

    def test_default_shape_matches_run(self):
        # serve_batch at defaults is the planned group commit: same end
        # time as app.run on an identical machine.
        via_batches, _ = self._run_batches()
        system = GPUSystem(small_system(ModelName.SBRP))
        app = build_app("serve_kvs", **SMALL)
        app.setup(system)
        app.run(system)
        assert via_batches.now == system.now

    def test_bad_policy_rejected(self):
        system = GPUSystem(small_system(ModelName.SBRP))
        app = build_app("serve_kvs", **SMALL)
        app.setup(system)
        with pytest.raises(ValueError):
            app.serve_batch(system, 0, policy="bogus")

"""``python -m repro.serve.bench``: grid coverage and determinism."""

import json

import pytest

import repro.serve.bench as bench
from repro.serve.txn import POLICIES


@pytest.fixture(scope="module")
def smoke_doc(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("serve-bench")
    out = tmp_path / "serve_smoke.json"
    assert bench.main(["--smoke", "--out", str(out), "--quiet"]) == 0
    return out.read_bytes(), json.loads(out.read_text())


class TestReport:
    def test_grid_covers_models_x_policies(self, smoke_doc):
        _, doc = smoke_doc
        labels = {"GPM", "EPOCH-far", "SBRP-far"}
        expected = {
            f"{label}/{policy}" for label in labels for policy in POLICIES
        }
        assert set(doc["cells"]) == expected
        assert set(doc["summary"]) == labels

    def test_cells_carry_slo_stats(self, smoke_doc):
        _, doc = smoke_doc
        for cell in doc["cells"].values():
            assert cell["serve.throughput_rps"] > 0
            assert cell["serve.latency_p99"] >= cell["serve.latency_p50"] > 0
            assert cell["serve.recovery_cycles"] > 0
            assert cell["cycles"] > 0

    def test_summary_has_both_forced_ratios(self, smoke_doc):
        _, doc = smoke_doc
        for ratios in doc["summary"].values():
            assert set(ratios) == {
                "adaptive_vs_forced_pb",
                "adaptive_vs_forced_direct",
            }
            assert all(r > 0 for r in ratios.values())

    def test_report_is_sorted_json(self, smoke_doc):
        raw, doc = smoke_doc
        assert json.dumps(doc, indent=2, sort_keys=True) + "\n" == raw.decode()


class TestDeterminism:
    def test_byte_identical_across_worker_counts(self, tmp_path):
        one = tmp_path / "w1.json"
        two = tmp_path / "w2.json"
        assert bench.main(["--smoke", "--out", str(one), "--quiet"]) == 0
        assert bench.main(
            ["--smoke", "--workers", "2", "--out", str(two), "--quiet"]
        ) == 0
        assert one.read_bytes() == two.read_bytes()

"""The litmus fuzzer: determinism, validity, and shape bounds."""

from repro.check.corpus import corpus_programs
from repro.check.fuzzer import generate_program, generate_stream
from repro.formal.events import EventKind


def test_same_seed_same_program():
    a = generate_program(7, 3)
    b = generate_program(7, 3)
    assert a.to_json() == b.to_json()


def test_different_indices_differ():
    stream = generate_stream(7, 20)
    shapes = {tuple(tuple(e.kind for e in t.events) for t in p.threads)
              for p in stream}
    assert len(shapes) > 1


def test_every_program_has_a_persist():
    for program in generate_stream(11, 50):
        kinds = [e.kind for t in program.threads for e in t.events]
        assert EventKind.W in kinds
        assert any(
            e.kind is EventKind.W and e.is_persist
            for t in program.threads
            for e in t.events
        )


def test_programs_round_trip_through_json():
    from repro.formal.events import LitmusProgram

    for program in generate_stream(3, 10):
        clone = LitmusProgram.from_json(program.to_json())
        assert clone.to_json() == program.to_json()


def test_acquires_only_pair_with_earlier_releases():
    for program in generate_stream(5, 40):
        releases = {}
        for tid, thread in enumerate(program.threads):
            for event in thread.events:
                if event.kind is EventKind.PREL:
                    releases.setdefault(event.loc, tid)
        for tid, thread in enumerate(program.threads):
            for event in thread.events:
                if event.kind is EventKind.PACQ:
                    assert event.loc in releases
                    assert releases[event.loc] < tid


def test_corpus_is_stable_and_valid():
    first = [p.to_json() for p in corpus_programs()]
    second = [p.to_json() for p in corpus_programs()]
    assert first == second
    assert len(first) >= 10
    names = [p["name"] for p in first]
    assert len(names) == len(set(names))

"""Mutation teeth: shipped SBRP mutants must be caught and shrink small."""

import pytest

from repro.check.corpus import corpus_programs
from repro.check.enumerator import variants_by_name
from repro.check.mutants import MUTANTS, build_mutant, describe_mutants, mutant_names
from repro.check.oracle import check_program
from repro.check.shrink import regression_snippet, shrink_program
from repro.common.config import ModelName
from repro.common.errors import ConfigError
from repro.persistency.sbrp.model import SBRPModel


def mp_program():
    return next(p for p in corpus_programs() if p.name == "mp_ofence_split")


class TestRegistry:
    def test_all_mutants_subclass_sbrp(self):
        for cls in MUTANTS.values():
            assert issubclass(cls, SBRPModel)

    def test_build_mutant_rejects_unknown(self):
        with pytest.raises(ConfigError):
            build_mutant("no_such_mutant")

    def test_names_and_blurbs(self):
        assert mutant_names() == sorted(MUTANTS)
        blurbs = describe_mutants()
        assert set(blurbs) == set(MUTANTS)
        assert all(blurbs.values())


class TestCatch:
    def test_ack_without_flush_caught_on_base_variant(self):
        """Acks without writing NVM: the final-completeness check flags
        it on every variant, so the cheapest one suffices."""
        report = check_program(
            mp_program(),
            ModelName.SBRP,
            variants_by_name(["base"]),
            mutant="ack_without_flush",
        )
        assert report["violations"] > 0
        types = {
            v["type"]
            for vr in report["variants"]
            for v in vr["violations"]
        }
        assert "final" in types or "soundness" in types

    def test_pb_lifo_drain_caught_under_window1(self):
        report = check_program(
            mp_program(),
            ModelName.SBRP,
            variants_by_name(["window1"]),
            mutant="pb_lifo_drain",
        )
        assert report["violations"] > 0


class TestShrink:
    def test_shrunk_counterexample_is_small_and_still_fails(self):
        variants = variants_by_name(["base"])

        def still_fails(candidate):
            report = check_program(
                candidate, ModelName.SBRP, variants, mutant="ack_without_flush"
            )
            return report["violations"] > 0

        program = mp_program()
        assert still_fails(program)
        shrunk = shrink_program(program, still_fails)
        assert shrunk.op_count() <= program.op_count()
        assert shrunk.op_count() <= 6
        assert still_fails(shrunk)

    def test_regression_snippet_is_executable_python(self):
        snippet = regression_snippet(
            mp_program(), "sbrp", "ack_without_flush", ["base"]
        )
        assert "def test_conformance_regression_ack_without_flush" in snippet
        assert 'assert report["violations"] > 0' in snippet
        compile(snippet, "<snippet>", "exec")

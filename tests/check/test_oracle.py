"""The differential oracle: stock models pass, image checks have teeth."""

import pytest

from repro.check.corpus import corpus_programs
from repro.check.enumerator import SMOKE_VARIANTS, VARIANTS, Variant, variants_by_name
from repro.check.oracle import allowed_unconstrained, check_program, failing_variants
from repro.common.config import ModelName, Scope
from repro.common.errors import ConfigError
from repro.formal.events import LitmusProgram


def mp_program():
    return next(p for p in corpus_programs() if p.name == "mp_ofence_split")


class TestAllowedUnconstrained:
    def test_empty_image_always_allowed(self):
        allowed = allowed_unconstrained(mp_program())
        assert () in allowed

    def test_full_final_image_allowed(self):
        program = mp_program()
        allowed = allowed_unconstrained(program)
        full = tuple(
            sorted(
                (e.loc, e.value)
                for e in program.events()
                if e.is_persist
            )
        )
        assert full in allowed

    def test_unwritten_value_not_allowed(self):
        allowed = allowed_unconstrained(mp_program())
        assert (("pA", 999),) not in allowed


class TestStockConformance:
    @pytest.mark.parametrize("model", [ModelName.SBRP, ModelName.GPM])
    def test_corpus_program_has_no_violations(self, model):
        report = check_program(mp_program(), model, SMOKE_VARIANTS)
        assert report["violations"] == 0
        assert failing_variants(report) == []

    def test_report_shape(self):
        report = check_program(mp_program(), ModelName.SBRP, [VARIANTS[0]])
        assert report["program"] == "mp_ofence_split"
        assert report["model"] == "sbrp"
        assert report["mutant"] is None
        assert [v["variant"] for v in report["variants"]] == ["base"]
        assert 0 < report["coverage"]["observed_allowed"]
        assert report["coverage"]["observed_allowed"] <= report["coverage"]["allowed"]


class TestVariants:
    def test_round_trip(self):
        for variant in VARIANTS:
            assert Variant.from_json(variant.to_json()) == variant

    def test_names_unique(self):
        names = [v.name for v in VARIANTS]
        assert len(names) == len(set(names))

    def test_variants_by_name_rejects_unknown(self):
        with pytest.raises(ConfigError):
            variants_by_name(["no_such_variant"])

    def test_congested_variant_overrides_memory(self):
        congested = variants_by_name(["congested"])[0]
        config = congested.configure(mp_program(), ModelName.SBRP)
        assert config.memory.wpq_entries == 1
        assert config.memory.nvm_bw_scale == 0.02

    def test_reversed_variant_flips_thread_order(self):
        reversed_ = variants_by_name(["reversed"])[0]
        program = mp_program()
        order = reversed_.thread_order(program)
        assert order == list(reversed(range(len(program.threads))))
        assert variants_by_name(["base"])[0].thread_order(program) is None

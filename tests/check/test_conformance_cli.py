"""The conformance CLI and its MODE_CHECK job plumbing."""

import json

import pytest

from repro.check.conformance import main
from repro.check.enumerator import SMOKE_VARIANTS
from repro.check.fuzzer import generate_stream
from repro.common.config import ModelName, small_system
from repro.common.errors import ConfigError
from repro.exec import MODE_CHECK, ScenarioJob


def make_check_job(mutant=None):
    programs = generate_stream(3, 2)
    return ScenarioJob(
        app="conformance",
        config=small_system(ModelName.SBRP),
        mode=MODE_CHECK,
        verify=False,
        check={
            "programs": [p.to_json() for p in programs],
            "model": "sbrp",
            "mutant": mutant,
            "variants": [v.to_json() for v in SMOKE_VARIANTS[:1]],
            "crash_points": 16,
        },
    )


class TestCheckJobs:
    def test_check_payload_required_for_mode(self):
        with pytest.raises(ConfigError):
            ScenarioJob(
                app="conformance",
                config=small_system(ModelName.SBRP),
                mode=MODE_CHECK,
            )
        with pytest.raises(ConfigError):
            ScenarioJob(
                app="conformance",
                config=small_system(ModelName.SBRP),
                check={"programs": []},
            )

    def test_job_round_trips_and_hashes_stably(self):
        job = make_check_job()
        clone = ScenarioJob.from_json(job.to_json())
        assert clone.spec_hash == job.spec_hash
        assert clone.check == job.check

    def test_label_carries_the_mutant(self):
        assert "[ofence_noop]" in make_check_job(mutant="ofence_noop").label
        assert "[check]" in make_check_job().label

    def test_execute_returns_per_program_reports(self):
        result = make_check_job().execute()
        assert result.app == "conformance"
        assert result.stats["check.programs"] == 2
        assert result.stats["check.violations"] == 0
        assert len(result.detail["programs"]) == 2


class TestCli:
    def test_list_mutants(self, capsys):
        assert main(["--list-mutants"]) == 0
        out = capsys.readouterr().out
        assert "ack_without_flush" in out and "pb_lifo_drain" in out

    def test_tiny_stock_run_exits_zero(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "--smoke", "--programs", "2", "--mutants", "none",
                "--models", "sbrp", "--out", str(out), "--quiet",
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["summary"]["stock_violations"] == 0
        assert report["models"]["sbrp"]["programs"] == report[
            "corpus_programs"
        ] + 2

    def test_report_worker_independent(self, tmp_path):
        args = [
            "--smoke", "--programs", "2", "--mutants", "ack_without_flush",
            "--mutant-programs", "0", "--models", "sbrp", "--no-shrink",
            "--quiet",
        ]
        paths = []
        for workers in ("1", "2"):
            out = tmp_path / f"w{workers}.json"
            code = main(args + ["--workers", workers, "--out", str(out)])
            assert code == 0
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_mutant_is_caught_and_shrunk(self, tmp_path):
        out = tmp_path / "mutant.json"
        code = main(
            [
                "--smoke", "--programs", "0", "--mutant-programs", "0",
                "--models", "sbrp", "--mutants", "ack_without_flush",
                "--out", str(out), "--quiet",
            ]
        )
        assert code == 0
        entry = json.loads(out.read_text())["mutants"]["ack_without_flush"]
        assert entry["caught"]
        assert entry["shrunk_ops"] <= 6
        assert "def test_conformance_regression" in entry["regression_test"]

"""Failure injection beyond single crashes: crash during recovery, and
randomized crash points (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GPUSystem, ModelName, small_system
from repro.apps import build_app
from repro.common.errors import RecoveryError

PARAMS = dict(n_pairs=256, capacity=512, rounds=2)


def fresh_run(model=ModelName.SBRP):
    system = GPUSystem(small_system(model))
    app = build_app("gpkvs", **PARAMS)
    app.setup(system)
    app.run(system)
    system.sync()
    return system, app


class TestCrashDuringRecovery:
    @pytest.mark.parametrize(
        "model", [ModelName.SBRP, ModelName.EPOCH], ids=lambda m: m.value
    )
    def test_double_crash_still_recovers(self, model):
        """Crash mid-run, then crash again mid-RECOVERY: the recovery
        kernel's own dFence discipline must make it re-runnable."""
        system, app = fresh_run(model)
        image1 = system.crash(at=system.now * 0.4)

        # Boot, start recovery, crash again midway through it.
        boot1 = GPUSystem(small_system(model), pm_image=image1)
        app1 = build_app("gpkvs", **PARAMS)
        app1.reopen(boot1)
        start = boot1.now
        app1.recover(boot1)
        boot1.sync()
        mid_recovery = start + (boot1.now - start) * 0.5
        image2 = boot1.crash(at=mid_recovery)

        # Second reboot: recovery must complete from the half-recovered
        # image and leave a consistent table.
        boot2 = GPUSystem(small_system(model), pm_image=image2)
        app2 = build_app("gpkvs", **PARAMS)
        app2.reopen(boot2)
        app2.recover(boot2)
        boot2.sync()
        app2.check(boot2, complete=False)

        # And the batch still completes.
        app2.run(boot2)
        boot2.sync()
        app2.check(boot2, complete=True)


class TestRandomizedCrashPoints:
    @given(fraction=st.floats(0.0, 1.0))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_crash_point_is_recoverable(self, fraction):
        system, app = fresh_run()
        image = system.crash(at=system.now * fraction)
        boot = GPUSystem(small_system(ModelName.SBRP), pm_image=image)
        app2 = build_app("gpkvs", **PARAMS)
        app2.reopen(boot)
        app2.recover(boot)
        boot.sync()
        app2.check(boot, complete=False)


class TestTornCrashChains:
    """Crash -> recover -> crash again, with every crash image torn
    (the last in-flight line loses words): the logging protocols must
    survive repeated torn failures under every model."""

    def chain(self, model):
        from repro.faults import FaultInjector, TornPersistPlan

        def injector():
            return FaultInjector(TornPersistPlan(span_cycles=500.0))

        system = GPUSystem(small_system(model), faults=injector())
        app = build_app("gpkvs", **PARAMS)
        app.setup(system)
        app.run(system)
        system.sync()
        image1 = system.crash(at=system.now * 0.5)

        # Reboot with the injector still attached: the *rerun* after
        # recovery crashes torn as well.
        boot1 = GPUSystem(small_system(model), pm_image=image1, faults=injector())
        app1 = build_app("gpkvs", **PARAMS)
        app1.reopen(boot1)
        app1.recover(boot1)
        boot1.sync()
        app1.check(boot1, complete=False)
        app1.run(boot1)
        boot1.sync()
        image2 = boot1.crash(at=boot1.now * 0.75)

        # Final reboot on clean hardware: recover and finish the batch.
        boot2 = GPUSystem(small_system(model), pm_image=image2)
        app2 = build_app("gpkvs", **PARAMS)
        app2.reopen(boot2)
        app2.recover(boot2)
        boot2.sync()
        app2.check(boot2, complete=False)
        app2.run(boot2)
        boot2.sync()
        app2.check(boot2, complete=True)

    @pytest.mark.parametrize(
        "model", [ModelName.SBRP, ModelName.EPOCH, ModelName.GPM],
        ids=lambda m: m.value,
    )
    def test_double_torn_crash_chain(self, model):
        self.chain(model)

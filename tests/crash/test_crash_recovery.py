"""Crash-recovery round trips: every app, every model, many instants."""

import pytest

from repro import GPUSystem, ModelName, Scope, small_system
from repro.apps import APPS, build_app
from repro.crash import CrashHarness

SIZES = {
    "gpkvs": dict(n_pairs=512, capacity=1024, rounds=2),
    "hashmap": dict(n_inserts=512, capacity=1024, rounds=2),
    "srad": dict(side=24),
    "reduction": dict(blocks=3, per_thread=2),
    "multiqueue": dict(batches=2, blocks=3),
    "scan": dict(blocks=3),
}


@pytest.mark.parametrize("name", sorted(APPS))
class TestCrashSweep:
    def test_recover_and_complete_from_any_instant(self, name, model):
        harness = CrashHarness(
            lambda: build_app(name, **SIZES[name]), small_system(model)
        )
        for report in harness.sweep(points=5):
            assert report.consistent, report.error
            assert report.completed, report.error


class TestHarnessMechanics:
    def make(self, model=ModelName.SBRP):
        return CrashHarness(
            lambda: build_app("gpkvs", **SIZES["gpkvs"]), small_system(model)
        )

    def test_crash_at_zero_recovers_to_initial_state(self):
        report = self.make().crash_at(0.0)
        assert report.consistent and report.completed

    def test_crash_at_end_preserves_all_work(self):
        harness = self.make()
        report = harness.crash_at(harness.end_time())
        assert report.consistent and report.completed

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            self.make().crash_at_fraction(1.5)

    def test_worst_case_recovery_cycles_positive(self):
        assert self.make().recovery_cycles_at_worst_case() > 0

    def test_baseline_is_cached(self):
        harness = self.make()
        first = harness.baseline()
        assert harness.baseline() is first


class TestScopedPersistencyBug:
    """Section 5.3: using a narrower scope than program semantics needs.

    The producer's pX persist is delayed in its persist buffer behind an
    earlier fenced persist (FSM).  A *device*-scope release only
    publishes its flag once pX is durable, so the cross-block consumer
    always reads 7; a *block*-scope release (the bug) publishes
    immediately and the consumer reads a stale 0.
    """

    def run_demo(self, scope: Scope) -> int:
        system = GPUSystem(small_system(ModelName.SBRP, num_sms=2))
        pm = system.pm_create("pm", 4096)
        flag = system.malloc(128)
        out = system.malloc(128)
        pa, px = pm.word(0), pm.word(64)

        def kernel(w, pa, px, flag, out, scope):
            lead = w.lane == 0
            if w.block_id == 1 and w.warp_in_block == 0:
                yield w.st(pa, 1, mask=lead)
                yield w.ofence()
                yield w.st(px, 7, mask=lead)  # FSM-delayed behind pa's ack
                yield w.prel(flag, 1, scope)
            elif w.block_id == 0 and w.warp_in_block == 0:
                while True:
                    got = yield w.pacq(flag, Scope.DEVICE)
                    if got:
                        break
                vals = yield w.ld(px, mask=lead)
                yield w.st(out, vals, mask=lead)

        system.launch(kernel, 2, args=(pa, px, flag.base, out.base, scope))
        system.sync()
        return system.read_word(out.base)

    def test_correct_device_scope_sees_the_persist(self):
        assert self.run_demo(Scope.DEVICE) == 7

    def test_block_scope_bug_reads_stale_data(self):
        assert self.run_demo(Scope.BLOCK) == 0


class TestPersistBoundaries:
    def make(self, model=ModelName.SBRP):
        return CrashHarness(
            lambda: build_app("gpkvs", **SIZES["gpkvs"]), small_system(model)
        )

    def test_fraction_zero_is_the_initial_image(self):
        report = self.make().crash_at_fraction(0.0)
        assert report.crash_time == 0.0
        assert report.consistent and report.completed

    def test_fraction_one_is_the_end_of_run(self):
        harness = self.make()
        report = harness.crash_at_fraction(1.0)
        assert report.crash_time == harness.end_time()
        assert report.consistent and report.completed

    def test_boundaries_start_at_zero_sorted_distinct(self):
        times = self.make().persist_boundaries()
        assert times[0] == 0.0
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        assert len(times) > 10  # gpkvs persists plenty of lines

    def test_limit_subsamples_keeping_endpoints(self):
        harness = self.make()
        full = harness.persist_boundaries()
        sub = harness.persist_boundaries(limit=7)
        assert len(sub) == 7
        assert sub[0] == full[0] and sub[-1] == full[-1]
        assert set(sub) <= set(full)

    def test_crash_at_every_persist_is_recoverable(self, model):
        harness = CrashHarness(
            lambda: build_app("gpkvs", **SIZES["gpkvs"]), small_system(model)
        )
        reports = harness.crash_at_every_persist(limit=10)
        assert 0 < len(reports) <= 10
        for report in reports:
            assert report.consistent, report.error

"""Event engine: ordering, monotonicity, budget."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.gpu.engine import Engine


def test_events_run_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda t: seen.append(("b", t)))
    engine.schedule(5, lambda t: seen.append(("a", t)))
    engine.run()
    assert seen == [("a", 5), ("b", 10)]


def test_same_time_fifo_order():
    engine = Engine()
    seen = []
    engine.schedule(5, lambda t: seen.append("first"))
    engine.schedule(5, lambda t: seen.append("second"))
    engine.run()
    assert seen == ["first", "second"]


def test_past_schedules_clamped_to_now():
    engine = Engine()
    seen = []

    def late(t):
        engine.schedule(t - 100, lambda t2: seen.append(t2))

    engine.schedule(50, late)
    engine.run()
    assert seen == [50]


def test_clock_never_regresses():
    engine = Engine()
    times = []
    engine.schedule(10, lambda t: times.append(engine.now))
    engine.schedule(20, lambda t: times.append(engine.now))
    engine.run()
    assert times == sorted(times)


def test_until_predicate_stops_early():
    engine = Engine()
    seen = []
    engine.schedule(1, lambda t: seen.append(1))
    engine.schedule(2, lambda t: seen.append(2))
    engine.run(until=lambda: len(seen) >= 1)
    assert seen == [1]
    assert engine.pending() == 1


def test_cycle_budget_raises():
    engine = Engine(max_cycles=100)

    def respawn(t):
        engine.schedule(t + 60, respawn)

    engine.schedule(0, respawn)
    with pytest.raises(SimulationError):
        engine.run()


def test_cycle_budget_message_reports_queue_depth():
    engine = Engine(max_cycles=100)

    def respawn(t):
        engine.schedule(t + 60, respawn)
        engine.schedule(t + 70, lambda t2: None)

    engine.schedule(0, respawn)
    with pytest.raises(SimulationError, match=r"\d+ events still queued"):
        engine.run()


def test_run_records_engine_stats():
    stats = StatsRegistry()
    engine = Engine(stats=stats)
    engine.schedule(5, lambda t: None)
    engine.schedule(12, lambda t: None)
    engine.run()
    assert stats.get("engine.events_processed") == 2
    assert stats.get("engine.now") == 12


def test_run_without_registry_records_nothing():
    engine = Engine()
    engine.schedule(5, lambda t: None)
    assert engine.run() == 5


def test_schedule_in_relative():
    engine = Engine()
    seen = []
    engine.schedule(5, lambda t: engine.schedule_in(7, lambda t2: seen.append(t2)))
    engine.run()
    assert seen == [12]


class TestWatchdog:
    def make_spinner(self, watchdog_events):
        engine = Engine(watchdog_events=watchdog_events)

        def respawn(t):
            engine.schedule(t + 1, respawn)

        engine.schedule(0, respawn)
        return engine

    def test_no_progress_raises_livelock(self):
        from repro.common.errors import LivelockError

        engine = self.make_spinner(watchdog_events=100)
        engine.schedule(10_000_000, lambda t: None)  # stays queued
        with pytest.raises(LivelockError) as info:
            engine.run()
        err = info.value
        assert err.idle_events == 101
        assert err.queue_depths["engine.pending"] >= 1
        assert "no forward progress" in str(err)

    def test_livelock_is_a_simulation_error(self):
        """Pre-existing `except SimulationError` handlers keep working."""
        engine = self.make_spinner(watchdog_events=100)
        with pytest.raises(SimulationError):
            engine.run()

    def test_note_progress_resets_the_watchdog(self):
        engine = Engine(watchdog_events=10)
        seen = []

        def step(t):
            engine.note_progress()
            seen.append(t)
            if t < 50:
                engine.schedule(t + 1, step)

        engine.schedule(0, step)
        engine.run()
        assert len(seen) == 51  # 51 events > 10 budget, but each resets

    def test_zero_disables_the_watchdog(self):
        engine = Engine(max_cycles=10_000, watchdog_events=0)

        def respawn(t):
            if t < 500:
                engine.schedule(t + 1, respawn)

        engine.schedule(0, respawn)
        engine.run()  # 500 idle events, no watchdog

    def test_diagnostics_callback_is_included(self):
        from repro.common.errors import LivelockError

        engine = self.make_spinner(watchdog_events=50)
        engine.watchdog_diagnostics = lambda: {"pb.occupancy": 7.0}
        with pytest.raises(LivelockError) as info:
            engine.run()
        assert info.value.queue_depths["pb.occupancy"] == 7.0
        assert "pb.occupancy=7" in str(info.value)

    def test_reset_clears_idle_count(self):
        from repro.common.errors import LivelockError

        engine = self.make_spinner(watchdog_events=100)
        with pytest.raises(LivelockError):
            engine.run()
        engine.reset()
        engine.schedule(5, lambda t: None)
        assert engine.run() == 5


class TestBudgetBoundary:
    def test_event_exactly_at_max_cycles_runs(self):
        engine = Engine(max_cycles=100)
        seen = []
        engine.schedule(100, lambda t: seen.append(t))
        assert engine.run() == 100
        assert seen == [100]

    def test_event_just_past_max_cycles_raises(self):
        engine = Engine(max_cycles=100)
        engine.schedule(100.0000001, lambda t: None)
        with pytest.raises(SimulationError, match="cycle budget exceeded"):
            engine.run()

    def test_events_within_budget_run_before_the_raise(self):
        engine = Engine(max_cycles=100)
        seen = []
        engine.schedule(99, lambda t: seen.append(t))
        engine.schedule(101, lambda t: seen.append(t))
        with pytest.raises(SimulationError):
            engine.run()
        assert seen == [99]
        assert engine.now == 99


class TestUntilWatchdogInterplay:
    def test_until_checked_before_watchdog_counts(self):
        """A satisfied predicate stops the run before the spinner can
        accumulate enough idle events to trip the watchdog."""
        engine = Engine(watchdog_events=10)
        seen = []

        def respawn(t):
            seen.append(t)
            engine.schedule(t + 1, respawn)

        engine.schedule(0, respawn)
        engine.run(until=lambda: len(seen) >= 5)
        assert len(seen) == 5
        assert engine.pending() == 1

    def test_watchdog_fires_when_until_never_satisfied(self):
        from repro.common.errors import LivelockError

        engine = Engine(watchdog_events=10)

        def respawn(t):
            engine.schedule(t + 1, respawn)

        engine.schedule(0, respawn)
        with pytest.raises(LivelockError):
            engine.run(until=lambda: False)

    def test_resumed_run_keeps_idle_count(self):
        """Stopping via until() does not reset the watchdog — idle
        events accumulate across run() calls until note_progress()."""
        from repro.common.errors import LivelockError

        engine = Engine(watchdog_events=10)
        count = [0]

        def respawn(t):
            count[0] += 1
            engine.schedule(t + 1, respawn)

        engine.schedule(0, respawn)
        engine.run(until=lambda: count[0] >= 6)
        with pytest.raises(LivelockError):
            engine.run()
        assert count[0] <= 11  # 6 before the pause + at most 5 after


class TestReset:
    def test_reset_restores_a_reusable_engine(self):
        engine = Engine()
        engine.schedule(5, lambda t: None)
        engine.schedule(9, lambda t: None)
        assert engine.run() == 9
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending() == 0
        assert engine.events_processed == 0
        seen = []
        engine.schedule(3, lambda t: seen.append(t))
        assert engine.run() == 3
        assert seen == [3]

    def test_reset_discards_pending_events(self):
        engine = Engine()
        seen = []
        engine.schedule(1, lambda t: seen.append(1))
        engine.schedule(2, lambda t: seen.append(2))
        engine.run(until=lambda: bool(seen))
        engine.reset()
        assert engine.run() == 0.0
        assert seen == [1]

    def test_reset_restarts_fifo_tiebreak_sequence(self):
        engine = Engine()
        engine.schedule(1, lambda t: None)
        engine.run()
        engine.reset()
        seen = []
        engine.schedule(5, lambda t: seen.append("first"))
        engine.schedule(5, lambda t: seen.append("second"))
        engine.run()
        assert seen == ["first", "second"]

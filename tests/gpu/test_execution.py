"""End-to-end SIMT execution: loads, stores, masks, atomics, barriers,
multi-block dispatch."""

import numpy as np
import pytest

from repro import GPUSystem, ModelName, small_system
from repro.common.errors import SimulationError

from conftest import run_to_end


class TestLoadsStores:
    def test_store_then_load_volatile(self, system):
        buf = system.malloc(4096)

        def kernel(w, buf):
            yield w.st(buf.base + 4 * w.tid, w.tid * 3)
            vals = yield w.ld(buf.base + 4 * w.tid)
            assert (vals == w.tid * 3).all()

        run_to_end(system, kernel, blocks=2, args=(buf,))
        got = system.read_words(buf, 64)
        assert (got == np.arange(64) * 3).all()

    def test_store_then_load_pm(self, system):
        buf = system.pm_create("b", 4096)

        def kernel(w, buf):
            yield w.st(buf.base + 4 * w.tid, w.tid + 1)
            vals = yield w.ld(buf.base + 4 * w.tid)
            assert (vals == w.tid + 1).all()

        run_to_end(system, kernel, blocks=1, args=(buf,))
        assert (system.read_words(buf, 32) == np.arange(32) + 1).all()

    def test_masked_store_leaves_inactive_lanes(self, system):
        buf = system.pm_create("b", 4096)

        def kernel(w, buf):
            yield w.st(buf.base + 4 * w.tid, 7, mask=w.lane < 8)

        run_to_end(system, kernel, blocks=1, args=(buf,))
        got = system.read_words(buf, 32)
        assert (got[:8] == 7).all() and (got[8:] == 0).all()

    def test_pm_stores_become_durable_after_sync(self, system):
        buf = system.pm_create("b", 4096)

        def kernel(w, buf):
            yield w.st(buf.base + 4 * w.tid, w.tid + 1)

        run_to_end(system, kernel, blocks=1, args=(buf,))
        durable = system.durable_words(buf, 32)
        assert (durable == np.arange(32) + 1).all()

    def test_host_initialized_values_visible_to_kernel(self, system):
        buf = system.pm_create("b", 4096)
        system.host_write_words(buf, np.arange(32) + 100)

        out = system.malloc(4096)

        def kernel(w, buf, out):
            vals = yield w.ld(buf.base + 4 * w.tid)
            yield w.st(out.base + 4 * w.tid, vals * 2)

        run_to_end(system, kernel, blocks=1, args=(buf, out))
        assert (system.read_words(out, 32) == (np.arange(32) + 100) * 2).all()


class TestAtomics:
    def test_atomic_add_returns_old_values(self, system):
        counter = system.malloc(128)

        def kernel(w, counter):
            olds = yield w.atomic_add(counter.base, 1)
            # Within one warp the adds serialize: olds are distinct.
            assert len(set(olds.tolist())) == w.warp_size

        run_to_end(system, kernel, blocks=2, args=(counter,))
        assert system.read_word(counter.base) == 2 * 128

    def test_atomic_to_pm_rejected(self, sbrp_system):
        pm = sbrp_system.pm_create("p", 128)

        def kernel(w, pm):
            yield w.atomic_add(pm.base, 1)

        with pytest.raises(SimulationError):
            sbrp_system.launch(kernel, 1, args=(pm,))


class TestBarriers:
    def test_block_barrier_synchronizes_warps(self, system):
        buf = system.malloc(4096)

        def kernel(w, buf):
            yield w.st(buf.base + 4 * w.tid, w.tid + 1)
            yield w.sync()
            # After the barrier every thread sees every other's write.
            other = (w.tid + 32) % w.nthreads
            vals = yield w.ld(buf.base + 4 * other)
            assert (vals == other + 1).all()

        run_to_end(system, kernel, blocks=1, args=(buf,))


class TestDispatch:
    def test_more_blocks_than_sms_runs_in_waves(self, system):
        blocks = system.config.gpu.num_sms * 2 + 1
        buf = system.malloc(4 * blocks)

        def kernel(w, buf):
            yield w.st(buf.base + 4 * w.block_id, w.block_id + 1, mask=w.lane == 0)

        run_to_end(system, kernel, blocks=blocks, args=(buf,))
        assert (system.read_words(buf, blocks) == np.arange(blocks) + 1).all()

    def test_sequential_launches_share_state(self, system):
        buf = system.pm_create("b", 4096)

        def writer(w, buf):
            yield w.st(buf.base + 4 * w.tid, w.tid + 1)

        def doubler(w, buf):
            vals = yield w.ld(buf.base + 4 * w.tid)
            yield w.st(buf.base + 4 * w.tid, vals * 2)

        system.launch(writer, 1, args=(buf,))
        system.launch(doubler, 1, args=(buf,))
        system.sync()
        assert (system.read_words(buf, 32) == (np.arange(32) + 1) * 2).all()

    def test_kernel_cycles_accumulate(self, system):
        def kernel(w):
            yield w.compute(100)

        first = system.launch(kernel, 1)
        second = system.launch(kernel, 1)
        assert second.start >= first.end
        assert second.cycles > 0

    def test_empty_grid_rejected(self, system):
        def kernel(w):
            yield w.compute(1)

        with pytest.raises(SimulationError):
            system.launch(kernel, 0)


class TestStaleness:
    def test_cross_sm_pm_reads_can_be_stale_under_sbrp(self):
        """Dirty PM data buffered in one SM's L1 is not visible to
        another SM until drained - the non-coherence scoped persistency
        bugs rely on (Section 5.3)."""
        from repro import DrainPolicy, SBRPConfig

        system = GPUSystem(
            small_system(
                ModelName.SBRP,
                num_sms=2,
                sbrp=SBRPConfig(drain_policy=DrainPolicy.LAZY),
            )
        )
        pm = system.pm_create("p", 4096)
        out = system.malloc(128)

        def kernel(w, pm, out):
            if w.block_id == 0:
                yield w.st(pm.base, 42, mask=w.lane == 0)
                yield w.compute(50)
            else:
                yield w.compute(200)  # let block 0's store happen first
                vals = yield w.ld(pm.base, mask=w.lane == 0)
                yield w.st(out.base, vals, mask=w.lane == 0)

        run_to_end(system, kernel, blocks=2, args=(pm, out))
        # Block 1 read the globally visible image, which the buffered
        # store had not reached: it must have seen the stale zero.
        assert system.read_word(out.base) == 0

"""WarpCtx op construction and SIMT bookkeeping."""

import numpy as np
import pytest

from repro.common.config import Scope
from repro.gpu.ops import Ld, PAcq, PRel, St
from repro.gpu.warp import Warp, WarpCtx, WarpState


def make_ctx(block_id=1, warp_in_block=2, block_size=128):
    return WarpCtx(
        block_id=block_id,
        warp_in_block=warp_in_block,
        warp_size=32,
        block_size=block_size,
        grid_blocks=4,
    )


class TestWarpCtx:
    def test_global_tids(self):
        w = make_ctx()
        assert w.tid[0] == 1 * 128 + 2 * 32
        assert (np.diff(w.tid) == 1).all()

    def test_nthreads_and_warps(self):
        w = make_ctx()
        assert w.nthreads == 4 * 128
        assert w.warps_per_block == 4
        assert not w.is_block_leader
        assert make_ctx(warp_in_block=0).is_block_leader

    def test_scalar_addr_broadcasts(self):
        w = make_ctx()
        op = w.ld(1000)
        assert isinstance(op, Ld)
        assert (op.addrs == 1000).all()
        assert op.mask.all()

    def test_vector_store(self):
        w = make_ctx()
        op = w.st(w.tid * 4, w.tid, mask=w.lane < 4)
        assert isinstance(op, St)
        assert op.mask.sum() == 4
        assert (op.values == w.tid).all()

    def test_shape_mismatch_rejected(self):
        w = make_ctx()
        with pytest.raises(ValueError):
            w.ld(np.arange(5))
        with pytest.raises(ValueError):
            w.st(w.tid, np.arange(3))
        with pytest.raises(ValueError):
            w.ld(w.tid, mask=[True, False])

    def test_scoped_ops_carry_scope(self):
        w = make_ctx()
        acq = w.pacq(64, Scope.DEVICE)
        rel = w.prel(64, 5, Scope.BLOCK)
        assert isinstance(acq, PAcq) and acq.scope is Scope.DEVICE
        assert isinstance(rel, PRel) and rel.value == 5


class TestWarpRecord:
    def test_initial_state(self):
        def gen():
            yield

        warp = Warp(slot=3, ctx=make_ctx(), gen=gen(), block_key=7)
        assert warp.state is WarpState.READY
        assert warp.retry_op is None
        assert "w2" in repr(warp)

"""SM internals: wake semantics, spin backoff, coalescing, stats."""

import numpy as np
import pytest

from repro import GPUSystem, ModelName, Scope, small_system

from conftest import run_to_end


class TestSpinBackoff:
    def test_failed_acquires_are_backed_off(self, sbrp_system):
        flag = sbrp_system.malloc(128)
        done = sbrp_system.malloc(128)

        def kernel(w, flag, done):
            if w.warp_in_block == 0:
                yield w.compute(500)
                yield w.prel(flag, 1, Scope.BLOCK)
            elif w.warp_in_block == 1:
                while True:
                    got = yield w.pacq(flag, Scope.BLOCK)
                    if got:
                        break
                yield w.st(done, 1, mask=w.lane == 0)

        run_to_end(sbrp_system, kernel, args=(flag.base, done.base))
        assert sbrp_system.read_word(done.base) == 1
        spins = sbrp_system.stat("sm.pacq_spins")
        # The spinner polled while the producer computed, but backoff
        # keeps the count bounded (500 cycles / 40-cycle backoff + slack).
        assert 0 < spins < 50


class TestStoreCoalescing:
    def test_warp_store_coalesces_into_one_line(self, sbrp_system):
        pm = sbrp_system.pm_create("p", 4096)

        def kernel(w, pm):
            # 32 lanes x 4B = exactly one 128B line.
            yield w.st(pm.base + 4 * w.lane, w.lane + 1, mask=w.lane >= 0)

        sbrp_system.launch(kernel, 1, args=(pm,))
        sbrp_system.sync()
        # One block has 4 warps all writing the same line: they coalesce
        # into few persist entries, and far fewer lines than stores.
        assert sbrp_system.stat("persist.lines") <= 4
        image = sbrp_system.gpu.subsystem.crash_image(sbrp_system.now)
        assert image[pm.word(31)] == 32

    def test_unordered_same_line_stores_coalesce_in_pb(self):
        from repro import DrainPolicy, SBRPConfig

        # Lazy drain keeps the first store's entry live so the second
        # store to the same line coalesces into it.
        system = GPUSystem(
            small_system(
                ModelName.SBRP, sbrp=SBRPConfig(drain_policy=DrainPolicy.LAZY)
            )
        )
        pm = system.pm_create("p", 4096)

        def kernel(w, pm):
            if w.warp_in_block != 0:
                return
            yield w.st(pm.base, 1, mask=w.lane == 0)
            yield w.st(pm.base + 4, 2, mask=w.lane == 0)  # same line

        system.launch(kernel, 1, args=(pm,))
        system.sync()
        assert system.stat("sbrp.stores_coalesced") >= 1
        image = system.gpu.subsystem.crash_image(system.now)
        assert image[pm.word(0)] == 1 and image[pm.word(1)] == 2


class TestMaskedEdgeCases:
    def test_fully_inactive_op_is_a_noop(self, system):
        pm = system.pm_create("p", 4096)

        def kernel(w, pm):
            yield w.st(pm.base + 4 * w.lane, 5, mask=w.lane < 0)
            vals = yield w.ld(pm.base + 4 * w.lane, mask=w.lane < 0)
            assert (vals == 0).all()

        run_to_end(system, kernel, args=(pm,))
        assert system.read_word(pm.base) == 0

    def test_divergent_lanes_store_distinct_lines(self, system):
        pm = system.pm_create("p", 64 * 1024)

        def kernel(w, pm):
            # Strided addresses: every lane its own line.
            yield w.st(pm.base + 128 * w.lane, w.lane + 1)

        run_to_end(system, kernel, blocks=1, args=(pm,))
        got = [system.read_word(pm.base + 128 * i) for i in range(32)]
        assert got == list(range(1, 33))


class TestInstructionAccounting:
    def test_instruction_counter_increments(self, system):
        def kernel(w):
            yield w.compute(1)
            yield w.compute(1)

        system.launch(kernel, 1)
        warps = system.config.gpu.warps_per_block
        assert system.stat("sm.instructions") == 2 * warps

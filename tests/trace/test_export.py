"""Exporters: Perfetto structure, byte determinism, CSV, report CLI.

The structural tests run the Figure 6 reduction scenario (quick preset,
SBRP-far) once per session and validate the exported artifacts.
"""

import json

import pytest

from repro.bench.runner import run_scenario, scenario_config, scenario_stem
from repro.bench.workloads import workload
from repro.common.config import ModelName, PMPlacement
from repro.trace import load_trace, reconcile, render_report
from repro.trace.report import main as report_main

_CONFIG = scenario_config(ModelName.SBRP, PMPlacement.FAR)
_PARAMS = workload("reduction", "quick")
_STEM = scenario_stem("reduction", _CONFIG, _PARAMS)


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    """One traced Figure 6 reduction run (SBRP-far, quick preset)."""
    directory = tmp_path_factory.mktemp("traces")
    run_scenario(
        "reduction",
        _CONFIG,
        _PARAMS,
        trace_dir=str(directory),
    )
    return directory


@pytest.fixture(scope="module")
def trace_path(trace_dir):
    return trace_dir / f"{_STEM}.trace.json"


@pytest.fixture(scope="module")
def trace(trace_path):
    return load_trace(trace_path)


def test_perfetto_structure(trace):
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = trace["traceEvents"]
    assert events, "trace has no events"
    named = {}
    for event in events:
        assert event["ph"] in {"M", "X", "i", "C", "b", "e"}
        if event["ph"] == "M" and event["name"] == "thread_name":
            named[(event["pid"], event["tid"])] = event["args"]["name"]
    # Every non-counter timeline event lands on a named thread track.
    for event in events:
        if event["ph"] in {"X", "i", "b", "e"}:
            assert (event["pid"], event["tid"]) in named
        if event["ph"] == "X":
            assert event["dur"] >= 0
    # One track per warp slot and per memory device.
    tracks = set(named.values())
    assert any(t.startswith("sm0.w") for t in tracks)
    assert any(t.startswith("nvm") for t in tracks)
    assert "gpu" in tracks  # kernel-launch summary track


def test_persist_async_pairs_match(trace):
    begins = {e["id"] for e in trace["traceEvents"] if e["ph"] == "b"}
    ends = {e["id"] for e in trace["traceEvents"] if e["ph"] == "e"}
    assert begins and begins == ends
    lifecycle = trace["otherData"]["lifecycle"]
    assert len(begins) == lifecycle["persists"] > 0


def test_trace_stamped_with_config_and_cycles(trace):
    config = trace["otherData"]["config"]
    assert config["model"] == "sbrp"
    assert config["memory"]["placement"] == "far"
    assert trace["otherData"]["cycles"] > 0


def test_pb_occupancy_counter_track(trace):
    counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
    assert any(name.endswith("pb_occupancy") for name in counters)


def test_report_reconciles_within_one_percent(trace):
    recon = reconcile(trace)
    assert recon["ratio"] == pytest.approx(1.0, abs=0.01)
    assert recon["span_ratio"] == pytest.approx(1.0, abs=0.01)


def test_render_report_from_file(trace):
    text = render_report(trace)
    assert "per-warp stall attribution" in text
    assert "persist lifecycle" in text
    assert "TOTAL" in text


def test_report_cli(trace_path, capsys):
    assert report_main([str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "per-warp stall attribution" in out


def test_counter_csv_structure(trace_dir):
    lines = (trace_dir / f"{_STEM}.counters.csv").read_text().splitlines()
    header = lines[0].split(",")
    assert header[0] == "cycle"
    assert header[1:] == sorted(header[1:])
    assert any(col.endswith("pb_occupancy") for col in header)
    assert len(lines) > 2


def test_export_is_byte_deterministic(tmp_path):
    def once(directory):
        run_scenario(
            "reduction",
            _CONFIG,
            _PARAMS,
            trace_dir=str(directory),
        )
        stem = directory / _STEM
        return (
            (stem.parent / (stem.name + ".trace.json")).read_bytes(),
            (stem.parent / (stem.name + ".counters.csv")).read_bytes(),
        )

    first = once(tmp_path / "a")
    second = once(tmp_path / "b")
    assert first == second


class TestScenarioStem:
    def test_stem_carries_label_and_hash(self):
        assert _STEM.startswith("reduction-SBRP-far-")
        suffix = _STEM.rsplit("-", 1)[1]
        assert len(suffix) == 8
        int(suffix, 16)  # raises if not hex

    def test_app_params_disambiguate_sweep_points(self, tmp_path):
        """Regression: two sweep points differing only in app params used
        to collide on the same trace filename."""
        a = scenario_stem("reduction", _CONFIG, {"blocks": 2, "per_thread": 1})
        b = scenario_stem("reduction", _CONFIG, {"blocks": 4, "per_thread": 1})
        assert a != b

    def test_trace_tag_included(self):
        tagged = scenario_stem("reduction", _CONFIG, _PARAMS, trace_tag="eadr")
        assert "-eadr-" in tagged

    def test_trace_files_do_not_collide_on_disk(self, tmp_path):
        for blocks in (2, 4):
            run_scenario(
                "reduction",
                _CONFIG,
                {"blocks": blocks, "per_thread": 1},
                trace_dir=str(tmp_path),
            )
        assert len(list(tmp_path.glob("*.trace.json"))) == 2

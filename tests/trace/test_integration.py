"""Tracing threaded through full runs: zero perturbation, lifecycle,
reconciliation."""

import pytest

from repro import GPUSystem, ModelName, small_system
from repro.common.errors import SimulationError
from repro.trace import NULL_TRACER, TraceConfig, Tracer, reconcile
from repro.trace.perfetto import chrome_trace


def pm_kernel(w, data):
    for i in range(2):
        yield w.st(data.base + 4 * w.tid, w.tid + i)
    yield w.dfence()


def run(model, trace):
    system = GPUSystem(small_system(model), trace=trace)
    data = system.pm_create("d", 1 << 16)
    result = system.launch(pm_kernel, grid_blocks=2, args=(data,), drain=True)
    return system, result


def test_tracing_disabled_by_default():
    system = GPUSystem(small_system(ModelName.SBRP))
    assert system.tracer is NULL_TRACER
    with pytest.raises(SimulationError):
        system.trace_report()


def test_traced_run_is_cycle_identical_to_untraced(model):
    _, traced = run(model, True)
    untraced_system, untraced = run(model, False)
    assert traced.cycles == untraced.cycles
    assert untraced_system.tracer.event_count() == 0


def test_tracer_adds_no_stats_counters(model):
    traced_system, _ = run(model, True)
    untraced_system, _ = run(model, False)
    assert traced_system.stats.snapshot() == untraced_system.stats.snapshot()


def test_trace_argument_forms():
    cfg = small_system(ModelName.SBRP)
    assert GPUSystem(cfg, trace=TraceConfig(capacity=10)).tracer.capacity == 10
    tracer = Tracer(TraceConfig())
    assert GPUSystem(cfg, trace=tracer).tracer is tracer
    assert GPUSystem(cfg, trace=True).tracer.enabled
    with pytest.raises(SimulationError):
        GPUSystem(cfg, trace="yes")


def test_persist_lifecycle_is_ordered(model):
    system, _ = run(model, True)
    tracer = system.tracer
    assert tracer.persist_count > 0
    assert len(tracer.persists) == tracer.persist_count
    for record in tracer.persists:
        assert record.t_store <= record.t_drain
        assert record.t_drain <= record.t_accept <= record.t_ack
    # Every buffered persist reached durability after the final drain.
    assert not tracer._open_persists


def test_sbrp_traces_pb_occupancy_and_delays():
    system, _ = run(ModelName.SBRP, True)
    tracer = system.tracer
    tracks = {track for track, name, _, _ in tracer.counters if name == "pb_occupancy"}
    assert tracks, "SBRP runs must emit PB occupancy counters"
    # dFence forces drains within the run: buffer-phase latencies exist.
    assert tracer.phase_hist["buffer"].count == tracer.persist_count


def test_stall_attribution_reconciles(model):
    system, result = run(model, True)
    trace = chrome_trace(system.tracer, config=system.config, cycles=system.now)
    recon = reconcile(trace)
    # Attribution vs measured warp residency is exact by construction.
    assert recon["attributed"] == pytest.approx(recon["residency"])
    # Trace span vs end-to-end cycles: the acceptance criterion (±1%).
    assert recon["span_ratio"] == pytest.approx(1.0, abs=0.01)
    assert recon["cycles"] >= result.cycles


def test_fence_stalls_attributed_per_model(model):
    system, _ = run(model, True)
    dfence_cycles = sum(
        cats.get("dfence", 0.0) for cats in system.tracer.stall_totals.values()
    )
    assert dfence_cycles > 0

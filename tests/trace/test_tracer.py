"""Tracer unit semantics: no-op when disabled, exact accounting."""

import pytest

from repro.trace import NULL_TRACER, TraceConfig, Tracer
from repro.trace.events import Histogram


def test_disabled_tracer_records_nothing():
    tracer = Tracer(TraceConfig(enabled=False))
    tracer.span("sm0", "xfer", 0, 10)
    tracer.instant("sm0", "mark", 5)
    tracer.counter("sm0", "pb", 5, 3.0)
    tracer.warp_begin("sm0.w00", 0)
    tracer.warp_phase("sm0.w00", "ld", 4)
    tracer.warp_end("sm0.w00", 9)
    tracer.persist_store(0, 128, 1)
    tracer.persist_delay(0, 128, "fsm")
    tracer.persist_flush(0, 128, 2, 3, 4)
    assert tracer.event_count() == 0
    assert tracer.stall_totals == {}
    assert tracer.persist_count == 0
    assert tracer.delay_counts == {}


def test_null_tracer_is_shared_and_disabled():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.span("x", "y", 0, 1)
    assert NULL_TRACER.event_count() == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(TraceConfig(capacity=0))


def test_warp_residency_attribution_is_exact():
    tracer = Tracer(TraceConfig())
    tracer.warp_begin("sm0.w00", 10)
    tracer.warp_phase("sm0.w00", "ld", 12)     # sched: 2
    tracer.warp_phase("sm0.w00", "st", 20)     # ld: 8
    tracer.warp_phase("sm0.w00", "sched", 25)  # st: 5
    tracer.warp_end("sm0.w00", 30)             # sched: 5
    cats = tracer.stall_totals["sm0.w00"]
    assert cats == {"sched": 7.0, "ld": 8.0, "st": 5.0}
    assert sum(cats.values()) == tracer.warp_active["sm0.w00"] == 20.0
    assert tracer.warp_launches["sm0.w00"] == 1


def test_warp_reuse_accumulates_residency():
    tracer = Tracer(TraceConfig())
    for start in (0, 100):
        tracer.warp_begin("sm0.w00", start)
        tracer.warp_phase("sm0.w00", "compute", start + 1)
        tracer.warp_end("sm0.w00", start + 11)
    assert tracer.warp_active["sm0.w00"] == 22.0
    assert tracer.warp_launches["sm0.w00"] == 2
    assert tracer.warp_span["sm0.w00"] == [0, 111]


def test_persist_lifecycle_orders_and_coalesces():
    tracer = Tracer(TraceConfig())
    tracer.persist_store(0, 256, 5)
    tracer.persist_store(0, 256, 7)   # same line: coalesced
    tracer.persist_store(1, 256, 8)   # other SM: distinct persist
    tracer.persist_delay(0, 256, "window")
    tracer.persist_flush(0, 256, 20, 50, 60)
    assert tracer.persist_count == 2
    assert tracer.coalesced_stores == 1
    record = tracer.persists[0]
    assert record.stores == 2
    assert record.t_store <= record.t_drain <= record.t_accept <= record.t_ack
    assert record.delays == {"window": 1}
    assert record.phase_latencies() == {"buffer": 15, "drain": 30, "ack": 10}
    assert tracer.delay_counts == {"window": 1}


def test_persist_flush_without_store_still_records():
    tracer = Tracer(TraceConfig())
    tracer.persist_flush(0, 512, 10, 30, 40)
    assert tracer.persist_count == 1
    assert tracer.persists[0].t_store == 10


def test_span_totals_survive_ring_drop():
    tracer = Tracer(TraceConfig(capacity=2))
    for i in range(10):
        tracer.span("nvm0", "write", i * 10, i * 10 + 4)
    assert len(tracer.spans) == 2
    count, busy = tracer.span_totals[("nvm0", "write")]
    assert count == 10 and busy == 40


def test_histogram_buckets_and_roundtrip():
    hist = Histogram()
    for value in (1, 2, 3, 100):
        hist.add(value)
    assert hist.count == 4
    assert hist.max == 100
    assert hist.mean == pytest.approx(26.5)
    assert Histogram.from_dict(hist.to_dict()).to_dict() == hist.to_dict()

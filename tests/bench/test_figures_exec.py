"""Figure drivers on the execution subsystem: dedupe, caching, parity.

These run real (quick-preset, single-app) figure scenarios, so they are
the slowest tests in the suite — but they pin the properties the
subsystem exists for: shared baselines simulate once, a warm cache
means zero simulations, and worker count never changes the data.
"""

import pytest

from repro.bench import figure6, figure8, figure11
from repro.exec import Executor, ResultCache


class TestCrossFigureDedupe:
    def test_two_figure_run_submits_each_unique_job_exactly_once(self, tmp_path):
        """Figure 8's four scenario configs are a subset of Figure 6's
        five, so a shared executor must simulate only Figure 6's jobs."""
        ex = Executor(workers=1, cache=ResultCache(str(tmp_path)))
        figure6(preset="quick", apps=["srad"], executor=ex)
        assert ex.stats.executed == 5  # GPM + {Epoch,SBRP} x {far,near}
        figure8(preset="quick", apps=["srad"], executor=ex)
        assert ex.stats.executed == 5  # nothing new: all four were memoized
        assert ex.stats.submitted == 9
        assert ex.stats.memo_hits == 4
        assert ex.stats.failed == 0


class TestWarmCache:
    def test_second_figure_run_performs_zero_simulations(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = Executor(workers=1, cache=cache)
        table1 = figure6(preset="quick", apps=["srad"], executor=cold)
        assert cold.stats.executed == 5

        warm = Executor(workers=1, cache=cache)
        table2 = figure6(preset="quick", apps=["srad"], executor=warm)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == 5
        assert table2.to_csv() == table1.to_csv()


class TestWorkerParity:
    def test_parallel_figure_matches_serial(self):
        serial = figure6(preset="quick", apps=["reduction"])
        parallel = figure6(
            preset="quick",
            apps=["reduction"],
            executor=Executor(workers=2),
        )
        assert parallel.to_csv() == serial.to_csv()


class TestRecoveryJobs:
    def test_figure11_runs_through_executor(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        ex = Executor(workers=1, cache=cache)
        table = figure11(preset="quick", apps=["reduction"], executor=ex)
        assert table.cell("reduction", "Epoch") == pytest.approx(1.0)
        assert ex.stats.executed == 2

        warm = Executor(workers=1, cache=cache)
        again = figure11(preset="quick", apps=["reduction"], executor=warm)
        assert warm.stats.executed == 0
        assert again.to_csv() == table.to_csv()

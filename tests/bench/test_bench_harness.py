"""Benchmark harness: workload presets, runner, figure drivers.

Figure drivers run on a single small app so the suite stays fast; the
full figures live in benchmarks/.
"""

import math

import pytest

from repro.bench import figure6, figure8, figure10c, workload
from repro.bench.report import FigureTable
from repro.bench.runner import run_scenario, scenario_config
from repro.bench.workloads import APP_ORDER, SCOPED_APPS, WORKLOADS
from repro.common.config import ModelName, PMPlacement


class TestWorkloads:
    def test_presets_cover_all_apps(self):
        for preset in WORKLOADS:
            assert sorted(WORKLOADS[preset]) == sorted(APP_ORDER)

    def test_scoped_apps_subset(self):
        assert set(SCOPED_APPS) <= set(APP_ORDER)

    def test_workload_returns_copy(self):
        a = workload("gpkvs")
        a["n_pairs"] = -1
        assert workload("gpkvs")["n_pairs"] > 0

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            workload("gpkvs", "nope")


class TestScenarioConfig:
    def test_knobs_propagate(self):
        cfg = scenario_config(
            ModelName.SBRP,
            PMPlacement.NEAR,
            nvm_bw_scale=2.0,
            pb_coverage=0.25,
            window=4,
            demote_block_scope=True,
        )
        assert cfg.memory.nvm_bw_scale == 2.0
        assert cfg.sbrp.pb_coverage == 0.25
        assert cfg.sbrp.window == 4
        assert cfg.sbrp.demote_block_scope

    def test_runner_verifies_app(self):
        cfg = scenario_config(ModelName.SBRP, PMPlacement.NEAR)
        result = run_scenario("srad", cfg, {"side": 32})
        assert result.cycles > 0
        assert result.label == "SBRP-near"
        assert result.stat("persist.lines") > 0


class TestFigureTable:
    def test_ascii_and_csv_round_trip(self):
        table = FigureTable("t", "app", ["a", "b"])
        table.add_row("x", {"a": 1.0, "b": 2.0})
        assert "1.000" in table.to_ascii()
        assert "x,1.0,2.0" in table.to_csv()
        assert table.cell("x", "b") == 2.0
        assert table.column("a") == [1.0]

    def test_missing_cell_raises(self):
        table = FigureTable("t", "app", ["a"])
        with pytest.raises(KeyError):
            table.cell("nope", "a")


class TestFigureDrivers:
    def test_figure6_single_app_shape(self):
        table = figure6(preset="quick", apps=["srad"])
        assert [r["app"] for r in table.rows] == ["srad", "gmean"]
        # Near systems always beat far ones.
        assert table.cell("srad", "Epoch-near") > table.cell("srad", "Epoch-far")
        # The baseline normalizes to 1.
        assert table.cell("srad", "Epoch-far") == pytest.approx(1.0)

    def test_figure8_sbrp_retains_more(self):
        table = figure8(preset="quick", apps=["gpkvs"])
        assert table.cell("gpkvs", "SBRP-far") <= table.cell("gpkvs", "Epoch-far")

    def test_figure10c_window_sweep_is_finite(self):
        table = figure10c(preset="quick", apps=["srad"])
        for label in ["2", "6", "10"]:
            assert math.isfinite(table.cell("srad", label))

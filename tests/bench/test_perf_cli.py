"""repro.bench.perf / repro.bench.compare CLI behaviour."""

import json

import pytest

import repro.bench.compare as compare
import repro.bench.perf as perf


@pytest.fixture(autouse=True)
def tiny_suite(monkeypatch):
    """Shrink every case so the whole suite runs in seconds."""
    monkeypatch.setattr(
        perf,
        "PERF_PARAMS",
        {
            "gpkvs": dict(n_pairs=64, capacity=128, rounds=1),
            "reduction": dict(blocks=1, per_thread=1),
            "scan": dict(blocks=1),
        },
    )
    monkeypatch.setattr(
        perf,
        "SERVE_PARAMS",
        dict(n_requests=24, n_keys=24, capacity=64, batch_requests=12),
    )
    monkeypatch.setattr(perf, "LITMUS_PROGRAMS", 1)
    monkeypatch.setattr(perf, "LITMUS_CRASH_POINTS", 3)
    monkeypatch.setattr(perf, "WARM_HITS", 2)


class TestSuite:
    def test_full_suite_covers_model_x_app_grid(self):
        names = {case.name for case in perf.suite_cases()}
        for model in ("gpm", "epoch", "sbrp"):
            for app in ("gpkvs", "reduction", "scan"):
                assert f"sim.{model}.{app}" in names
        assert "serve.sbrp.kvs" in names
        assert "litmus.enum" in names
        assert "cache.warm" in names

    def test_smoke_is_subset_with_same_names(self):
        full = {case.name for case in perf.suite_cases()}
        smoke = {case.name for case in perf.suite_cases(smoke=True)}
        assert smoke < full
        assert "litmus.enum" in smoke and "cache.warm" in smoke
        assert "serve.sbrp.kvs" in smoke


class TestPerfCli:
    def test_writes_sorted_bench_json(self, tmp_path):
        out = tmp_path / "BENCH_1.json"
        rc = perf.main(
            [
                "--cases", "sim.sbrp.gpkvs", "litmus.enum", "cache.warm",
                "--repeats", "1", "--warmup", "0",
                "--out", str(out), "--quiet",
            ]
        )
        assert rc == 0
        text = out.read_text()
        doc = json.loads(text)
        assert json.dumps(doc, indent=2, sort_keys=True) + "\n" == text
        case = doc["cases"]["sim.sbrp.gpkvs"]
        assert case["cycles_per_sec"] > 0
        assert case["events_per_sec"] > 0
        assert case["wall_s"] > 0
        assert doc["cases"]["litmus.enum"]["cycles_per_sec"] > 0
        assert doc["cases"]["cache.warm"]["events_per_sec"] > 0

    def test_serve_case_reports_request_rate(self, tmp_path):
        out = tmp_path / "BENCH_1.json"
        rc = perf.main(
            [
                "--cases", "serve.sbrp.kvs",
                "--repeats", "1", "--warmup", "0",
                "--out", str(out), "--quiet",
            ]
        )
        assert rc == 0
        case = json.loads(out.read_text())["cases"]["serve.sbrp.kvs"]
        assert case["kind"] == "serve"
        assert case["cycles_per_sec"] > 0
        assert case["events"] == 24.0  # requests served
        assert case["events_per_sec"] > 0

    def test_auto_increment_naming(self, tmp_path):
        assert perf.next_bench_path(str(tmp_path)).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_extra.json").write_text("{}")  # ignored
        assert perf.latest_bench_path(str(tmp_path)).name == "BENCH_7.json"
        assert perf.next_bench_path(str(tmp_path)).name == "BENCH_8.json"

    def test_dir_auto_numbering_via_cli(self, tmp_path):
        rc = perf.main(
            [
                "--cases", "sim.sbrp.reduction",
                "--repeats", "1", "--warmup", "0",
                "--dir", str(tmp_path), "--quiet",
            ]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_1.json").exists()

    def test_unknown_case_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            perf.main(["--cases", "sim.bogus.nope", "--out", str(tmp_path / "x")])

    def test_profile_mode_prints_hotspots(self, capsys):
        rc = perf.main(["--profile", "sim.sbrp.reduction"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "host hotspots" in out
        assert "trace profile" in out  # sim profile merged in


def _doc(rates):
    return {
        "cases": {
            name: {"cycles_per_sec": rate, "events_per_sec": rate}
            for name, rate in rates.items()
        }
    }


class TestCompare:
    def test_identical_docs_no_regressions(self):
        doc = _doc({"a": 100.0, "b": 50.0})
        result = compare.compare_benchmarks(doc, doc)
        assert result["regressions"] == 0

    def test_detects_regression_beyond_tolerance(self):
        base = _doc({"a": 100.0})
        slow = _doc({"a": 70.0})
        result = compare.compare_benchmarks(base, slow, tolerance=0.25)
        assert result["regressions"] == 1
        assert result["rows"][0]["regressed"]

    def test_within_tolerance_passes(self):
        base = _doc({"a": 100.0})
        ok = _doc({"a": 80.0})
        result = compare.compare_benchmarks(base, ok, tolerance=0.25)
        assert result["regressions"] == 0

    def test_only_common_cases_compared(self):
        base = _doc({"a": 100.0, "base_only": 1.0})
        new = _doc({"a": 100.0, "new_only": 1.0})
        result = compare.compare_benchmarks(base, new)
        assert [row["case"] for row in result["rows"]] == ["a"]
        assert result["only_base"] == ["base_only"]
        assert result["only_new"] == ["new_only"]

    def test_non_common_cases_render_as_added_removed(self):
        base = _doc({"a": 100.0, "gone": 1.0})
        new = _doc({"a": 100.0, "fresh": 1.0})
        out = compare.render_comparison(compare.compare_benchmarks(base, new))
        assert "removed  gone (only in baseline)" in out
        assert "added    fresh (only in new run)" in out

    def test_require_common_fails_on_case_drift(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        base.write_text(json.dumps(_doc({"a": 100.0, "gone": 1.0})))
        new.write_text(json.dumps(_doc({"a": 100.0})))
        # tolerated by default...
        assert compare.main([str(base), str(new)]) == 0
        # ...fatal under --require-common
        assert compare.main([str(base), str(new), "--require-common"]) == 1
        assert "case drift: 1 removed, 0 added" in capsys.readouterr().out
        # no drift -> --require-common passes
        assert compare.main([str(base), str(base), "--require-common"]) == 0

    def test_cli_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_doc({"a": 100.0})))
        slow.write_text(json.dumps(_doc({"a": 10.0})))
        assert compare.main([str(base), str(base)]) == 0
        assert compare.main([str(base), str(slow)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_self_compare_of_real_bench_file(self, tmp_path):
        out = tmp_path / "BENCH_1.json"
        perf.main(
            [
                "--cases", "sim.sbrp.scan",
                "--repeats", "1", "--warmup", "0",
                "--out", str(out), "--quiet",
            ]
        )
        assert compare.main([str(out), str(out)]) == 0


def _sim_doc(rate):
    return _doc({"sim.a": rate, "sim.b": rate, "other.x": 999.0})


class TestTrajectory:
    def _chain(self, tmp_path, rates):
        for n, rate in enumerate(rates, start=1):
            path = tmp_path / f"BENCH_{n}.json"
            path.write_text(json.dumps(_sim_doc(rate)))

    def test_discovery_orders_numerically(self, tmp_path):
        for name in ("BENCH_10.json", "BENCH_2.json", "BENCH_1.json",
                     "BENCH_x.json", "OTHER_3.json"):
            (tmp_path / name).write_text("{}")
        found = compare.discover_benchmarks(tmp_path)
        assert [n for n, _ in found] == [1, 2, 10]

    def test_chain_is_product_of_links(self):
        benches = [
            ("BENCH_1.json", _sim_doc(100.0)),
            ("BENCH_2.json", _sim_doc(300.0)),
            ("BENCH_3.json", _sim_doc(600.0)),
        ]
        result = compare.trajectory(benches)
        assert [round(link["median"], 6) for link in result["links"]] \
            == [3.0, 2.0]
        assert round(result["cumulative"], 6) == 6.0
        # Uniform per-case movement: direct equals chained exactly.
        assert round(result["direct"], 6) == 6.0

    def test_cli_prints_chain_and_gates_on_cumulative(self, tmp_path, capsys):
        self._chain(tmp_path, [100.0, 300.0, 600.0])
        assert compare.main(["--trajectory", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cumulative x6.00" in out
        assert compare.main(
            ["--trajectory", "--dir", str(tmp_path), "--min-speedup", "5.0"]
        ) == 0
        assert compare.main(
            ["--trajectory", "--dir", str(tmp_path), "--min-speedup", "7.0"]
        ) == 1
        assert "below required x7.00" in capsys.readouterr().out

    def test_cli_rejects_bad_invocations(self, tmp_path):
        self._chain(tmp_path, [100.0])
        with pytest.raises(SystemExit):  # fewer than two baselines
            compare.main(["--trajectory", "--dir", str(tmp_path)])
        self._chain(tmp_path, [100.0, 200.0])
        with pytest.raises(SystemExit):  # positional files are pairwise-only
            compare.main(
                ["--trajectory", "--dir", str(tmp_path), "base.json", "n.json"]
            )
        with pytest.raises(SystemExit):  # pairwise mode needs both files
            compare.main([])

"""Persistency-model semantics observed through crash images.

These are the core guarantees of Box 2, checked against the *simulated*
persist log: at every instant of the execution, the durable image must
respect the PMO the program expressed.
"""

import numpy as np
import pytest

from repro import GPUSystem, ModelName, Scope, small_system

from conftest import run_to_end


def pmo_holds(system, first_addr, first_val, second_addr, second_val):
    """In every crash image: second durable implies first durable."""
    log = system.gpu.subsystem.persist_log
    times = sorted({r.accept_time for r in log.records()}) + [system.now]
    for t in times:
        image = system.gpu.subsystem.crash_image(t)
        if image.get(second_addr, 0) == second_val:
            if image.get(first_addr, 0) != first_val:
                return False
    return True


class TestIntraThreadPMO:
    def test_ofence_orders_persists(self, system):
        pm = system.pm_create("p", 4096)
        a, b = pm.word(0), pm.word(64)

        def kernel(w, a, b):
            yield w.st(a, 11, mask=w.lane == 0)
            yield w.ofence()
            yield w.st(b, 22, mask=w.lane == 0)

        run_to_end(system, kernel, args=(a, b))
        assert pmo_holds(system, a, 11, b, 22)

    def test_ofence_chain_is_transitive(self, system):
        pm = system.pm_create("p", 4096)
        addrs = [pm.word(i * 64) for i in range(3)]

        def kernel(w, addrs):
            for i, addr in enumerate(addrs):
                yield w.st(addr, i + 1, mask=w.lane == 0)
                yield w.ofence()

        run_to_end(system, kernel, args=(addrs,))
        assert pmo_holds(system, addrs[0], 1, addrs[2], 3)
        assert pmo_holds(system, addrs[1], 2, addrs[2], 3)

    def test_same_word_rewrite_across_fence(self, system):
        """pX=1, oFence, pX=2: the final durable value must be 2 and no
        image may hold 2 before ... 1 was durable at some instant."""
        pm = system.pm_create("p", 4096)
        x = pm.word(0)

        def kernel(w, x):
            if w.warp_in_block != 0:
                return
            yield w.st(x, 1, mask=w.lane == 0)
            yield w.ofence()
            yield w.st(x, 2, mask=w.lane == 0)

        run_to_end(system, kernel, args=(x,))
        log = system.gpu.subsystem.persist_log
        values = [r.words[x] for r in log.records() if x in r.words]
        # Value 1 may be re-persisted by stall-retry paths, but 2 must be
        # last and must never precede a 1.
        assert values[-1] == 2
        assert all(v == 1 for v in values[:-1])
        assert system.durable_words(pm, 1)[0] == 2


class TestInterThreadPMO:
    def test_block_scope_release_acquire(self, system):
        pm = system.pm_create("p", 4096)
        flag = system.malloc(128)
        x, y = pm.word(0), pm.word(64)

        def kernel(w, x, y, flag):
            if w.warp_in_block == 0:
                yield w.st(x, 5, mask=w.lane == 0)
                yield w.prel(flag, 1, Scope.BLOCK)
            elif w.warp_in_block == 1:
                while True:
                    got = yield w.pacq(flag, Scope.BLOCK)
                    if got:
                        break
                yield w.st(y, 6, mask=w.lane == 0)

        run_to_end(system, kernel, args=(x, y, flag.base))
        assert pmo_holds(system, x, 5, y, 6)

    def test_device_scope_across_blocks(self, system):
        pm = system.pm_create("p", 4096)
        flag = system.malloc(128)
        x, y = pm.word(0), pm.word(64)

        def kernel(w, x, y, flag):
            if w.block_id == 0 and w.warp_in_block == 0:
                yield w.st(x, 5, mask=w.lane == 0)
                yield w.prel(flag, 1, Scope.DEVICE)
            elif w.block_id == 1 and w.warp_in_block == 0:
                while True:
                    got = yield w.pacq(flag, Scope.DEVICE)
                    if got:
                        break
                yield w.st(y, 6, mask=w.lane == 0)

        run_to_end(system, kernel, blocks=2, args=(x, y, flag.base))
        assert pmo_holds(system, x, 5, y, 6)


class TestDFence:
    def test_dfence_makes_prior_persists_durable(self, system):
        pm = system.pm_create("p", 4096)
        marker = system.malloc(128)
        x = pm.word(0)

        def kernel(w, x, marker):
            yield w.st(x, 9, mask=w.lane == 0)
            yield w.dfence()
            # Record (volatile) that the dFence completed.
            yield w.st(marker, 1, mask=w.lane == 0)

        system.launch(kernel, 1, args=(x, marker.base))
        # At kernel completion the dFence has completed (the marker
        # proves program order), so pX must already be durable without
        # any host sync.
        assert system.read_word(marker.base) == 1
        image = system.gpu.subsystem.crash_image(system.now)
        assert image.get(x, 0) == 9


class TestUnorderedWrites:
    def test_no_fence_allows_reordering_eventually_both_durable(self, system):
        pm = system.pm_create("p", 4096)
        a, b = pm.word(0), pm.word(64)

        def kernel(w, a, b):
            yield w.st(a, 1, mask=w.lane == 0)
            yield w.st(b, 2, mask=w.lane == 0)

        run_to_end(system, kernel, args=(a, b))
        image = system.gpu.subsystem.crash_image(system.now)
        assert image.get(a) == 1 and image.get(b) == 2

"""Model-specific behavioural differences (the mechanisms behind the
figures): invalidation flavours, buffering, EDM stalls, drain policies."""

import numpy as np
import pytest

from repro import (
    DrainPolicy,
    GPUSystem,
    ModelName,
    SBRPConfig,
    Scope,
    small_system,
)

from conftest import run_to_end


def logging_kernel(w, log, data):
    yield w.st(log.base + 4 * w.tid, 1, mask=w.lane >= 0)
    yield w.ofence()
    yield w.st(data.base + 4 * w.tid, 2)
    yield w.ofence()
    yield w.st(log.base + 4 * w.tid, 0)
    vals = yield w.ld(data.base + 4 * w.tid)


def run_logging(model, **sbrp_kwargs):
    config = small_system(model, sbrp=SBRPConfig(**sbrp_kwargs) if sbrp_kwargs else None)
    system = GPUSystem(config)
    log = system.pm_create("log", 8192)
    data = system.pm_create("data", 8192)
    result = run_to_end(system, logging_kernel, blocks=2, args=(log, data))
    return system, result


class TestInvalidation:
    def test_epoch_invalidates_pm_lines_at_barrier(self):
        system, _ = run_logging(ModelName.EPOCH)
        # The final data load re-misses because the barrier invalidated.
        assert system.stat("l1.read_miss_pm") > 0
        assert system.stat("l1.read_hit_pm") == 0

    def test_sbrp_retains_pm_lines_across_ofence(self):
        system, _ = run_logging(ModelName.SBRP)
        assert system.stat("l1.read_hit_pm") > 0

    def test_gpm_barrier_count_matches_epoch(self):
        gpm, _ = run_logging(ModelName.GPM)
        epoch, _ = run_logging(ModelName.EPOCH)
        assert gpm.stat("epoch.barriers") == epoch.stat("epoch.barriers")

    def test_gpm_invalidates_more_lines_than_epoch(self):
        gpm, _ = run_logging(ModelName.GPM)
        epoch, _ = run_logging(ModelName.EPOCH)
        assert gpm.stat("epoch.lines_invalidated") >= epoch.stat(
            "epoch.lines_invalidated"
        )


class TestBuffering:
    def test_sbrp_ofence_does_not_stall(self):
        """An oFence is buffered: the kernel retires long before the
        persists are durable (the epoch barrier waits in-kernel)."""
        sbrp_sys, sbrp = run_logging(ModelName.SBRP)
        epoch_sys, epoch = run_logging(ModelName.EPOCH)
        assert sbrp.cycles < epoch.cycles

    def test_sbrp_edm_stall_on_same_line_rewrite(self):
        """A store that rewrites a line whose persist entry is delayed
        behind the warp's own fence must stall in the EDM."""
        system = GPUSystem(small_system(ModelName.SBRP))
        a = system.pm_create("a", 4096)
        b = system.pm_create("b", 4096)

        def kernel(w, a, b):
            # First persist flushes immediately; the fence then delays
            # b's entry (FSM) until a's ack, so the rewrite of b finds a
            # live entry behind an ordering point -> EDM stall.
            yield w.st(a.base + 4 * w.tid, 1)
            yield w.ofence()
            yield w.st(b.base + 4 * w.tid, 2)
            yield w.ofence()
            yield w.st(b.base + 4 * w.tid, 3)

        run_to_end(system, kernel, blocks=1, args=(a, b))
        assert system.stat("sbrp.edm_stalls") > 0
        # And the rewrite's ordering held: final durable value is 3.
        image = system.gpu.subsystem.crash_image(system.now)
        assert image[b.word(0)] == 3

    def test_window_policy_paces_drain(self):
        for policy in (DrainPolicy.WINDOW, DrainPolicy.EAGER, DrainPolicy.LAZY):
            system, _ = run_logging(ModelName.SBRP, drain_policy=policy)
            # All policies must drain everything by sync().
            assert (
                system.stat("sbrp.persist_entries") > 0
            ), policy
            final = system.gpu.subsystem.crash_image(system.now)
            # commit cleared the log everywhere
            log = system.pm_open("log")
            assert all(final.get(log.word(i), 0) == 0 for i in range(64))


class TestScopeDemotion:
    def test_demoted_block_release_behaves_like_device(self):
        config = small_system(
            ModelName.SBRP, sbrp=SBRPConfig(demote_block_scope=True)
        )
        system = GPUSystem(config)
        pm = system.pm_create("p", 4096)
        flag = system.malloc(128)

        def kernel(w, pm_addr, flag):
            if w.warp_in_block == 0:
                yield w.st(pm_addr, 1, mask=w.lane == 0)
                yield w.prel(flag, 1, Scope.BLOCK)

        run_to_end(system, kernel, args=(pm.base, flag.base))
        # Demotion makes the release device-scoped: it stalls and drains.
        assert system.stat("sbrp.prel_device") == 1
        assert system.stat("sbrp.prel_block") == 0


class TestPBCapacity:
    def test_tiny_pb_forces_stalls_but_stays_correct(self):
        config = small_system(ModelName.SBRP, sbrp=SBRPConfig(pb_coverage=0.05))
        system = GPUSystem(config)
        data = system.pm_create("d", 64 * 1024)

        def kernel(w, data):
            for i in range(8):
                addr = data.base + 4 * (w.tid + i * w.nthreads)
                yield w.st(addr, i + 1)

        run_to_end(system, kernel, blocks=2, args=(data,))
        image = system.gpu.subsystem.crash_image(system.now)
        n = 2 * system.config.gpu.threads_per_block
        for i in range(8):
            assert image.get(data.word(i * n), 0) == i + 1


class TestEADR:
    def test_eadr_never_slower_and_skips_wpq_waits(self):
        """eADR makes persists durable at the host LLC: acceptance never
        waits on the NVM WPQ, so heavy bursts get strictly faster."""
        from repro.common.config import MemoryConfig, PMPlacement

        def run(eadr):
            # Starve the NVM (20% write bandwidth) so the WPQ backs up;
            # eADR sidesteps the wait entirely.
            config = small_system(
                ModelName.EPOCH,
                memory=MemoryConfig(
                    placement=PMPlacement.FAR, eadr=eadr, nvm_bw_scale=0.2
                ),
            )
            system = GPUSystem(config)
            data = system.pm_create("data", 512 * 1024)

            def burst(w, data):
                # Many lines per warp, then a durability barrier: the
                # WPQ backs up without eADR.
                for i in range(16):
                    addr = data.base + 4 * (w.tid + i * w.nthreads)
                    yield w.st(addr, i + 1)
                yield w.dfence()

            return run_to_end(system, burst, blocks=4, args=(data,)).cycles

        fast, slow = run(eadr=True), run(eadr=False)
        assert fast < slow

"""Epoch-family internals: barrier accounting and outstanding-ack
tracking (the unbuffered, scope-agnostic semantics)."""

import pytest

from repro import GPUSystem, ModelName, Scope, small_system

from conftest import run_to_end


class TestBarrierAccounting:
    def test_every_persist_op_becomes_a_barrier(self):
        system = GPUSystem(small_system(ModelName.EPOCH))
        pm = system.pm_create("p", 4096)
        flag = system.malloc(128)

        def kernel(w, pm_addr, flag):
            if w.warp_in_block != 0:
                return
            yield w.st(pm_addr, 1, mask=w.lane == 0)
            yield w.ofence()       # barrier 1
            yield w.dfence()       # barrier 2
            yield w.prel(flag, 1, Scope.BLOCK)  # barrier 3
            yield w.threadfence()  # barrier 4

        run_to_end(system, kernel, args=(pm.base, flag.base))
        sms = 1  # one block
        assert system.stat("epoch.barriers") == 4 * sms

    def test_failed_acquire_is_not_a_barrier(self):
        system = GPUSystem(small_system(ModelName.EPOCH))
        flag = system.malloc(128)

        def kernel(w, flag):
            if w.warp_in_block == 0:
                yield w.compute(300)
                yield w.prel(flag, 1, Scope.BLOCK)
            elif w.warp_in_block == 1:
                while True:
                    got = yield w.pacq(flag, Scope.BLOCK)
                    if got:
                        break

        run_to_end(system, kernel, args=(flag.base,))
        # Exactly two barriers: the release and the one successful
        # acquire; the failed spin polls are plain loads.
        assert system.stat("epoch.barriers") == 2
        assert system.stat("sm.pacq_spins") > 0

    def test_barrier_waits_for_other_warps_inflight_persists(self):
        """The epoch barrier is scope-agnostic: a warp that wrote
        nothing still waits for the SM's outstanding persists."""
        system = GPUSystem(small_system(ModelName.EPOCH))
        pm = system.pm_create("p", 4096)
        stamp = system.malloc(256)

        def kernel(w, pm, stamp):
            if w.warp_in_block == 0:
                # Dirty a line; warp 1's barrier must flush+wait for it.
                yield w.st(pm.base + 4 * w.lane, 1)
            elif w.warp_in_block == 1:
                yield w.compute(30)
                yield w.ofence()
                yield w.st(stamp, 1, mask=w.lane == 0)

        result = run_to_end(system, kernel, args=(pm, stamp.base))
        assert system.stat("epoch.barrier_flushes") >= 1
        # The fencing warp stalled for a PM-far durability round trip.
        assert result.cycles > system.config.memory.pcie_latency

    def test_release_flag_invisible_until_barrier_completes(self):
        """Under epoch, prel publishes only after its persists are
        durable: an acquire that spins must take at least the
        durability round trip."""
        system = GPUSystem(small_system(ModelName.EPOCH))
        pm = system.pm_create("p", 4096)
        flag = system.malloc(128)
        t = system.malloc(128)

        def kernel(w, pm_addr, flag, t):
            if w.warp_in_block == 0:
                yield w.st(pm_addr, 1, mask=w.lane == 0)
                yield w.prel(flag, 1, Scope.BLOCK)
            elif w.warp_in_block == 1:
                while True:
                    got = yield w.pacq(flag, Scope.BLOCK)
                    if got:
                        break
                # By now the producer's persist is durable.
                image = w  # marker: assertion done host-side below

        run_to_end(system, kernel, args=(pm.base, flag.base, t.base))
        # When the flag became visible the persist was already accepted:
        # the persist log's only record predates the kernel end.
        records = system.gpu.subsystem.persist_log.records()
        assert records and all(
            r.accept_time <= system.now for r in records
        )


class TestGPMversusEpoch:
    def test_gpm_is_never_faster(self):
        def measure(model):
            system = GPUSystem(small_system(model))
            pm = system.pm_create("p", 8192)
            vol = system.malloc(8192)
            system.host_write_words(vol, range(512))

            def kernel(w, pm, vol):
                for r in range(3):
                    c = yield w.ld(vol.base + 4 * w.tid)  # volatile reuse
                    yield w.st(pm.base + 4 * w.tid, c + r, mask=w.lane >= 0)
                    yield w.ofence()

            return run_to_end(system, kernel, blocks=2, args=(pm, vol)).cycles

        assert measure(ModelName.GPM) >= measure(ModelName.EPOCH)

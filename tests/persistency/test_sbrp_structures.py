"""SBRP hardware structures: persist buffer and per-SM state."""

import pytest

from repro.common.config import Scope
from repro.persistency.sbrp.pbuffer import EntryKind, PersistBuffer
from repro.persistency.sbrp.state import SBRPState


class TestPersistBuffer:
    def test_fifo_order(self):
        pb = PersistBuffer(8)
        a = pb.append(EntryKind.PERSIST, 0b1, line_addr=0)
        b = pb.append(EntryKind.OFENCE, 0b1)
        assert pb.head() is a
        pb.remove(a)
        assert pb.head() is b

    def test_live_count_excludes_tombstones(self):
        pb = PersistBuffer(8)
        a = pb.append(EntryKind.PERSIST, 0b1)
        pb.append(EntryKind.PERSIST, 0b10)
        pb.tombstone(a)
        assert pb.live_count() == 1
        assert len(pb.entries()) == 1

    def test_capacity_accounting(self):
        pb = PersistBuffer(2)
        pb.append(EntryKind.PERSIST, 1)
        pb.append(EntryKind.OFENCE, 1)
        assert pb.is_full()
        pb.remove(pb.head())
        assert not pb.is_full()

    def test_order_entry_tracking(self):
        pb = PersistBuffer(8)
        assert not pb.has_order_entries()
        fence = pb.append(EntryKind.OFENCE, 1)
        assert pb.has_order_entries()
        pb.remove(fence)
        assert not pb.has_order_entries()

    def test_order_entry_before(self):
        pb = PersistBuffer(8)
        pb.append(EntryKind.PERSIST, 1)
        fence = pb.append(EntryKind.OFENCE, 1)
        late = pb.append(EntryKind.PERSIST, 1)
        assert pb.order_entry_before(late.seq)
        pb.remove(fence)
        assert not pb.order_entry_before(late.seq)

    def test_tail_skips_tombstones(self):
        pb = PersistBuffer(8)
        pb.append(EntryKind.OFENCE, 1)
        last = pb.append(EntryKind.PERSIST, 1)
        pb.tombstone(last)
        assert pb.tail().kind is EntryKind.OFENCE

    def test_double_remove_rejected(self):
        pb = PersistBuffer(8)
        entry = pb.append(EntryKind.PERSIST, 1)
        pb.remove(entry)
        with pytest.raises(ValueError):
            pb.remove(entry)

    def test_tombstone_requires_persist(self):
        pb = PersistBuffer(8)
        fence = pb.append(EntryKind.OFENCE, 1)
        with pytest.raises(ValueError):
            pb.tombstone(fence)

    def test_peak_occupancy_tracked(self):
        pb = PersistBuffer(8)
        for _ in range(5):
            pb.append(EntryKind.PERSIST, 1)
        assert pb.peak_occupancy == 5


class TestSBRPState:
    def make(self) -> SBRPState:
        return SBRPState(sm_id=0, pb_entries=16, max_warps=8)

    def test_warp_bit_bounds(self):
        st = self.make()
        assert st.warp_bit(3) == 8
        with pytest.raises(IndexError):
            st.warp_bit(8)

    def test_coalesce_blocked_by_later_order_point(self):
        st = self.make()
        persist = st.pb.append(EntryKind.PERSIST, st.warp_bit(0))
        assert not st.coalesce_blocked(0, persist)
        fence = st.pb.append(EntryKind.OFENCE, st.warp_bit(0))
        st.note_order_point(0, fence)
        assert st.coalesce_blocked(0, persist)
        # A different warp's stores may still coalesce.
        assert not st.coalesce_blocked(1, persist)

    def test_ack_bookkeeping(self):
        st = self.make()
        st.add_inflight(100.0)
        st.add_inflight(200.0)
        assert st.actr == 2
        st.retire_ack(100.0)
        assert st.actr == 1
        assert st.inflight_acks == [200.0]

    def test_actr_never_negative(self):
        st = self.make()
        with pytest.raises(AssertionError):
            st.retire_ack(1.0)

    def test_hard_reset_bumps_generation(self):
        st = self.make()
        st.add_inflight(5.0)
        st.fsm.set(2)
        generation = st.generation
        st.hard_reset_acks()
        assert st.generation == generation + 1
        assert st.actr == 0 and not st.fsm.any()

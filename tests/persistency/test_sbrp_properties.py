"""Seeded property tests for the SBRP hardware structures.

The persist buffer is exercised against a plain-list reference model
under interleaved insert / coalesce-removal / drain sequences, and the
per-SM masks (ODM / EDM / FSM) against python sets — every divergence
between the hardware structure and its obviously-correct model is a
bug in the structure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitmask import WarpMask
from repro.persistency.sbrp.pbuffer import EntryKind, PersistBuffer
from repro.persistency.sbrp.state import SBRPState

MAX_WARPS = 16


# ----------------------------------------------------------------------
# PersistBuffer vs reference list
# ----------------------------------------------------------------------
def _reference_order_entry_before(live, seq):
    return any(e.seq < seq and e.kind.is_order for e in live)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_pbuffer_matches_reference_under_interleaving(data):
    """Interleave append / pop_head (drain) / remove (retire-in-place) /
    tombstone (eviction bypass) and check every observer after each op."""
    pb = PersistBuffer(capacity=32)
    live = []  # reference: entries in insertion order
    n_ops = data.draw(st.integers(1, 40))
    for _ in range(n_ops):
        op = data.draw(
            st.sampled_from(["append", "pop_head", "remove", "tombstone"])
        )
        if op == "append":
            kind = data.draw(st.sampled_from(list(EntryKind)))
            entry = pb.append(kind, data.draw(st.integers(1, 0xFFFF)))
            live.append(entry)
        elif op == "pop_head" and live:
            popped = pb.pop_head()
            assert popped is live.pop(0)
        elif op == "remove" and live:
            victim = live.pop(data.draw(st.integers(0, len(live) - 1)))
            pb.remove(victim)
        elif op == "tombstone":
            persists = [e for e in live if e.kind is EntryKind.PERSIST]
            if persists:
                victim = data.draw(st.sampled_from(persists))
                live.remove(victim)
                pb.tombstone(victim)

        assert pb.entries() == live
        assert pb.live_count() == len(live) == len(pb)
        assert pb.has_order_entries() == any(e.kind.is_order for e in live)
        assert pb.tail() is (live[-1] if live else None)
        assert pb.peak_occupancy >= pb.live_count()
        probe = data.draw(st.integers(0, 64))
        assert pb.order_entry_before(probe) == _reference_order_entry_before(
            live, probe
        )

    # head() discards leading tombstones and agrees with the reference.
    assert pb.head() is (live[0] if live else None)
    # Sequence numbers stay strictly increasing in FIFO order.
    seqs = [e.seq for e in pb.entries()]
    assert seqs == sorted(set(seqs))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sampled_from(list(EntryKind)), min_size=1, max_size=20),
    st.integers(0, 19),
)
def test_pbuffer_coalesce_legality_tracks_order_points(kinds, slot_entry):
    """A store may only coalesce into entries younger than its warp's
    last ordering point: ``coalesce_blocked`` must match that rule."""
    st_state = SBRPState(sm_id=0, pb_entries=64, max_warps=MAX_WARPS)
    entries = [st_state.pb.append(kind, 1) for kind in kinds]
    anchor = entries[slot_entry % len(entries)]
    st_state.note_order_point(3, anchor)
    for entry in entries:
        assert st_state.coalesce_blocked(3, entry) == (anchor.seq > entry.seq)
    # Other slots never saw an ordering point and are never blocked.
    assert not any(st_state.coalesce_blocked(0, e) for e in entries)


# ----------------------------------------------------------------------
# ODM / EDM / FSM vs python sets
# ----------------------------------------------------------------------
mask_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear", "or", "diff", "reset"]),
        st.sampled_from(["odm", "edm", "fsm"]),
        st.sets(st.integers(0, MAX_WARPS - 1), max_size=6),
    ),
    max_size=30,
)


@settings(max_examples=80, deadline=None)
@given(mask_ops)
def test_sm_masks_match_set_model(ops):
    state = SBRPState(sm_id=0, pb_entries=8, max_warps=MAX_WARPS)
    masks = {"odm": state.odm, "edm": state.edm, "fsm": state.fsm}
    model = {"odm": set(), "edm": set(), "fsm": set()}
    for op, which, warps in ops:
        mask, ref = masks[which], model[which]
        if op == "set":
            for warp in warps:
                mask.set(warp)
            ref |= warps
        elif op == "clear":
            for warp in warps:
                mask.clear(warp)
            ref -= warps
        elif op == "or":
            mask.or_with(WarpMask.from_warps(warps, MAX_WARPS))
            ref |= warps
        elif op == "diff":
            mask.clear_mask(WarpMask.from_warps(warps, MAX_WARPS))
            ref -= warps
        else:
            mask.reset()
            ref.clear()
        for name in masks:
            assert set(masks[name].warps()) == model[name], name
            assert masks[name].count() == len(model[name])
            assert masks[name].any() == bool(model[name])


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_actr_tracks_inflight_acks(data):
    """The ACTR equals the number of in-flight acks through any
    interleaving of flush / ack / hard-reset."""
    state = SBRPState(sm_id=0, pb_entries=8, max_warps=MAX_WARPS)
    next_time = 1.0
    for _ in range(data.draw(st.integers(1, 30))):
        op = data.draw(st.sampled_from(["flush", "ack", "hard_reset"]))
        if op == "flush":
            state.add_inflight(next_time)
            state.fsm.set(data.draw(st.integers(0, MAX_WARPS - 1)))
            next_time += 1.0
        elif op == "ack" and state.inflight_acks:
            state.retire_ack(data.draw(st.sampled_from(state.inflight_acks)))
        elif op == "hard_reset":
            generation = state.generation
            state.hard_reset_acks()
            assert state.generation == generation + 1
            assert not state.fsm.any()
        assert state.actr == len(state.inflight_acks)
        assert state.actr >= 0

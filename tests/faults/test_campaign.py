"""The campaign CLI: smoke preset, determinism across workers, repro."""

import json

import pytest

from repro.faults.campaign import main


def run_campaign(tmp_path, name, argv):
    out = tmp_path / name
    code = main(argv + ["--quiet", "--out", str(out)])
    return code, out.read_bytes(), json.loads(out.read_text())


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("campaign-sbrp")
    return run_campaign(
        tmp_path, "smoke-sbrp.json", ["--smoke", "--models", "sbrp"]
    )


class TestSmoke:
    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("campaign")
        return run_campaign(tmp_path, "smoke.json", ["--smoke"])

    def test_exit_zero(self, smoke):
        code, _, _ = smoke
        assert code == 0

    def test_clean_plans_report_zero_inconsistencies(self, smoke):
        _, _, report = smoke
        clean = [
            row
            for row in report["scenarios"]
            if row["expect"] == "consistent"
        ]
        # gpkvs x {sbrp, gpm, epoch} x {power_cut, torn_persist:last}
        # + serve_kvs x {sbrp, gpm, epoch} x power_cut
        assert len(clean) == 9
        assert all(row["outcome"] == "consistent" for row in clean)
        assert {row["model"] for row in clean} == {"sbrp", "gpm", "epoch"}
        assert {
            row["model"]
            for row in clean
            if row["app"] == "serve_kvs"
        } == {"sbrp", "gpm", "epoch"}

    def test_seeded_bugs_are_flagged(self, smoke):
        _, _, report = smoke
        assert report["summary"]["seeded_flagged"] >= 1
        seeded = [
            row
            for row in report["scenarios"]
            if row["app_params"].get("seeded_bug")
        ]
        assert seeded and all(
            row["outcome"] == "inconsistent" and row["reproducer"] is not None
            for row in seeded
        )

    def test_formal_oracle_catches_dropped_drains(self, smoke):
        _, _, report = smoke
        assert report["summary"]["litmus_unreachable_detected"] == 1
        faulty = next(
            row for row in report["litmus"] if "drain_drop" in row["name"]
        )
        assert faulty["classification"] == "unreachable_state"
        assert faulty["unreachable_images"]

    def test_static_scope_bug_detected(self, smoke):
        _, _, report = smoke
        assert report["summary"]["scope_bugs_detected"] >= 1

    def test_nothing_unexpected(self, smoke):
        _, _, report = smoke
        assert report["summary"]["unexpected"] == []


class TestDeterminism:
    ARGS = ["--smoke", "--models", "sbrp"]

    def test_reports_byte_identical_across_worker_counts(self, tmp_path):
        code1, bytes1, _ = run_campaign(
            tmp_path, "w1.json", self.ARGS + ["--workers", "1"]
        )
        code2, bytes2, _ = run_campaign(
            tmp_path, "w2.json", self.ARGS + ["--workers", "4"]
        )
        assert code1 == code2 == 0
        assert bytes1 == bytes2


class TestRepro:
    def test_reproducer_round_trips(self, tmp_path):
        code, _, report = run_campaign(
            tmp_path, "seed.json", ["--smoke", "--models", "sbrp"]
        )
        assert code == 0
        seeded = next(
            row
            for row in report["scenarios"]
            if row["app_params"].get("seeded_bug")
        )
        spec = tmp_path / "repro.json"
        spec.write_text(json.dumps(seeded["reproducer"]))
        # Exit 0 = the pinned crash point reproduced the inconsistency.
        assert main(["--repro", str(spec)]) == 0

    def test_list_plans(self, capsys):
        assert main(["--list-plans"]) == 0
        out = capsys.readouterr().out
        assert "torn_persist" in out and "ack_loss" in out


class TestCongestedTeeth:
    """``missing_ofence`` is latent under an uncongested drain; the
    campaign's congested cell must still flag it."""

    def test_cell_capacity_gives_table_regions_odd_line_parity(self):
        from repro.common.config import ModelName
        from repro.faults.campaign import APP_PARAMS, congested_cells

        [smoke] = congested_cells((ModelName.SBRP,), 12)
        [full] = congested_cells(
            (ModelName.SBRP,), 12, params=APP_PARAMS["gpkvs"]
        )
        for cell in (smoke, full):
            assert cell.app_params["seeded_bug"] == "missing_ofence"
            assert (4 * cell.app_params["capacity"] // 128) % 2 == 1
            config = cell.job().config
            assert config.memory.wpq_entries == 1
            assert config.memory.nvm_bw_scale == 0.02

    def test_congested_campaign_flags_missing_ofence(self, smoke_report):
        _, _, report = smoke_report
        row = next(
            r for r in report["scenarios"] if "~congested" in r["name"]
        )
        assert row["app_params"]["seeded_bug"] == "missing_ofence"
        assert row["outcome"] == "inconsistent"
        assert row["matched"]
        assert row["reproducer"] is not None

    def test_bug_is_latent_without_congestion(self):
        import dataclasses

        from repro.common.config import ModelName
        from repro.exec import Executor
        from repro.faults.campaign import congested_cells
        from repro.faults.plans import PowerCutPlan

        [cell] = congested_cells((ModelName.SBRP,), 12)
        latent = dataclasses.replace(
            cell,
            wpq_entries=None,
            nvm_bw_scale=None,
            plan=PowerCutPlan(),  # expectation back to consistent
        )
        result = Executor(workers=1).submit([latent.job()])[0]
        assert result.stats["faults.inconsistent_points"] == 0
